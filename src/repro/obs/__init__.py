"""repro.obs — the unified observability layer.

The paper's credibility rests on instrumentation: it modifies the
GridFTP server to log every transfer and reports the cost of doing so
(~25 ms/transfer, Section 4).  This package is the reproduction's own
instrumentation, threaded through every hot layer (ingest → evaluate →
serve → MDS):

* :mod:`repro.obs.metrics` — labeled Counter/Gauge/Histogram families,
  a registry with JSON ``snapshot()`` and Prometheus ``render()``, and
  the process-wide default registry (:func:`get_registry`);
* :mod:`repro.obs.tracing` — :class:`Span` context managers with
  ``contextvars`` parent propagation, a bounded :class:`SpanExporter`,
  and the :func:`traced` decorator;
* :mod:`repro.obs.events` — the subscriber-capable, JSONL-exportable
  :class:`EventBus` (née ``TraceLog``);
* :mod:`repro.obs.quality` — online prediction-quality telemetry: the
  :class:`AccuracyTracker` pairs served predictions with observed
  transfers and keeps O(1) streaming error statistics (running and
  windowed MAPE/MSE, bias, calibration buckets) per link and per spec;
* :mod:`repro.obs.profile` — opt-in cProfile wrapping for
  ``repro --profile``;
* :mod:`repro.obs.config` — the process-wide on/off switch, so the
  self-overhead benchmark can measure exactly what this layer costs
  (<5% on the ingest and evaluate claims, by assertion).

The historical ``repro.service.metrics`` shim is gone; import these
names from here.
"""

from repro.obs.config import disabled, enabled, set_enabled
from repro.obs.events import EventBus, TraceEvent, TraceLog, get_event_bus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profile import ProfileReport, profiled, run_profiled
from repro.obs.quality import (
    AccuracyTracker,
    ErrorStats,
    merge_stats,
)
from repro.obs.scoreboard import render_scoreboard
from repro.obs.tracing import (
    Span,
    SpanContext,
    SpanExporter,
    current_span,
    get_span_exporter,
    span,
    traced,
)

__all__ = [
    "disabled",
    "enabled",
    "set_enabled",
    "EventBus",
    "TraceEvent",
    "TraceLog",
    "get_event_bus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "ProfileReport",
    "profiled",
    "run_profiled",
    "AccuracyTracker",
    "ErrorStats",
    "merge_stats",
    "render_scoreboard",
    "Span",
    "SpanContext",
    "SpanExporter",
    "current_span",
    "get_span_exporter",
    "span",
    "traced",
]
