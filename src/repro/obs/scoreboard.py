"""The watchable service scoreboard behind ``repro status``.

:func:`render_scoreboard` is a pure function from one
:meth:`~repro.service.service.PredictionService.status` payload (plus an
optional merged metrics snapshot, see
:func:`repro.service.server.merged_snapshot`) to a fixed-width terminal
page: service headline, cache and streaming hit rates, store residency,
the live accuracy rollup, and per-spec / per-link rolling-error tables.
No ANSI escapes and no I/O here — the CLI owns the refresh loop and the
screen clearing, tests own the strings.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = ["render_scoreboard"]

_LINK_ROWS = 20  # widest table a terminal page can usefully hold


def _pct(value: Optional[float]) -> str:
    return f"{value:.1f}%" if value is not None else "-"


def _num(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.3g}"


def _ratio(hits: float, total: float) -> str:
    return f"{hits / total * 100.0:.1f}%" if total else "-"


def _table(headers: List[str], rows: Iterable[List[str]]) -> List[str]:
    matrix = [headers] + [list(r) for r in rows]
    widths = [max(len(row[i]) for row in matrix) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(matrix):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def _counter_value(metrics: Dict[str, Any], name: str,
                   **labels: str) -> Optional[float]:
    data = metrics.get(name)
    if not isinstance(data, dict):
        return None
    if not labels:
        return data.get("value")
    for entry in data.get("series", ()):
        if entry.get("labels") == labels:
            return entry.get("value")
    return None


def render_scoreboard(status: Dict[str, Any],
                      metrics: Optional[Dict[str, Any]] = None) -> str:
    """One terminal page summarizing a service ``status()`` payload.

    ``metrics`` — when given, a merged registry snapshot — contributes
    the per-protocol server request counters; everything else reads from
    ``status`` alone, so the renderer works identically against a live
    socket and an in-process service.
    """
    lines: List[str] = []
    cache = status.get("cache", {})
    streaming = status.get("streaming", {})
    accuracy = status.get("accuracy", {})

    lines.append(
        f"repro service  links={status.get('link_count', 0)}  "
        f"ingested={status.get('ingested', 0):g}  "
        f"predicts={status.get('predicts', 0):g}  "
        f"spec={status.get('default_spec', '?')}"
    )

    hits = cache.get("hits", 0.0)
    misses = cache.get("misses", 0.0)
    streamed = streaming.get("streamed", 0.0)
    recomputed = streaming.get("recomputed", 0.0)
    lines.append(
        f"cache  hit={_ratio(hits, hits + misses)} "
        f"({hits:g}/{hits + misses:g})  "
        f"entries={cache.get('entries', 0):g}/{cache.get('capacity', 0):g}"
        f"   streaming  hit={_ratio(streamed, streamed + recomputed)} "
        f"({streamed:g} streamed, {recomputed:g} recomputed)"
    )

    store = status.get("store")
    if store:
        lines.append(
            f"store  resident={store.get('resident_links', 0)}"
            f"  evicted={store.get('evicted_links', 0)}"
            f"  stored={store.get('stored_links', 0)}"
            f"  evictions={store.get('evictions', 0):g}"
            f"  revivals={store.get('revivals', 0):g}"
            f"  group-commits={store.get('group_commits', 0):g}"
            f"  fsyncs={store.get('fsyncs', 0):g}"
            f"  disk={store.get('bytes_on_disk', 0) / 1e6:.1f}MB"
        )

    fleet = status.get("fleet")
    if fleet:
        shards = fleet.get("shards") or []
        up = sum(1 for s in shards if s.get("up"))
        lines.append(
            f"fleet  workers={up}/{fleet.get('workers', len(shards))} up"
            f"  fallback={'on' if fleet.get('fallback') else 'off'}"
            f"  last-good={fleet.get('last_good_entries', 0)}"
        )
        if shards:
            lines.append("")
            lines += _table(
                ["shard", "up", "breaker", "pending", "restarts", "pid"],
                ([str(s.get("shard", i)),
                  "yes" if s.get("up") else "NO",
                  str((s.get("breaker") or {}).get("state", "?")),
                  str(s.get("pending", 0)),
                  str(s.get("restarts", "-")),
                  str(s.get("pid", "-"))]
                 for i, s in enumerate(shards)),
            )

    if metrics is not None:
        parts = []
        for protocol in ("json", "binary"):
            count = _counter_value(metrics, "server_requests", protocol=protocol)
            if count is not None:
                parts.append(f"{protocol}={count:g}")
        total = _counter_value(metrics, "server_requests")
        bad = _counter_value(metrics, "server_bad_requests")
        if total is not None or parts:
            line = f"server  requests={total if total is not None else 0:g}"
            if parts:
                line += " (" + ", ".join(parts) + ")"
            if bad:
                line += f"  bad={bad:g}"
            lines.append(line)

    lines.append("")
    if not accuracy.get("enabled"):
        lines.append("accuracy  disabled")
        return "\n".join(lines) + "\n"

    overall = accuracy.get("overall", {})
    window = overall.get("window", {})
    lines.append(
        f"accuracy  scored={accuracy.get('scored', 0)}"
        f"  pending={accuracy.get('pending', 0)}"
        f"  dropped={accuracy.get('dropped', 0)}"
        f"  mape={_pct(overall.get('mape'))}"
        f"  mape[{accuracy.get('window', 0)}]={_pct(window.get('mape'))}"
        f"  bias={_pct(overall.get('bias_pct'))}"
    )
    degraded = accuracy.get("degraded")
    if degraded:
        lines.append(
            f"degraded  scored={degraded.get('count', 0)}"
            f"  mape={_pct(degraded.get('mape'))}"
        )

    by_spec = accuracy.get("by_spec") or {}
    if by_spec:
        lines.append("")
        lines += _table(
            ["spec", "n", "mape", f"mape[{accuracy.get('window', 0)}]",
             "mse", "bias", "abstain"],
            ([spec, str(s.get("count", 0)), _pct(s.get("mape")),
              _pct((s.get("window") or {}).get("mape")), _num(s.get("mse")),
              _pct(s.get("bias_pct")), str(s.get("abstentions", 0))]
             for spec, s in by_spec.items()),
        )

    links = accuracy.get("links") or {}
    if links:
        lines.append("")
        records = status.get("links") or {}
        # Worst rolling error first: the links that need a look float up.
        ranked = sorted(
            links.items(),
            key=lambda kv: -(
                ((kv[1].get("overall") or {}).get("window") or {}).get("mape")
                or -1.0
            ),
        )
        rows = []
        for link, entry in ranked[:_LINK_ROWS]:
            s = entry.get("overall") or {}
            rows.append([
                link,
                str((records.get(link) or {}).get("records", "-")),
                str(s.get("count", 0)),
                _pct(s.get("mape")),
                _pct((s.get("window") or {}).get("mape")),
                _pct(s.get("last_abs_pct")),
            ])
        lines += _table(
            ["link", "records", "scored", "mape",
             f"mape[{accuracy.get('window', 0)}]", "last"],
            rows,
        )
        if len(links) > _LINK_ROWS:
            lines.append(f"... {len(links) - _LINK_ROWS} more links")

    return "\n".join(lines) + "\n"
