"""Structured events: a bounded, subscriber-capable event bus.

The paper's instrumentation is fundamentally an event log — one ULM
record per completed transfer.  :class:`EventBus` generalizes the
service's original trace ring into the process-wide equivalent for the
reproduction itself: every layer emits ``(time, kind, fields)`` events,
recent events stay queryable in a deque-backed ring, subscribers see
every event as it happens (the tail-follower pattern, in-process), and
the whole ring exports as JSON lines for offline analysis.

``TraceLog`` is the historical name and remains an alias — existing
``service.trace`` call sites and imports keep working unchanged.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Union

__all__ = ["TraceEvent", "EventBus", "TraceLog", "get_event_bus"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event."""

    time: float
    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, **dict(self.fields)}


class EventBus:
    """A bounded ring of :class:`TraceEvent` with live subscribers.

    * **Ring** — the newest ``capacity`` events are kept in a
      ``deque(maxlen=capacity)``; eviction is O(1) and counted in
      :attr:`dropped`.
    * **Subscribers** — callables registered via :meth:`subscribe` are
      invoked synchronously with each event as it is emitted.  A raising
      subscriber never breaks the emitter: the exception is swallowed
      and counted in :attr:`subscriber_errors`.
    * **Export** — :meth:`export_jsonl` writes the current ring as one
      JSON object per line.
    """

    def __init__(self, capacity: int = 256, clock: Callable[[], float] = time.time):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._subscriber_errors = 0
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        event = TraceEvent(time=self._clock(), kind=kind, fields=fields)
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1  # the append below evicts the oldest
            self._events.append(event)
            # Copy only when there is someone to notify: emit() runs on
            # per-query hot paths where an empty-list copy is measurable.
            subscribers = list(self._subscribers) if self._subscribers else ()
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:
                with self._lock:
                    self._subscriber_errors += 1
        return event

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call ``listener(event)`` synchronously for every future emit."""
        with self._lock:
            self._subscribers.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        with self._lock:
            self._subscribers.remove(listener)

    @property
    def has_subscribers(self) -> bool:
        """Cheap hint for emitters that batch when nobody is listening."""
        return bool(self._subscribers)

    # ------------------------------------------------------------------
    # queries and export
    # ------------------------------------------------------------------
    def events(
        self, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[TraceEvent]:
        """The retained events, oldest first, optionally filtered.

        ``limit`` keeps only the *newest* ``limit`` matches.
        """
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if limit is not None and limit >= 0:
            events = events[len(events) - limit:] if limit else []
        return events

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the retained events as JSON lines; returns the count."""
        events = self.events()
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.as_dict(), default=str) + "\n")
        return len(events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    @property
    def subscriber_errors(self) -> int:
        with self._lock:
            return self._subscriber_errors

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: Historical name: the service's trace ring predates the event bus.
TraceLog = EventBus


_default_bus = EventBus(capacity=1024)


def get_event_bus() -> EventBus:
    """The process-wide bus shared by module-level instrumentation."""
    return _default_bus
