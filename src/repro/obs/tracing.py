"""Span-based tracing with ``contextvars`` parent propagation.

A :class:`Span` measures one operation: name, wall-clock duration,
ok/error status, free-form attributes, and its position in a trace tree.
The current span lives in a :mod:`contextvars` context variable, so
``span()`` blocks nest naturally::

    with span("ingest.load_ulm", path=str(path)):
        ...
        with span("ingest.parse"):        # child of load_ulm
            ...

Finished spans land in a bounded in-memory :class:`SpanExporter`
(deque-backed, oldest dropped first) that the Unix-socket server's
``spans`` op serves.  :func:`traced` wraps a whole function in a span.

Threads start with an empty context, so work fanned out to a pool does
not inherit the submitting thread's span automatically — pass
``parent=current_span()`` explicitly (see
:func:`repro.core.engine.evaluate_dataset`).

When observability is disabled (:mod:`repro.obs.config`), :func:`span`
returns a shared no-op object and records nothing.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional

from repro.obs import config as _config

__all__ = [
    "Span",
    "SpanContext",
    "SpanExporter",
    "current_span",
    "span",
    "traced",
    "get_span_exporter",
]

_ids = itertools.count(1)


class SpanContext(NamedTuple):
    """A remote span's identity, usable as a :class:`Span` parent.

    :class:`Span` reads only ``trace_id`` and ``span_id`` from its
    parent, so a context deserialized from a request envelope (the wire
    protocol's trace-context field) parents a local span into the
    caller's trace — the server half of an end-to-end distributed
    trace.  Both ids must be positive integers.
    """

    trace_id: int
    span_id: int

_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed operation; use as a context manager.

    Attributes are free-form key/values set at construction or via
    :meth:`set_attribute`.  Status is ``"ok"`` unless the block raised,
    in which case it is ``"error"`` and :attr:`error` holds the
    exception's ``repr`` (the exception itself propagates).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attributes",
        "start_time", "end_time", "status", "error",
        "_exporter", "_token", "_clock",
    )

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        exporter: Optional["SpanExporter"] = None,
        clock: Callable[[], float] = time.perf_counter,
        **attributes: Any,
    ):
        if parent is None:
            parent = _current.get()
        self.name = name
        self.span_id = next(_ids)
        self.trace_id = parent.trace_id if parent is not None else self.span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.attributes: Dict[str, Any] = dict(attributes)
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self._exporter = exporter
        self._token: Optional[contextvars.Token] = None
        self._clock = clock

    # ------------------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __enter__(self) -> "Span":
        self.start_time = self._clock()
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_time = self._clock()
        if exc is not None:
            self.status = "error"
            self.error = repr(exc)
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        exporter = self._exporter if self._exporter is not None else get_span_exporter()
        exporter.export(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        dur = f"{self.duration * 1e3:.3f}ms" if self.duration is not None else "open"
        return f"<Span {self.name} id={self.span_id} {self.status} {dur}>"


class _NoopSpan:
    """What :func:`span` hands out when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class SpanExporter:
    """A bounded in-memory sink of finished spans (oldest dropped)."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._dropped = 0

    def export(self, finished: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(finished)

    def spans(
        self, name: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Span]:
        """Finished spans, oldest first; ``limit`` keeps the newest."""
        with self._lock:
            out = list(self._spans)
        if name is not None:
            out = [s for s in out if s.name == name]
        if limit is not None and limit >= 0:
            out = out[len(out) - limit:] if limit else []
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_default_exporter = SpanExporter(capacity=2048)


def get_span_exporter() -> SpanExporter:
    """The process-wide exporter behind the server's ``spans`` op."""
    return _default_exporter


def current_span() -> Optional[Span]:
    """The innermost live span of the calling context, if any."""
    return _current.get()


def span(
    name: str,
    parent: Optional[Span] = None,
    exporter: Optional[SpanExporter] = None,
    **attributes: Any,
):
    """A context-managed span, or a shared no-op when obs is disabled."""
    if not _config.enabled():
        return _NOOP
    return Span(name, parent=parent, exporter=exporter, **attributes)


def traced(name: Optional[str] = None, **attributes: Any):
    """Decorator: run the function inside a span named after it."""

    def decorate(func: Callable) -> Callable:
        span_name = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with span(span_name, **attributes):
                return func(*args, **kwargs)

        return wrapper

    return decorate
