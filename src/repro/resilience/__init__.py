"""repro.resilience — fault handling as a first-class layer.

The paper's delivery infrastructure is built for an unreliable wide
area: soft-state GRIS→GIIS registrations exist precisely so that dead
information providers silently expire (Section 5).  This package is the
reproduction's equivalent discipline for every boundary that touches
the outside world — composable, observable, deterministic under test:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: exponential
  backoff with deterministic seeded jitter, capped by attempts and
  elapsed time, optionally bounded by a :class:`Deadline`;
* :mod:`repro.resilience.deadline` — :class:`Deadline`: an absolute
  time budget propagated through a call chain;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`:
  closed → open → half-open with observable state counters, so one
  wedged dependency degrades instead of cascading;
* :mod:`repro.resilience.fallback` — the :func:`fallback` combinator:
  try alternatives in order, serve the first that answers.

All retry, trip, and fallback activity is visible through the
process-wide :func:`repro.obs.get_registry` counters and
:func:`repro.obs.get_event_bus` events (see docs/resilience.md).
Deterministic fault *injection* lives next door in :mod:`repro.faults`.
"""

from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.fallback import fallback
from repro.resilience.retry import RetryError, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "fallback",
    "RetryError",
    "RetryPolicy",
]
