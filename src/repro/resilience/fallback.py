"""The fallback combinator: degrade through alternatives, in order.

``fallback(primary, backup, ...)`` returns a callable that tries each
alternative until one answers; only exceptions in ``exceptions`` trigger
the next alternative, anything else propagates.  Each degradation is
counted (``resilience_fallbacks``) and emitted as a
``resilience.fallback`` event so graceful degradation stays loud in the
telemetry even while staying quiet for callers.
"""

from __future__ import annotations

from typing import Callable, Tuple, Type, TypeVar

from repro.obs.config import enabled as _obs_enabled
from repro.obs.events import get_event_bus
from repro.obs.metrics import get_registry

__all__ = ["fallback"]

T = TypeVar("T")

_M_FALLBACKS = get_registry().counter(
    "resilience_fallbacks", "calls answered by a non-primary alternative")


def fallback(
    *alternatives: Callable[[], T],
    exceptions: Tuple[Type[BaseException], ...] = (Exception,),
    label: str = "",
) -> Callable[[], T]:
    """Compose alternatives into one callable.

    The returned callable invokes each alternative in order and returns
    the first result.  If the last alternative also fails, its exception
    propagates unchanged.
    """
    if not alternatives:
        raise ValueError("fallback() needs at least one alternative")

    def run() -> T:
        last = len(alternatives) - 1
        for index, alternative in enumerate(alternatives):
            try:
                result = alternative()
            except exceptions as exc:
                if index == last:
                    raise
                if _obs_enabled():
                    _M_FALLBACKS.inc()
                    get_event_bus().emit(
                        "resilience.fallback", label=label, alternative=index,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                continue
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    run.__name__ = f"fallback[{label or len(alternatives)}]"
    return run
