"""Retry with exponential backoff and deterministic seeded jitter.

fdtcp wraps every wide-area transfer in retry/timeout/cleanup logic;
this module is that discipline as a composable value.  A
:class:`RetryPolicy` is immutable configuration — share one across call
sites — and :meth:`RetryPolicy.call` executes a callable under it.

Jitter is *seeded*: the delay sequence for a given ``(policy, seed)``
is a pure function, so tests and the chaos suite replay byte-identical
schedules while production still decorrelates thundering herds by
seeding per call site.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.obs.config import enabled as _obs_enabled
from repro.obs.events import get_event_bus
from repro.obs.metrics import get_registry
from repro.resilience.deadline import Deadline, DeadlineExceeded

__all__ = ["RetryPolicy", "RetryError"]

T = TypeVar("T")

_REG = get_registry()
_M_RETRIES = _REG.counter(
    "resilience_retries", "attempts re-run after a retryable failure")
_M_GIVEUPS = _REG.counter(
    "resilience_retry_giveups", "retry loops exhausted without success")


class RetryError(Exception):
    """Every attempt failed; ``__cause__`` is the last attempt's error."""

    def __init__(self, message: str, attempts: int):
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**n``, capped.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (1 = no retry).
    base_delay, multiplier, max_delay:
        Backoff schedule in seconds, before jitter.
    max_elapsed:
        Stop retrying once this much wall clock has been spent
        (checked before each sleep); ``None`` = no elapsed cap.
    jitter:
        Fraction of each delay randomized away: delay is drawn
        uniformly from ``[d * (1 - jitter), d]``.  0 disables jitter.
    seed:
        Seed for the jitter stream.  The same ``(policy, seed)``
        produces the same delay sequence — :meth:`delays` is how the
        chaos suite asserts schedules, not just outcomes.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    max_elapsed: Optional[float] = None
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """The jittered sleep before each retry (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
            if self.jitter:
                delay *= 1.0 - self.jitter * rng.random()
            yield delay

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        label: str = "",
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> T:
        """Run ``fn`` until it succeeds or the policy is exhausted.

        Only exceptions in ``retry_on`` are retried; anything else
        propagates immediately (a *bad request* must not be re-sent).
        Exhaustion raises :class:`RetryError` with the last error as
        ``__cause__``.  A ``deadline``, when given, bounds the whole
        loop: a sleep never overruns it and an expired deadline raises
        :class:`DeadlineExceeded` instead of attempting again.
        ``on_retry(attempt, error, delay)`` fires before each sleep.
        """
        started = clock()
        last_error: Optional[BaseException] = None
        deadline_cut = False
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check(label or "retry loop")
            try:
                return fn()
            except retry_on as exc:
                last_error = exc
                if attempt == self.max_attempts:
                    break
                delay = next(delays)
                if self.max_elapsed is not None and (
                    clock() - started + delay > self.max_elapsed
                ):
                    break
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None and delay > remaining:
                        # Sleeping would overrun the budget: the deadline,
                        # not the policy, is what ends this loop.
                        deadline_cut = True
                        break
                if _obs_enabled():
                    _M_RETRIES.inc()
                    get_event_bus().emit(
                        "resilience.retry", label=label, attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}", delay=delay,
                    )
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    sleep(delay)
        if _obs_enabled():
            _M_GIVEUPS.inc()
            get_event_bus().emit(
                "resilience.giveup", label=label,
                error=f"{type(last_error).__name__}: {last_error}",
            )
        if deadline is not None and (deadline_cut or deadline.expired()):
            raise DeadlineExceeded(
                f"{label or 'retry loop'} exceeded its deadline"
            ) from last_error
        raise RetryError(
            f"{label or 'operation'} failed after {attempt} attempt(s): "
            f"{last_error}", attempts=attempt,
        ) from last_error
