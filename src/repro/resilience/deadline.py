"""Deadline propagation: one absolute time budget for a call chain.

A :class:`Deadline` is created once at the edge (a server request
arriving, a CLI invocation) and handed down; every layer that waits or
retries asks the same object how much budget is left instead of
inventing its own timeout.  That is what makes end-to-end latency
bounded: three stacked 10-second timeouts are a 30-second worst case,
one 10-second deadline is not.

Deadlines are measured on an injectable clock (``time.monotonic`` by
default) so tests and the simulation drive them deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(TimeoutError):
    """The operation's time budget ran out.

    A :class:`TimeoutError` subclass so existing ``except TimeoutError``
    call sites treat an exceeded deadline like any other timeout.
    """


class Deadline:
    """An absolute expiry time on an injectable clock.

    Use :meth:`after` to create one from a relative budget, pass the
    object down the call chain, and call :meth:`check` at boundaries
    (loop iterations, before expensive work).  ``None`` timeouts are
    modeled by :meth:`unbounded`, which never expires — callers can
    thread a deadline unconditionally.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, expires_at: Optional[float],
                 clock: Callable[[], float] = time.monotonic):
        self.expires_at = expires_at  # None = never expires
        self._clock = clock

    @classmethod
    def after(cls, seconds: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(clock() + seconds, clock=clock)

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0.0), or ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    def expired(self) -> bool:
        return self.expires_at is not None and self._clock() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(f"{what} exceeded its deadline")

    def clamp(self, timeout: Optional[float]) -> Optional[float]:
        """The smaller of ``timeout`` and the remaining budget.

        Use to derive a per-step timeout (a socket timeout, a sleep) that
        can never outlive the overall deadline.
        """
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:
        if self.expires_at is None:
            return "<Deadline unbounded>"
        return f"<Deadline remaining={self.remaining():.3f}s>"
