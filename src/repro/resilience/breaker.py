"""Circuit breaker: stop hammering a dependency that is already down.

The classic three-state machine:

* **closed** — calls flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open;
* **open** — calls are rejected instantly (:class:`CircuitOpenError`)
  until ``reset_timeout`` has elapsed since the trip;
* **half-open** — after the timeout, up to ``half_open_probes`` trial
  calls are admitted: one success closes the breaker, one failure
  re-opens it and restarts the timer.

Time is explicit: every transition-relevant method accepts ``now`` (the
GIIS drives breakers on simulation time) and falls back to the
breaker's injectable clock.  State changes are counted in process-wide
:mod:`repro.obs` metrics and emitted as ``resilience.breaker_*`` events.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, TypeVar

from repro.obs.config import enabled as _obs_enabled
from repro.obs.events import get_event_bus
from repro.obs.metrics import get_registry

__all__ = ["CircuitBreaker", "CircuitOpenError", "CLOSED", "OPEN", "HALF_OPEN"]

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_REG = get_registry()
_M_TRIPS = _REG.counter(
    "resilience_breaker_trips", "circuit breakers tripped closed -> open")
_M_REJECTIONS = _REG.counter(
    "resilience_breaker_rejections",
    "calls rejected by an open or probe-saturated breaker")
_M_PROBES = _REG.counter(
    "resilience_breaker_probes", "half-open trial calls admitted")
_M_RESETS = _REG.counter(
    "resilience_breaker_resets", "circuit breakers recovered to closed")


class CircuitOpenError(ConnectionError):
    """The breaker is open; the protected call was not attempted."""

    def __init__(self, name: str, retry_after: float):
        super().__init__(
            f"circuit {name!r} is open (retry after {retry_after:.3f}s)"
        )
        self.breaker_name = name
        self.retry_after = retry_after


class CircuitBreaker:
    """One protected dependency's health state.

    Use either style:

    * imperative — ``if breaker.allow(now): try work; record_success()
      / record_failure(now)`` (the GIIS search loop, where the
      degraded path is custom);
    * functional — ``breaker.call(fn, now=...)``, which raises
      :class:`CircuitOpenError` when the breaker rejects.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # Lifetime stats, exposed for status()/tests.
        self.trips = 0
        self.rejections = 0
        self.resets = 0

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def state(self, now: Optional[float] = None) -> str:
        """Current state, advancing open -> half-open when the timer ran."""
        now = self._now(now)
        with self._lock:
            self._advance(now)
            return self._state

    def _advance(self, now: float) -> None:
        # Caller holds the lock.
        if self._state == OPEN and now - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probes_in_flight = 0

    def allow(self, now: Optional[float] = None) -> bool:
        """Whether a call may proceed right now.

        In half-open state at most ``half_open_probes`` concurrent trial
        calls are admitted; every admitted caller **must** report back
        via :meth:`record_success` or :meth:`record_failure`.  Callers
        that lose the probe race are rejected and counted exactly like
        open-state rejections.
        """
        now = self._now(now)
        with self._lock:
            self._advance(now)
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    if _obs_enabled():
                        _M_PROBES.inc()
                    return True
                self.rejections += 1
                if _obs_enabled():
                    _M_REJECTIONS.inc()
                return False
            # OPEN
            self.rejections += 1
            if _obs_enabled():
                _M_REJECTIONS.inc()
            return False

    def record_success(self, now: Optional[float] = None) -> None:
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_in_flight = 0
                self.resets += 1
                if _obs_enabled():
                    _M_RESETS.inc()
                    get_event_bus().emit(
                        "resilience.breaker_close", breaker=self.name)

    def record_failure(self, now: Optional[float] = None) -> None:
        now = self._now(now)
        with self._lock:
            if self._state == HALF_OPEN:
                tripped = True          # the probe failed: straight back open
            else:
                self._failures += 1
                tripped = (
                    self._state == CLOSED
                    and self._failures >= self.failure_threshold
                )
            if tripped:
                self._state = OPEN
                self._opened_at = now
                self._failures = 0
                self._probes_in_flight = 0
                self.trips += 1
                if _obs_enabled():
                    _M_TRIPS.inc()
                    get_event_bus().emit(
                        "resilience.breaker_open", breaker=self.name,
                        reset_timeout=self.reset_timeout)

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until an open breaker will admit a probe (0 if not open)."""
        now = self._now(now)
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.reset_timeout - (now - self._opened_at))

    # ------------------------------------------------------------------
    # functional style
    # ------------------------------------------------------------------
    def call(self, fn: Callable[[], T], now: Optional[float] = None) -> T:
        """Run ``fn`` under the breaker; raise :class:`CircuitOpenError`
        instead of calling when the breaker rejects."""
        if not self.allow(now):
            raise CircuitOpenError(self.name, self.retry_after(now))
        try:
            result = fn()
        except Exception:
            self.record_failure(now)
            raise
        self.record_success(now)
        return result

    def status(self) -> dict:
        """JSON-ready snapshot, for service status endpoints."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self.trips,
                "rejections": self.rejections,
                "resets": self.resets,
            }

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self._state} trips={self.trips}>"
