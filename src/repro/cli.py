"""Command-line interface: campaigns, reports, evaluation, and serving.

Examples::

    repro campaign --month aug --seed 1 --out-dir logs/
    repro report census --seed 1
    repro report errors --link LBL-ANL --class 1GB --seed 1
    repro report relative --link LBL-ANL --class 100MB --predictors C-AVG15,C-LV
    repro evaluate logs/aug-LBL-ANL.ulm --predictors C-AVG15,C-MED,SIZE --json
    repro serve --socket /tmp/repro.sock data/*.ulm --follow
    repro serve --socket /tmp/repro.sock data/*.ulm --follow \
        --state-dir state/ --max-resident 1024
    repro query predict --socket /tmp/repro.sock --link aug-LBL-ANL --size 1GB
    repro status --socket /tmp/repro.sock --watch 2
    repro query batch --socket /tmp/repro.sock --batch items.json --binary
    repro query rank --logs data/aug-LBL-ANL.ulm,data/aug-ISI-ANL.ulm --size 100MB

Conventions: predictor sets are always ``--predictors`` (comma-separated
specs), size classes are always ``--class``, machine-readable output is
always ``--json``.  Exit codes: 0 success, 1 operational error (bad
predictor name, missing link, server unreachable), 2 usage error.

Observability: ``repro --profile <subcommand> ...`` wraps any subcommand
in cProfile (pstats dump to ``--profile-out``, top-N hotspots on
stderr); ``repro serve --metrics-interval N --metrics-file F`` appends
one JSON registry snapshot per interval to ``F`` for offline analysis.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis import (
    check_summary_claims,
    compare_probe_vs_gridftp,
    compute_census,
    compute_class_errors,
    compute_classification_impact,
    compute_relative_table,
    render_census,
    render_class_errors,
    render_classification_impact,
    render_nws_comparison,
    render_relative_table,
    render_summary,
)
from repro.core.classification import PAPER_CLASS_LABELS, paper_classification
from repro.core.engine import ENGINES, evaluate_dataset
from repro.core.predictors.registry import CLASSIFIED_PREDICTOR_NAMES, resolve
from repro.workload import AUG_2001, DEC_2001, run_month, run_month_with_nws
from repro.workload.campaigns import CampaignOutput

__all__ = ["main"]

_MONTHS = {"aug": AUG_2001, "dec": DEC_2001}

_SIZE_SUFFIXES = {"KB": 10**3, "MB": 10**6, "GB": 10**9}


def _start_epoch(month: str) -> float:
    try:
        return _MONTHS[month.lower()]
    except KeyError:
        raise SystemExit(f"unknown month {month!r}; expected aug or dec") from None


def _run(month: str, seed: int, with_nws: bool = False) -> Dict[str, CampaignOutput]:
    start = _start_epoch(month)
    runner = run_month_with_nws if with_nws else run_month
    return runner(start_epoch=start, seed=seed)


def _parse_size(text: str) -> int:
    """Bytes from ``1000000``, ``100MB``, ``1GB``, ... (decimal units)."""
    raw = text.strip().upper()
    for suffix, scale in _SIZE_SUFFIXES.items():
        if raw.endswith(suffix):
            try:
                return int(float(raw[: -len(suffix)]) * scale)
            except ValueError:
                break
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"bad size {text!r}; expected bytes or a KB/MB/GB suffix"
        ) from None


def _parse_specs(text: str) -> List[str]:
    """Validated predictor specs from a comma-separated ``--predictors``."""
    names = [n.strip() for n in text.split(",") if n.strip()]
    if not names:
        raise SystemExit("--predictors must name at least one predictor")
    for name in names:
        try:
            resolve(name)
        except KeyError:
            raise SystemExit(
                f"unknown predictor {name!r}; expected a Figure 4 name "
                f"(optionally C- prefixed) or SIZE"
            ) from None
    return names


def _emit(payload: dict, as_json: bool, text: str) -> None:
    print(json.dumps(payload, indent=2) if as_json else text)


# ----------------------------------------------------------------------
# campaign / report / export
# ----------------------------------------------------------------------
def _cmd_campaign(args: argparse.Namespace) -> int:
    outputs = _run(args.month, args.seed)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for link, output in outputs.items():
        path = out_dir / f"{args.month}-{link}.ulm"
        n = output.log.save(path)
        print(f"{link}: wrote {n} records to {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "census":
        months = {
            "August": _run("aug", args.seed),
            "December": _run("dec", args.seed),
        }
        print(render_census(compute_census(months)))
        return 0

    outputs = _run(args.month, args.seed, with_nws=(kind == "nws"))
    if kind == "nws":
        for link, output in _select(outputs, args.link).items():
            print(render_nws_comparison(compare_probe_vs_gridftp(output)))
            print()
        return 0

    for link, output in _select(outputs, args.link).items():
        errors = compute_class_errors(link, output.log.to_frame())
        if kind == "errors":
            for label in _labels(args.size_class):
                print(render_class_errors(errors, label))
                print()
        elif kind == "classification":
            print(render_classification_impact(compute_classification_impact(errors)))
            print()
        elif kind == "relative":
            if args.predictors:
                names = tuple(_parse_specs(args.predictors))
                missing = [n for n in names if n not in errors.result.traces]
                if missing:
                    raise SystemExit(
                        f"predictors not in the evaluated battery: {missing}"
                    )
            else:
                names = tuple(CLASSIFIED_PREDICTOR_NAMES)
            table = compute_relative_table(
                link, errors.result, predictor_names=names,
            )
            for label in _labels(args.size_class):
                print(render_relative_table(table, label))
                print()
        elif kind == "summary":
            print(render_summary(check_summary_claims(errors)))
            print()
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"unknown report kind {kind!r}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Write every figure's data as CSV files."""
    from repro.analysis.export import export_all

    months = {
        "August": _run("aug", args.seed, with_nws=args.with_nws),
        "December": _run("dec", args.seed, with_nws=args.with_nws),
    }
    written = export_all(months, args.out_dir)
    for path in written:
        print(f"wrote {path}")
    return 0


def _select(
    outputs: Dict[str, CampaignOutput], link: Optional[str]
) -> Dict[str, CampaignOutput]:
    if link is None:
        return outputs
    if link not in outputs:
        raise SystemExit(f"unknown link {link!r}; expected one of {list(outputs)}")
    return {link: outputs[link]}


def _labels(size_class: Optional[str]) -> tuple:
    if size_class is None:
        return PAPER_CLASS_LABELS
    if size_class not in PAPER_CLASS_LABELS:
        raise SystemExit(
            f"unknown class {size_class!r}; expected one of {PAPER_CLASS_LABELS}"
        )
    return (size_class,)


# ----------------------------------------------------------------------
# evaluate
# ----------------------------------------------------------------------
def _cmd_evaluate(args: argparse.Namespace) -> int:
    """Walk predictors over one or more external ULM log files.

    Files load through the columnar ingest (with binary sidecar caching
    unless ``--no-cache``) into a :class:`~repro.data.dataset.Dataset` —
    one link per file, keyed by stem — and all links evaluate in one
    :func:`~repro.core.engine.evaluate_dataset` call.  A single file
    keeps the original output and JSON shape exactly.
    """
    from repro.analysis.report import render_table
    from repro.data import Dataset

    paths = [Path(p) for p in args.log_files]
    for path in paths:
        if not path.exists():
            raise SystemExit(f"no such log file: {path}")
    names = _parse_specs(args.predictors)
    link_paths: Dict[str, str] = {}
    for path in paths:
        link_paths.setdefault(path.stem, str(path))
    dataset = Dataset.from_ulm(paths, cache=not args.no_cache)
    for link, frame in dataset.items():
        if len(frame) <= args.training:
            raise SystemExit(
                f"{link_paths[link]}: {len(frame)} records, need more than "
                f"the training prefix ({args.training})"
            )
    results = evaluate_dataset(
        dataset, names, training=args.training, engine=args.engine
    )

    cls = paper_classification()
    labels = _labels(args.size_class)
    payloads = []
    tables = []
    for link, result in results.items():
        n = len(dataset[link])
        rows = []
        report = []
        for name in names:
            trace = result[name]
            per_class = {
                label: trace.mean_abs_pct_error(trace.class_mask(cls, label))
                for label in labels
            }
            overall = trace.mean_abs_pct_error()
            rows.append([name, *per_class.values(), overall, trace.abstentions])
            report.append({
                "name": name,
                "per_class_mape": per_class,
                "overall_mape": overall,
                "abstentions": trace.abstentions,
            })
        payloads.append({
            "log": link_paths[link],
            "records": n,
            "training": args.training,
            "predictions_per_predictor": n - args.training,
            "predictors": report,
        })
        tables.append(render_table(
            ["predictor", *labels, "overall", "abstained"],
            rows,
            title=(
                f"{link_paths[link]}: {n} records, "
                f"{n - args.training} predictions per predictor "
                f"(MAPE %)"
            ),
        ))

    if len(payloads) == 1:
        _emit(payloads[0], args.json, tables[0])
    else:
        _emit({"logs": payloads}, args.json, "\n\n".join(tables))
    return 0


# ----------------------------------------------------------------------
# serve / query
# ----------------------------------------------------------------------
def _build_service(log_paths: List[str], spec: str, cache_size: int,
                   link: Optional[str] = None, degraded_fallback: bool = False,
                   store=None, max_resident: Optional[int] = None,
                   quality: bool = True,
                   quality_threshold: Optional[float] = 1.0):
    from repro.service import PredictionService

    service = PredictionService(default_spec=spec, cache_size=cache_size,
                                degraded_fallback=degraded_fallback,
                                store=store, max_resident=max_resident,
                                quality=quality,
                                quality_threshold=quality_threshold)
    if link is not None and len(log_paths) > 1:
        raise SystemExit("--link only applies to a single log file")
    for path in log_paths:
        if not Path(path).exists():
            raise SystemExit(f"no such log file: {path}")
        name = link or Path(path).stem
        if store is not None and store.durable_rows(name) > 0:
            # Warm restart: the store already holds this link's history
            # (it revives on first touch); re-ingesting the file would
            # duplicate every record.  The follower resumes from the
            # durable offset instead.
            print(f"{name}: warm ({store.durable_rows(name)} durable records, "
                  f"resume offset {store.resume_offset(name)})", file=sys.stderr)
            continue
        name, count = service.ingest_ulm(path, link=link)
        print(f"{name}: ingested {count} records from {path}", file=sys.stderr)
    return service


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LogFollower, ServiceServer

    try:
        resolve(args.spec)
    except KeyError:
        raise SystemExit(f"unknown predictor {args.spec!r}") from None

    store = None
    if args.state_dir:
        from repro.store import LinkStore

        store = LinkStore(args.state_dir, fsync=args.fsync)
    elif args.max_resident is not None:
        raise SystemExit("--max-resident needs --state-dir (nowhere to evict to)")
    service = _build_service(args.logs, args.spec, args.cache_size, args.link,
                             degraded_fallback=args.fallback,
                             store=store, max_resident=args.max_resident,
                             quality=not args.no_quality,
                             quality_threshold=args.quality_threshold)

    followers = []
    if args.follow:
        followers = [
            # Batch delivery: each poll's new records fold through one
            # observe_batch sweep (grouped locks, one WAL group commit)
            # instead of a per-record write path.
            LogFollower(path, None, link=args.link,
                        deliver_offsets=store is not None,
                        batch_sink=service.observe_batch)
            for path in args.logs
        ]
        for follower in followers:
            resume = store.resume_offset(follower.link) if store else 0
            if resume:
                # Warm restart: deliver only what durability missed.
                follower.seek_to(resume)
            else:
                # The logs were just bulk-ingested; only future appends
                # should flow through the follower.
                follower.seek_to_end()

    def _flush_store() -> None:
        if store is None:
            return
        written = service.checkpoint_all(seal=True)
        store.close()
        print(f"checkpointed {written} links to {args.state_dir}",
              file=sys.stderr)

    if args.oneshot:
        if args.follow:
            for follower in followers:
                follower.poll()
        if args.metrics_file:
            _dump_metrics_snapshot(service, args.metrics_file)
        print(json.dumps(service.status(), indent=2))
        _flush_store()
        return 0

    if not args.socket:
        raise SystemExit("serve needs --socket (or --oneshot)")
    server = ServiceServer(service, args.socket, legacy_errors=args.legacy_errors)
    print(f"serving {len(service.links())} links on {args.socket}", file=sys.stderr)

    import signal
    import threading

    stopping = threading.Event()

    def _graceful(signum, frame) -> None:
        # First signal: drain and flush (the accept loop exits, the
        # finally below checkpoints).  A second SIGINT still kills.
        if not stopping.is_set():
            stopping.set()
            server.request_stop()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    poll_thread = None
    if args.follow:

        def _poll_loop() -> None:
            while not stopping.is_set():
                for follower in followers:
                    follower.poll()
                stopping.wait(args.interval)

        poll_thread = threading.Thread(
            target=_poll_loop, name="repro-tail", daemon=True)
        poll_thread.start()
    if args.metrics_file:

        def _metrics_loop() -> None:
            while not stopping.is_set():
                stopping.wait(args.metrics_interval)
                try:
                    _dump_metrics_snapshot(service, args.metrics_file)
                except OSError:
                    pass  # an unwritable dump file must not kill serving

        threading.Thread(
            target=_metrics_loop, name="repro-metrics", daemon=True
        ).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stopping.set()
        if poll_thread is not None:
            # Let in-flight deliveries finish so the final checkpoint
            # covers them; a wedged poll must not block shutdown forever.
            poll_thread.join(timeout=5.0)
        _flush_store()
    return 0


def _dump_metrics_snapshot(service, path: str) -> None:
    """Append one timestamped merged-registry snapshot as a JSON line.

    The merge is the server's own (:func:`repro.service.server.
    merged_snapshot`): process-wide series — including the per-protocol
    request counters — overlaid with the service's instruments, accuracy
    gauges refreshed from the tracker first, all in one object per
    interval.
    """
    from repro.service.server import merged_snapshot

    line = json.dumps({"time": time.time(), "metrics": merged_snapshot(service)})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def _cmd_status(args: argparse.Namespace) -> int:
    """The service scoreboard: one shot, ``--watch N``, or ``--json``.

    Against a live server (``--socket``) each refresh issues the
    ``status`` and ``metrics`` ops over one reused connection; against
    ``--logs`` the service is built in-process once and re-read per
    refresh (useful for eyeballing a log replay).  ``--json`` emits one
    ``{"status", "metrics"}`` object per refresh (JSON lines under
    ``--watch``); the human form is the scoreboard of
    :func:`repro.obs.scoreboard.render_scoreboard`.
    """
    from repro.obs.scoreboard import render_scoreboard

    if args.watch is not None and args.watch <= 0:
        raise SystemExit("--watch needs a positive refresh interval")
    if args.socket:
        from repro.client import ServiceClient

        holder = {"client": ServiceClient(args.socket, binary=args.binary)}

        def fetch():
            from repro.client import error_info

            status = holder["client"].request({"op": "status"})
            metrics = holder["client"].request({"op": "metrics"})
            for response in (status, metrics):
                if not response.get("ok"):
                    code, message = error_info(response)
                    raise SystemExit(f"status failed: {code}: {message}")
            return status, metrics.get("metrics", {})

        def reconnect() -> None:
            holder["client"].close()
            holder["client"] = ServiceClient(args.socket, binary=args.binary)

        def cleanup() -> None:
            holder["client"].close()
    elif args.logs:
        if args.binary:
            raise SystemExit("--binary needs a live server (--socket)")
        from repro.service.server import merged_snapshot

        service = _build_service(
            [p.strip() for p in args.logs.split(",") if p.strip()],
            args.spec or "C-AVG15", cache_size=2048,
        )

        def fetch():
            return service.status(), merged_snapshot(service)

        def reconnect() -> None:
            return None

        def cleanup() -> None:
            return None
    else:
        raise SystemExit("status needs --socket (live server) or --logs "
                         "(in-process)")

    def emit_once() -> None:
        status, metrics = fetch()
        if args.json:
            print(json.dumps({"time": time.time(), "status": status,
                              "metrics": metrics}))
        else:
            if args.watch is not None:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            sys.stdout.write(render_scoreboard(status, metrics))
        sys.stdout.flush()

    # A watch outlives any single server process: once the first refresh
    # has succeeded, a connection failure means the service is restarting
    # (a deploy, a supervisor respawn), so keep retrying with backoff on
    # a fresh connection instead of dying mid-watch.  Failing the *first*
    # contact still exits — a wrong --socket should not spin forever.
    contacted = False
    backoff = 0.0
    try:
        while True:
            try:
                emit_once()
                contacted = True
                backoff = 0.0
            except (OSError, ConnectionError) as exc:
                if not contacted or args.watch is None:
                    raise SystemExit(
                        f"cannot reach server at {args.socket}: {exc}"
                    ) from None
                backoff = min(backoff * 2 or 0.5, 5.0)
                print(f"repro status: server unreachable ({exc}); "
                      f"retrying in {backoff:.1f}s", file=sys.stderr)
                time.sleep(backoff)
                reconnect()
                continue
            if args.watch is None:
                break
            time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    finally:
        cleanup()
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run the sharded serving fleet: N supervised workers + TCP front.

    ``repro fleet --workers 4 --state-dir DIR`` spawns four worker
    processes (each a full prediction service owning a consistent-hash
    shard of links, backed by ``DIR/shard-k``) and serves them behind
    one TCP endpoint speaking both wire dialects.  Crashed workers are
    respawned and warm-revive from their WAL/checkpoints; SIGTERM takes
    the fleet down gracefully — front first, then a rolling worker
    shutdown with per-shard checkpoints.
    """
    import signal
    import threading

    from repro.fleet import FleetRunner

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    host, _, port_text = args.listen.partition(":")
    try:
        port = int(port_text) if port_text else 0
    except ValueError:
        raise SystemExit(f"bad --listen {args.listen!r} "
                         f"(expected HOST or HOST:PORT)") from None
    runner = FleetRunner(
        args.workers,
        args.state_dir,
        host=host or "127.0.0.1",
        port=port,
        spec=args.spec,
        cache_size=args.cache_size,
        max_resident=args.max_resident,
        fallback=args.fallback,
        fsync=args.fsync,
        quality=not args.no_quality,
        quality_threshold=args.quality_threshold,
        pool_size=args.pool_size,
        max_pending=args.max_pending,
        call_timeout=args.call_timeout,
    )
    stopping = threading.Event()

    def _graceful(signum, frame) -> None:
        stopping.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    try:
        runner.start()
    except (OSError, RuntimeError, TimeoutError) as exc:
        raise SystemExit(f"fleet failed to start: {exc}") from None
    front_host, front_port = runner.address
    print(f"fleet: {args.workers} workers behind {front_host}:{front_port}"
          + (f" (state: {args.state_dir})" if args.state_dir else ""),
          file=sys.stderr, flush=True)
    try:
        while not stopping.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        print("fleet: rolling shutdown...", file=sys.stderr, flush=True)
        runner.stop()
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a ULM log into a running service through ``observe_batch``.

    The load driver for grid-scale campaigns: batches of N observations
    per round trip, each batch folded under grouped link locks and made
    durable by one WAL group commit server-side.  Per-record byte
    offsets ride along so a durable server records its resume point
    exactly as the in-process follower would.
    """
    from repro.client import ServiceClient
    from repro.logs.ulm import ULMError, parse_record

    if args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    path = Path(args.log_file)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SystemExit(f"cannot read log file {path}: {exc}") from None
    link = args.link or path.stem
    items: List[Dict[str, object]] = []
    skipped = 0
    pos = 0
    for line in raw.split(b"\n"):
        pos = min(pos + len(line) + 1, len(raw))
        stripped = line.decode("utf-8", errors="replace").strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            record = parse_record(stripped)
        except ULMError:
            skipped += 1
            continue
        items.append({
            "link": link, "size": record.file_size,
            "start": record.start_time, "end": record.end_time,
            "bandwidth": record.bandwidth,
            "operation": record.operation.value,
            "streams": record.streams, "tcp_buffer": record.tcp_buffer,
            "offset": pos,
        })
    if not items:
        raise SystemExit(f"no parseable records in {path}")
    acked = failed = batches = 0
    t0 = time.perf_counter()
    try:
        with ServiceClient(args.socket) as client:
            for lo in range(0, len(items), args.batch):
                batches += 1
                for result in client.observe_batch(items[lo:lo + args.batch]):
                    if result.get("ok"):
                        acked += 1
                    else:
                        failed += 1
    except (OSError, ConnectionError) as exc:
        raise SystemExit(
            f"cannot reach server at {args.socket}: {exc}") from None
    elapsed = time.perf_counter() - t0
    rate = acked / elapsed if elapsed > 0 else 0.0
    _emit(
        {
            "link": link, "records": len(items), "acked": acked,
            "failed": failed, "skipped_lines": skipped, "batches": batches,
            "seconds": round(elapsed, 3),
            "records_per_second": round(rate, 1),
        },
        args.json,
        f"{link}: acked {acked}/{len(items)} records in {batches} "
        f"batch(es), {elapsed:.2f}s ({rate:,.0f} rec/s)",
    )
    return 0 if failed == 0 else 1


def _load_batch_items(path: str) -> List[Dict[str, object]]:
    """Batch items from a JSON array file or a JSON-lines file.

    Each item is ``{"link": ..., "size": ...}`` (plus optional
    ``spec``/``now``) or a ``[link, size]`` / ``[link, size, spec]``
    array; sizes accept the usual KB/MB/GB suffixes.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read batch file {path}: {exc}") from None
    stripped = text.lstrip()
    if not stripped:
        raise SystemExit(f"batch file {path} is empty")
    try:
        if stripped.startswith("["):
            entries = json.loads(text)
        else:
            entries = [
                json.loads(line) for line in text.splitlines() if line.strip()
            ]
    except ValueError as exc:
        raise SystemExit(f"bad JSON in batch file {path}: {exc}") from None
    items: List[Dict[str, object]] = []
    for pos, entry in enumerate(entries):
        if isinstance(entry, dict):
            item = dict(entry)
        elif isinstance(entry, list) and 2 <= len(entry) <= 4:
            item = {"link": entry[0], "size": entry[1]}
            if len(entry) > 2 and entry[2] is not None:
                item["spec"] = entry[2]
            if len(entry) > 3 and entry[3] is not None:
                item["now"] = entry[3]
        else:
            raise SystemExit(
                f"batch file {path} item {pos}: expected an object or a "
                f"[link, size(, spec(, now))] array"
            )
        if "size" in item and isinstance(item["size"], str):
            item["size"] = _parse_size(item["size"])
        items.append(item)
    return items


def _cmd_query(args: argparse.Namespace) -> int:
    req: Dict[str, object] = {"op": args.op}
    if args.kind and args.op in ("trace", "events"):
        req["kind"] = args.kind
    if args.limit is not None and args.op in ("spans", "events"):
        req["limit"] = args.limit
    if args.op == "predict":
        if not args.link or args.size is None:
            raise SystemExit("query predict needs --link and --size")
        req.update({"link": args.link, "size": _parse_size(args.size)})
    elif args.op == "batch":
        if not args.batch:
            raise SystemExit("query batch needs --batch FILE")
        req["op"] = "predict_batch"
        req["items"] = _load_batch_items(args.batch)
    elif args.op == "rank":
        if not args.candidates or args.size is None:
            raise SystemExit("query rank needs --candidates and --size")
        req.update({
            "candidates": [c.strip() for c in args.candidates.split(",") if c.strip()],
            "size": _parse_size(args.size),
        })
    if args.spec:
        req["spec"] = args.spec
    if args.now is not None:
        req["now"] = args.now

    if args.socket:
        from repro.client import ServiceClient

        try:
            with ServiceClient(args.socket, binary=args.binary) as client:
                response = client.request(req)
        except (OSError, ConnectionError) as exc:
            raise SystemExit(f"cannot reach server at {args.socket}: {exc}") from None
    elif args.logs:
        if args.binary:
            raise SystemExit("--binary needs a live server (--socket)")
        from repro.service.server import handle_request

        service = _build_service(
            [p.strip() for p in args.logs.split(",") if p.strip()],
            args.spec or "C-AVG15", cache_size=2048,
        )
        response = handle_request(service, req)
    else:
        raise SystemExit("query needs --socket (live server) or --logs (in-process)")

    if not response.get("ok"):
        from repro.client import error_info

        code, message = error_info(response)
        detail = message if code == "error" else f"{code}: {message}"
        raise SystemExit(f"query failed: {detail}")

    _emit(response, args.json, _render_query(args.op, response))
    return 0


def _render_query(op: str, response: Dict) -> str:
    if op == "ping":
        return "pong"
    if op == "batch":
        lines = []
        ok = 0
        for i, item in enumerate(response["results"]):
            if not item.get("ok"):
                from repro.client import error_info

                code, message = error_info(item)
                lines.append(f"{i}. error [{code}] {message}")
                continue
            ok += 1
            value = item["value"]
            rendered = (
                f"{value / 1e6:.3f} MB/s" if value is not None else "no prediction"
            )
            if item.get("degraded"):
                rendered += " [degraded fallback]"
            lines.append(
                f"{i}. {item['link']} [{item['spec']}] size={item['size']}: "
                f"{rendered} ({'cached' if item['cached'] else 'computed'})"
            )
        lines.append(f"{ok}/{response['count']} predictions answered")
        return "\n".join(lines)
    if op == "predict":
        value = response["value"]
        rendered = f"{value / 1e6:.3f} MB/s" if value is not None else "no prediction"
        if response.get("degraded"):
            rendered += " [degraded fallback]"
        return (
            f"{response['link']} [{response['spec']}] "
            f"size={response['size']}: {rendered} "
            f"({'cached' if response['cached'] else 'computed'}, "
            f"history={response['history_length']})"
        )
    if op == "rank":
        lines = []
        for i, item in enumerate(response["ranking"], start=1):
            bw = item["predicted_bandwidth"]
            rendered = f"{bw / 1e6:.3f} MB/s" if bw is not None else "no prediction"
            lines.append(
                f"{i}. {item['site']}: {rendered} "
                f"(history={item['history_length']})"
            )
        return "\n".join(lines)
    if op == "metrics":
        lines = []
        for name, data in sorted(response["metrics"].items()):
            if data["type"] in ("counter", "gauge"):
                lines.append(f"{name} {data['value']:g}")
            else:
                for key in ("count", "mean", "p50", "p90", "p99", "max"):
                    if key in data:
                        lines.append(f"{name}_{key} {data[key]:g}")
        return "\n".join(lines)
    return json.dumps(response, indent=2)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the IPPS 2002 wide-area transfer prediction paper.",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the subcommand under cProfile: dump pstats to "
             "--profile-out and print a hotspot summary to stderr",
    )
    parser.add_argument(
        "--profile-out", default="repro.pstats", metavar="PATH",
        help="where --profile writes the raw pstats dump",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a two-week campaign, save ULM logs")
    campaign.add_argument("--month", default="aug", help="aug or dec")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--out-dir", default="logs")
    campaign.set_defaults(func=_cmd_campaign)

    report = sub.add_parser("report", help="print a figure/table analogue")
    report.add_argument(
        "kind",
        choices=["census", "errors", "classification", "relative", "nws", "summary"],
    )
    report.add_argument("--month", default="aug")
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--link", default=None, help="LBL-ANL or ISI-ANL")
    report.add_argument("--class", dest="size_class", default=None,
                        help="10MB, 100MB, 500MB, or 1GB")
    report.add_argument(
        "--predictors", default=None,
        help="comma-separated predictor specs for 'relative' "
             "(default: every C- variant)",
    )
    report.set_defaults(func=_cmd_report)

    evaluate_cmd = sub.add_parser(
        "evaluate", help="walk predictors over external ULM log files"
    )
    evaluate_cmd.add_argument(
        "log_files", nargs="+", metavar="log_file",
        help="ULM transfer logs (one evaluated link per file, keyed by stem)",
    )
    evaluate_cmd.add_argument(
        "--no-cache", action="store_true",
        help="skip reading/writing the .npz sidecar next to each log",
    )
    evaluate_cmd.add_argument(
        "--predictors", default="C-AVG15,C-MED,C-LV,SIZE",
        help="comma-separated predictor specs (Figure 4 names, C- variants, SIZE)",
    )
    evaluate_cmd.add_argument("--training", type=int, default=15)
    evaluate_cmd.add_argument("--class", dest="size_class", default=None,
                              help="restrict the per-class columns to one class")
    evaluate_cmd.add_argument(
        "--engine", choices=list(ENGINES), default="auto",
        help="evaluation engine (auto picks the vectorized path when possible)",
    )
    evaluate_cmd.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON instead of a table")
    evaluate_cmd.set_defaults(func=_cmd_evaluate)

    export_cmd = sub.add_parser(
        "export", help="write every figure's data as CSV files"
    )
    export_cmd.add_argument("--seed", type=int, default=1)
    export_cmd.add_argument("--out-dir", default="figures")
    export_cmd.add_argument(
        "--with-nws", action="store_true",
        help="attach NWS sensors so the Figures 1-2 probe series export too",
    )
    export_cmd.set_defaults(func=_cmd_export)

    serve = sub.add_parser(
        "serve", help="run the online prediction service over ULM logs"
    )
    serve.add_argument("logs", nargs="+", help="ULM log files to ingest (link = stem)")
    serve.add_argument("--socket", default=None,
                       help="unix socket path to answer queries on")
    serve.add_argument("--link", default=None,
                       help="override the link name (single log only)")
    serve.add_argument("--spec", default="C-AVG15",
                       help="default predictor spec for unqualified queries")
    serve.add_argument("--cache-size", type=int, default=2048,
                       help="prediction LRU capacity")
    serve.add_argument("--follow", action="store_true",
                       help="keep tailing the logs for appended records")
    serve.add_argument("--interval", type=float, default=1.0,
                       help="tail poll interval in seconds")
    serve.add_argument("--fallback", action="store_true",
                       help="answer unknown links with a low-confidence "
                            "link-agnostic aggregate instead of no value")
    serve.add_argument("--oneshot", action="store_true",
                       help="ingest, print service status JSON, and exit")
    serve.add_argument("--metrics-interval", type=float, default=60.0,
                       help="seconds between --metrics-file snapshots")
    serve.add_argument("--metrics-file", default=None,
                       help="append periodic registry snapshots (JSONL) here")
    serve.add_argument("--legacy-errors", action="store_true",
                       help="emit deprecated bare-string errors to JSON "
                            "clients (one-release compatibility bridge)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="durable tiered store directory: write-through "
                            "history, checkpoint on shutdown, warm restart")
    serve.add_argument("--max-resident", type=int, default=None, metavar="N",
                       help="evict least-recently-used links to the state "
                            "dir past N resident links (needs --state-dir)")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync store writes (power-loss durability; "
                            "default covers process death only)")
    serve.add_argument("--no-quality", action="store_true",
                       help="disable the online accuracy tracker "
                            "(prediction/observation pairing)")
    serve.add_argument("--quality-threshold", type=float, default=1.0,
                       metavar="FRAC",
                       help="log prediction.bad events for scored "
                            "predictions whose absolute fractional error "
                            "meets FRAC (default 1.0 = 100%%)")
    serve.set_defaults(func=_cmd_serve)

    ingest = sub.add_parser(
        "ingest",
        help="stream a ULM log into a running service via observe_batch",
    )
    ingest.add_argument("log_file", help="ULM transfer log to stream")
    ingest.add_argument("--socket", required=True,
                        help="unix socket of the running service")
    ingest.add_argument("--batch", type=int, default=500, metavar="N",
                        help="observations per observe_batch round trip")
    ingest.add_argument("--link", default=None,
                        help="override the link name (default: file stem)")
    ingest.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON summary")
    ingest.set_defaults(func=_cmd_ingest)

    fleet = sub.add_parser(
        "fleet", help="run a sharded fleet of supervised prediction workers"
    )
    fleet.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker processes (one consistent-hash shard each)")
    fleet.add_argument("--state-dir", default=None, metavar="DIR",
                       help="fleet state root: worker sockets plus one "
                            "durable store shard per worker (default: "
                            "a temp dir that dies with the fleet)")
    fleet.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="front-tier TCP address (port 0 picks a free one)")
    fleet.add_argument("--spec", default="C-AVG15",
                       help="default predictor spec for unqualified queries")
    fleet.add_argument("--cache-size", type=int, default=2048,
                       help="per-worker prediction LRU capacity")
    fleet.add_argument("--max-resident", type=int, default=None, metavar="N",
                       help="per-worker resident-link cap (evict to store)")
    fleet.add_argument("--fallback", action="store_true",
                       help="serve last-good degraded answers while a shard "
                            "is down (and aggregate answers for unknown links)")
    fleet.add_argument("--fsync", action="store_true",
                       help="fsync store writes in every worker")
    fleet.add_argument("--no-quality", action="store_true",
                       help="disable the per-worker accuracy trackers")
    fleet.add_argument("--quality-threshold", type=float, default=1.0,
                       metavar="FRAC", help="per-worker bad-prediction "
                       "event threshold (see `repro serve`)")
    fleet.add_argument("--pool-size", type=int, default=4,
                       help="front-tier connections pooled per worker")
    fleet.add_argument("--max-pending", type=int, default=64, metavar="N",
                       help="admission bound: shed load past N in-flight "
                            "requests per worker (answers 'overloaded')")
    fleet.add_argument("--call-timeout", type=float, default=5.0,
                       help="per-request worker timeout before the front "
                            "counts a failure against the shard's breaker")
    fleet.set_defaults(func=_cmd_fleet)

    status_cmd = sub.add_parser(
        "status", help="show the live service scoreboard"
    )
    status_cmd.add_argument("--socket", default=None,
                            help="socket of a running server")
    status_cmd.add_argument("--binary", action="store_true",
                            help="speak the binary frame protocol "
                                 "(needs --socket)")
    status_cmd.add_argument("--logs", default=None,
                            help="comma-separated ULM logs for an "
                                 "in-process scoreboard")
    status_cmd.add_argument("--spec", default=None,
                            help="default predictor spec for --logs")
    status_cmd.add_argument("--watch", type=float, default=None, metavar="N",
                            help="refresh every N seconds until interrupted")
    status_cmd.add_argument("--json", action="store_true",
                            help="emit {status, metrics} JSON instead of the "
                                 "scoreboard (JSON lines under --watch)")
    status_cmd.set_defaults(func=_cmd_status)

    query = sub.add_parser("query", help="query a prediction service")
    query.add_argument(
        "op",
        choices=["ping", "predict", "batch", "rank", "status", "metrics",
                 "spans", "events", "trace"],
    )
    query.add_argument("--socket", default=None, help="socket of a running server")
    query.add_argument("--binary", action="store_true",
                       help="speak the binary frame protocol (needs --socket)")
    query.add_argument("--batch", default=None, metavar="FILE",
                       help="batch items file (JSON array or JSON lines) "
                            "for the batch op")
    query.add_argument("--logs", default=None,
                       help="comma-separated ULM logs for an in-process answer")
    query.add_argument("--link", default=None, help="link to predict for")
    query.add_argument("--size", default=None,
                       help="transfer size (bytes, or with KB/MB/GB suffix)")
    query.add_argument("--candidates", default=None,
                       help="comma-separated candidate links for rank")
    query.add_argument("--spec", default=None, help="predictor spec")
    query.add_argument("--now", type=float, default=None,
                       help="anchor time (epoch seconds; default: wall clock)")
    query.add_argument("--kind", default=None,
                       help="filter events/trace by event kind")
    query.add_argument("--limit", type=int, default=None,
                       help="keep only the newest N spans/events")
    query.add_argument("--json", action="store_true",
                       help="emit the raw JSON response")
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.profile:
            from repro.obs.profile import run_profiled

            code, report = run_profiled(args.func, args)
            report.dump(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)
            print(report.summary(15), file=sys.stderr)
            return code
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
