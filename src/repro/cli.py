"""Command-line interface: run campaigns and print figure analogues.

Examples::

    repro campaign --month aug --seed 1 --out-dir logs/
    repro report census --seed 1
    repro report errors --link LBL-ANL --class 1GB --seed 1
    repro report classification --link ISI-ANL --seed 1
    repro report relative --link LBL-ANL --class 100MB --seed 1
    repro report nws --link LBL-ANL --seed 1
    repro report summary --seed 1
    repro evaluate logs/aug-LBL-ANL.ulm --predictors C-AVG15,C-MED,SIZE
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Optional

from repro.analysis import (
    check_summary_claims,
    compare_probe_vs_gridftp,
    compute_census,
    compute_class_errors,
    compute_classification_impact,
    compute_relative_table,
    render_census,
    render_class_errors,
    render_classification_impact,
    render_nws_comparison,
    render_relative_table,
    render_summary,
)
from repro.core.classification import PAPER_CLASS_LABELS, paper_classification
from repro.core.evaluation import evaluate
from repro.core.predictors.registry import classified_predictors, make_predictor
from repro.core.predictors.size_model import SizeScaledPredictor
from repro.logs.logfile import TransferLog
from repro.workload import AUG_2001, DEC_2001, run_month, run_month_with_nws
from repro.workload.campaigns import CampaignOutput

__all__ = ["main"]

_MONTHS = {"aug": AUG_2001, "dec": DEC_2001}


def _start_epoch(month: str) -> float:
    try:
        return _MONTHS[month.lower()]
    except KeyError:
        raise SystemExit(f"unknown month {month!r}; expected aug or dec") from None


def _run(month: str, seed: int, with_nws: bool = False) -> Dict[str, CampaignOutput]:
    start = _start_epoch(month)
    runner = run_month_with_nws if with_nws else run_month
    return runner(start_epoch=start, seed=seed)


def _cmd_campaign(args: argparse.Namespace) -> int:
    outputs = _run(args.month, args.seed)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for link, output in outputs.items():
        path = out_dir / f"{args.month}-{link}.ulm"
        n = output.log.save(path)
        print(f"{link}: wrote {n} records to {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "census":
        months = {
            "August": _run("aug", args.seed),
            "December": _run("dec", args.seed),
        }
        print(render_census(compute_census(months)))
        return 0

    outputs = _run(args.month, args.seed, with_nws=(kind == "nws"))
    if kind == "nws":
        for link, output in _select(outputs, args.link).items():
            print(render_nws_comparison(compare_probe_vs_gridftp(output)))
            print()
        return 0

    for link, output in _select(outputs, args.link).items():
        errors = compute_class_errors(link, output.log.records())
        if kind == "errors":
            for label in _labels(args.size_class):
                print(render_class_errors(errors, label))
                print()
        elif kind == "classification":
            print(render_classification_impact(compute_classification_impact(errors)))
            print()
        elif kind == "relative":
            table = compute_relative_table(
                link, errors.result,
                predictor_names=tuple(classified_predictors()),
            )
            for label in _labels(args.size_class):
                print(render_relative_table(table, label))
                print()
        elif kind == "summary":
            print(render_summary(check_summary_claims(errors)))
            print()
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"unknown report kind {kind!r}")
    return 0


def _resolve_predictor(name: str):
    """Registry names plus the SIZE extension; raises SystemExit on typos."""
    if name == "SIZE":
        return SizeScaledPredictor()
    try:
        return make_predictor(name)
    except KeyError:
        raise SystemExit(
            f"unknown predictor {name!r}; expected a Figure 4 name "
            f"(optionally C- prefixed) or SIZE"
        ) from None


def _cmd_evaluate(args: argparse.Namespace) -> int:
    """Walk predictors over an external ULM log file."""
    from repro.analysis.report import render_table

    log = TransferLog.load(args.log_file)
    if len(log) <= args.training:
        raise SystemExit(
            f"{args.log_file}: {len(log)} records, need more than "
            f"the training prefix ({args.training})"
        )
    names = [n.strip() for n in args.predictors.split(",") if n.strip()]
    battery = {name: _resolve_predictor(name) for name in names}
    result = evaluate(log.records(), battery, training=args.training)

    cls = paper_classification()
    rows = []
    for name in names:
        trace = result[name]
        row = [name]
        for label in cls.labels:
            row.append(trace.mean_abs_pct_error(trace.class_mask(cls, label)))
        row.append(trace.mean_abs_pct_error())
        row.append(trace.abstentions)
        rows.append(row)
    print(render_table(
        ["predictor", *cls.labels, "overall", "abstained"],
        rows,
        title=(
            f"{args.log_file}: {len(log)} records, "
            f"{len(log) - args.training} predictions per predictor "
            f"(MAPE %)"
        ),
    ))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """Write every figure's data as CSV files."""
    from repro.analysis.export import export_all

    months = {
        "August": _run("aug", args.seed, with_nws=args.with_nws),
        "December": _run("dec", args.seed, with_nws=args.with_nws),
    }
    written = export_all(months, args.out_dir)
    for path in written:
        print(f"wrote {path}")
    return 0


def _select(
    outputs: Dict[str, CampaignOutput], link: Optional[str]
) -> Dict[str, CampaignOutput]:
    if link is None:
        return outputs
    if link not in outputs:
        raise SystemExit(f"unknown link {link!r}; expected one of {list(outputs)}")
    return {link: outputs[link]}


def _labels(size_class: Optional[str]) -> tuple:
    if size_class is None:
        return PAPER_CLASS_LABELS
    if size_class not in PAPER_CLASS_LABELS:
        raise SystemExit(
            f"unknown class {size_class!r}; expected one of {PAPER_CLASS_LABELS}"
        )
    return (size_class,)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the IPPS 2002 wide-area transfer prediction paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a two-week campaign, save ULM logs")
    campaign.add_argument("--month", default="aug", help="aug or dec")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--out-dir", default="logs")
    campaign.set_defaults(func=_cmd_campaign)

    report = sub.add_parser("report", help="print a figure/table analogue")
    report.add_argument(
        "kind",
        choices=["census", "errors", "classification", "relative", "nws", "summary"],
    )
    report.add_argument("--month", default="aug")
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--link", default=None, help="LBL-ANL or ISI-ANL")
    report.add_argument("--class", dest="size_class", default=None,
                        help="10MB, 100MB, 500MB, or 1GB")
    report.set_defaults(func=_cmd_report)

    evaluate_cmd = sub.add_parser(
        "evaluate", help="walk predictors over an external ULM log file"
    )
    evaluate_cmd.add_argument("log_file", help="path to a ULM transfer log")
    evaluate_cmd.add_argument(
        "--predictors", default="C-AVG15,C-MED,C-LV,SIZE",
        help="comma-separated predictor names (Figure 4 names, C- variants, SIZE)",
    )
    evaluate_cmd.add_argument("--training", type=int, default=15)
    evaluate_cmd.set_defaults(func=_cmd_evaluate)

    export_cmd = sub.add_parser(
        "export", help="write every figure's data as CSV files"
    )
    export_cmd.add_argument("--seed", type=int, default=1)
    export_cmd.add_argument("--out-dir", default="figures")
    export_cmd.add_argument(
        "--with-nws", action="store_true",
        help="attach NWS sensors so the Figures 1-2 probe series export too",
    )
    export_cmd.set_defaults(func=_cmd_export)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
