"""Property test: incremental summaries equal batch summaries, always."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import RunningSummary
from repro.logs.stats import BandwidthSummary


@given(values=st.lists(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    min_size=1, max_size=200,
))
@settings(max_examples=200)
def test_incremental_equals_batch(values):
    running = RunningSummary()
    for v in values:
        running.add(v)
    incremental = running.summary()

    arr = np.asarray(values)
    assert incremental.count == len(values)
    assert incremental.minimum == arr.min()
    assert incremental.maximum == arr.max()
    assert np.isclose(incremental.mean, arr.mean(), rtol=1e-9)
    assert np.isclose(incremental.median, np.median(arr), rtol=1e-9)
    # Welford and numpy's two-pass formula legitimately differ in the last
    # few bits when the spread is ~12 orders below the mean.
    assert np.isclose(incremental.stddev, arr.std(ddof=0),
                      rtol=1e-4, atol=1e-12 * arr.mean())


@given(values=st.lists(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
    min_size=1, max_size=50,
))
@settings(max_examples=100)
def test_order_independence(values):
    a, b = RunningSummary(), RunningSummary()
    for v in values:
        a.add(v)
    for v in sorted(values, reverse=True):
        b.add(v)
    sa, sb = a.summary(), b.summary()
    assert sa.count == sb.count
    assert sa.minimum == sb.minimum and sa.maximum == sb.maximum
    assert np.isclose(sa.mean, sb.mean, rtol=1e-9)
    assert np.isclose(sa.median, sb.median, rtol=1e-9)


def test_empty_summary_is_canonical():
    assert RunningSummary().summary() == BandwidthSummary.empty()
