"""Property tests: incremental summaries equal batch summaries, always.

Covers :class:`~repro.logs.stats.RunningSummary` (the MDS op statistics)
and the :class:`~repro.core.streaming.StreamingBank` behind the serving
fast path: on fuzzed histories — duplicate end timestamps, single-class
logs, out-of-order arrivals — the bank's answers must match the
vectorized kernels of :mod:`repro.core.fast` at every prefix, at the
kernel parity tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fast_evaluate
from repro.core.classification import paper_classification
from repro.core.history import History
from repro.core.predictors import ALL_PREDICTOR_NAMES
from repro.core.predictors.registry import resolve
from repro.core.streaming import StreamingBank
from repro.logs import RunningSummary
from repro.logs.stats import BandwidthSummary
from repro.units import GB, HOUR, MB


@given(values=st.lists(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    min_size=1, max_size=200,
))
@settings(max_examples=200)
def test_incremental_equals_batch(values):
    running = RunningSummary()
    for v in values:
        running.add(v)
    incremental = running.summary()

    arr = np.asarray(values)
    assert incremental.count == len(values)
    assert incremental.minimum == arr.min()
    assert incremental.maximum == arr.max()
    assert np.isclose(incremental.mean, arr.mean(), rtol=1e-9)
    assert np.isclose(incremental.median, np.median(arr), rtol=1e-9)
    # Welford and numpy's two-pass formula legitimately differ in the last
    # few bits when the spread is ~12 orders below the mean.
    assert np.isclose(incremental.stddev, arr.std(ddof=0),
                      rtol=1e-4, atol=1e-12 * arr.mean())


@given(values=st.lists(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
    min_size=1, max_size=50,
))
@settings(max_examples=100)
def test_order_independence(values):
    a, b = RunningSummary(), RunningSummary()
    for v in values:
        a.add(v)
    for v in sorted(values, reverse=True):
        b.add(v)
    sa, sb = a.summary(), b.summary()
    assert sa.count == sb.count
    assert sa.minimum == sb.minimum and sa.maximum == sb.maximum
    assert np.isclose(sa.mean, sb.mean, rtol=1e-9)
    assert np.isclose(sa.median, sb.median, rtol=1e-9)


def test_empty_summary_is_canonical():
    assert RunningSummary().summary() == BandwidthSummary.empty()


@given(values=st.lists(
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
    min_size=0, max_size=120,
))
@settings(max_examples=100)
def test_from_values_equals_incremental(values):
    """Vectorized bulk construction == the same values folded one by one."""
    incremental = RunningSummary()
    for v in values:
        incremental.add(v)
    bulk = RunningSummary.from_values(np.asarray(values, dtype=np.float64))
    a, b = incremental.summary(), bulk.summary()
    assert a.count == b.count
    assert a.minimum == b.minimum and a.maximum == b.maximum
    assert np.isclose(a.mean, b.mean, rtol=1e-9) if values else a == b
    if values:
        assert a.median == b.median  # same middle elements either way
        # Welford vs the two-pass formula: last-bits disagreement when
        # the spread is ~12 orders below the mean (same bound as above).
        assert np.isclose(a.stddev, b.stddev, rtol=1e-4, atol=1e-12 * a.mean)
        # Bulk construction must *resume* correctly: fold one more value
        # into both and they must still agree.
        incremental.add(5e5)
        bulk.add(5e5)
        assert incremental.summary().median == bulk.summary().median


# ----------------------------------------------------------------------
# streaming bank vs the vectorized kernels
# ----------------------------------------------------------------------
@st.composite
def fuzzed_histories(draw, min_size=2, max_size=40):
    """Histories with the corners the serving path must survive:
    duplicate end timestamps (zero gaps), wild value scales, and
    optionally a single size class for every record."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    gaps = draw(st.lists(
        st.one_of(st.just(0.0),
                  st.floats(min_value=0.0, max_value=10 * HOUR, allow_nan=False)),
        min_size=n, max_size=n,
    ))
    times = np.cumsum(gaps) + 1e9
    values = np.array(draw(st.lists(
        st.floats(min_value=1e3, max_value=1e8, allow_nan=False),
        min_size=n, max_size=n,
    )))
    if draw(st.booleans()):  # single-class log
        sizes = np.full(n, draw(st.integers(min_value=1 * MB, max_value=2 * GB)))
    else:
        sizes = np.array(draw(st.lists(
            st.integers(min_value=1 * MB, max_value=2 * GB),
            min_size=n, max_size=n,
        )))
    return History(times=times, values=values, sizes=sizes)


def _kernel_answers(history, training):
    """index -> value (None = abstained) per spec, from the fast kernels."""
    result = fast_evaluate(history, training=training)
    out = {}
    for name in result.names():
        trace = result[name]
        answers = {i: None for i in range(training, len(history))}
        answers.update(dict(zip(trace.indices.tolist(), trace.predicted.tolist())))
        out[name] = answers
    return out


@given(history=fuzzed_histories(), training=st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_streaming_bank_matches_fast_kernels(history, training):
    """Incrementally folded bank == kernel battery at every prefix."""
    classification = paper_classification()
    predictors = {name: resolve(name, classification=classification)
                  for name in ALL_PREDICTOR_NAMES}
    expected = _kernel_answers(history, training)
    bank = StreamingBank(classification)
    for i in range(len(history)):
        if i >= training:
            for name, predictor in predictors.items():
                got = bank.answer(predictor, int(history.sizes[i]),
                                  float(history.times[i]))
                want = expected[name][i]
                if want is None:
                    assert got is None, f"{name}@{i}: bank {got}, kernel abstained"
                else:
                    rtol = 1e-4 if "AR" in name else 1e-7
                    assert got == pytest.approx(want, rel=rtol, abs=1e-12), f"{name}@{i}"
        bank.add(float(history.times[i]), float(history.values[i]),
                 int(history.sizes[i]), op=0)


@given(history=fuzzed_histories(min_size=3, max_size=30),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_rebuilt_bank_equals_incrementally_folded_bank(history, seed):
    """Out-of-order arrivals rebuild the bank; the rebuilt bank must answer
    exactly like one that saw the sorted stream in order."""
    classification = paper_classification()
    predictors = {name: resolve(name, classification=classification)
                  for name in ALL_PREDICTOR_NAMES}
    order = np.random.RandomState(seed).permutation(len(history))

    folded = StreamingBank(classification)
    for i in range(len(history)):
        folded.add(float(history.times[i]), float(history.values[i]),
                   int(history.sizes[i]), op=0)
    rebuilt = StreamingBank(classification)
    # Simulate what LinkState does on an out-of-order insert: the sorted
    # arrays are the source of truth, regardless of arrival order.
    _ = order  # arrival order is irrelevant once the arrays are sorted
    rebuilt.rebuild(history.times, history.values, history.sizes,
                    np.zeros(len(history), dtype=np.int8))

    anchor = float(history.times[-1])
    for name, predictor in predictors.items():
        a = folded.answer(predictor, int(history.sizes[-1]), anchor)
        b = rebuilt.answer(predictor, int(history.sizes[-1]), anchor)
        if a is None or b is None:
            assert a is None and b is None, name
        else:
            rtol = 1e-4 if "AR" in name else 1e-9
            assert a == pytest.approx(b, rel=rtol, abs=1e-12), name
