"""Property tests: ULM serialization round-trips for arbitrary records."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import Operation, TransferRecord, format_record, parse_record
from repro.logs.ulm import format_fields, parse_fields

# File names can contain nearly anything printable (the paper's contain
# spaces); avoid control characters which no filesystem produces.
file_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=80,
).filter(lambda s: s.strip())

records = st.builds(
    lambda name, size, start, duration, bw, op, streams, buffer: TransferRecord(
        source_ip="140.221.65.69",
        file_name=name,
        file_size=size,
        volume="/home/ftp",
        start_time=start,
        end_time=start + duration,
        bandwidth=bw,
        operation=op,
        streams=streams,
        tcp_buffer=buffer,
    ),
    name=file_names,
    size=st.integers(min_value=1, max_value=10**12),
    start=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    duration=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    bw=st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    op=st.sampled_from([Operation.READ, Operation.WRITE]),
    streams=st.integers(min_value=1, max_value=64),
    buffer=st.integers(min_value=1, max_value=10**8),
)


@given(record=records)
@settings(max_examples=200)
def test_record_roundtrip_exact(record):
    assert parse_record(format_record(record)) == record


@given(
    pairs=st.lists(
        st.tuples(
            st.from_regex(r"[A-Za-z][A-Za-z0-9.]{0,15}", fullmatch=True),
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=40,
            ),
        ),
        max_size=10,
        unique_by=lambda kv: kv[0],
    )
)
@settings(max_examples=200)
def test_fields_roundtrip(pairs):
    line = format_fields(pairs)
    assert parse_fields(line) == dict(pairs)


@given(record=records)
def test_formatted_line_is_single_line(record):
    assert "\n" not in format_record(record)
