"""Property tests: replica broker ranking invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReplicaBroker
from repro.core.predictors import TotalAverage
from repro.logs import TransferLog
from repro.storage import ReplicaCatalog
from repro.units import MB
from tests.conftest import make_record

CLIENT = "140.221.65.69"


@st.composite
def site_worlds(draw):
    """2-5 sites, each with 0-10 records of random bandwidth to the client."""
    n_sites = draw(st.integers(min_value=2, max_value=5))
    sites = [f"S{i}" for i in range(n_sites)]
    logs = {}
    for site in sites:
        n = draw(st.integers(min_value=0, max_value=10))
        log = TransferLog()
        for j in range(n):
            bw = draw(st.floats(min_value=1e5, max_value=2e7, allow_nan=False))
            log.append(
                make_record(start=1000.0 * (j + 1), size=500 * MB,
                            bandwidth=bw, source_ip=CLIENT)
            )
        logs[site] = log
    return sites, logs


@given(world=site_worlds())
@settings(max_examples=100)
def test_ranking_is_a_permutation_sorted_by_prediction(world):
    sites, logs = world
    catalog = ReplicaCatalog()
    for site in sites:
        catalog.register("f", site, 500 * MB)
    broker = ReplicaBroker(catalog, logs, TotalAverage())
    ranked = broker.rank("f", CLIENT, now=1e9)

    # Permutation of all candidates.
    assert sorted(r.site for r in ranked) == sorted(sites)

    # Known-bandwidth candidates precede unknowns and descend.
    known = [r for r in ranked if r.predicted_bandwidth is not None]
    unknown = [r for r in ranked if r.predicted_bandwidth is None]
    assert ranked == known + unknown
    values = [r.predicted_bandwidth for r in known]
    assert values == sorted(values, reverse=True)

    # Predictions equal each site's own history mean.
    for r in known:
        records = logs[r.site].records()
        expected = float(np.mean([rec.bandwidth for rec in records]))
        assert r.predicted_bandwidth == expected


@given(world=site_worlds())
@settings(max_examples=50)
def test_select_is_first_of_rank_and_stable(world):
    sites, logs = world
    catalog = ReplicaCatalog()
    for site in sites:
        catalog.register("f", site, 500 * MB)
    broker = ReplicaBroker(catalog, logs, TotalAverage())
    first = broker.select("f", CLIENT, now=1e9)
    again = broker.select("f", CLIENT, now=1e9)
    assert first == again == broker.rank("f", CLIENT, now=1e9)[0]
