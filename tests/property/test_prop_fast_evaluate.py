"""Property test: fast_evaluate ≡ generic evaluate on arbitrary histories.

The campaign-log parity test covers realistic data; this covers the
corners hypothesis can reach — tiny histories, duplicate timestamps,
constant series, wild value scales, training prefixes near the history
length.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate, fast_evaluate
from repro.core.predictors import classified_predictors, paper_predictors
from tests.property.test_prop_predictors import histories


@given(
    history=histories(min_size=2, max_size=40),
    training=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_fast_matches_generic_everywhere(history, training):
    battery = {**paper_predictors(), **classified_predictors()}
    generic = evaluate(history, battery, training=training)
    fast = fast_evaluate(history, training=training)

    assert set(fast.names()) == set(generic.names())
    for name in generic.names():
        g, f = generic[name], fast[name]
        assert list(f.indices) == list(g.indices), name
        assert f.abstentions == g.abstentions, name
        # AR fits via prefix sums cancel catastrophically near-singular
        # cases that the generic two-pass formula resolves differently;
        # both are legitimate least-squares answers within ~1e-4.
        rtol = 1e-4 if "AR" in name else 1e-7
        np.testing.assert_allclose(
            f.predicted, g.predicted, rtol=rtol, atol=1e-12,
            err_msg=name,
        )


@given(history=histories(min_size=2, max_size=30))
@settings(max_examples=30, deadline=None)
def test_fast_on_constant_series_predicts_exactly(history):
    constant = type(history)(
        times=history.times,
        values=np.full(len(history), 7e6),
        sizes=history.sizes,
    )
    fast = fast_evaluate(constant, training=1)
    for name, trace in fast.traces.items():
        if len(trace):
            np.testing.assert_allclose(trace.predicted, 7e6, err_msg=name)
