"""Property tests: event engine ordering and clock monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=50,
    )
)
@settings(max_examples=150)
def test_events_fire_in_nondecreasing_time_order(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda t=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=30,
    ),
    cut=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
@settings(max_examples=150)
def test_run_until_is_a_clean_partition(delays, cut):
    """Events <= cut fire in the first run; the rest fire in the second;
    nothing is lost or duplicated."""
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda t=d: fired.append(t))
    eng.run(until=cut)
    early = list(fired)
    assert all(t <= cut for t in early)
    eng.run()
    assert sorted(fired) == sorted(delays)
    assert len(fired) == len(delays)


@given(
    same_time=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    n=st.integers(min_value=2, max_value=20),
)
@settings(max_examples=50)
def test_fifo_among_simultaneous_events(same_time, n):
    eng = Engine()
    fired = []
    for i in range(n):
        eng.schedule(same_time, fired.append, i)
    eng.run()
    assert fired == list(range(n))
