"""Property tests: predictor invariants over arbitrary histories.

The central invariants:

* every mean/median predictor's output lies within [min, max] of the
  values it may legally consume;
* predictions are invariant to *future* data (only the prefix matters);
* the classified wrapper equals the base predictor run on the class-
  filtered history.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import History, paper_classification
from repro.core.predictors import (
    ArModel,
    ClassifiedPredictor,
    LastValue,
    TemporalAverage,
    TotalAverage,
    TotalMedian,
    WindowedAverage,
    WindowedMedian,
    paper_predictors,
)
from repro.units import GB, HOUR, MB


@st.composite
def histories(draw, min_size=1, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    gaps = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=10 * HOUR, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    times = np.cumsum(gaps)
    values = np.array(
        draw(
            st.lists(
                st.floats(min_value=1e3, max_value=1e8, allow_nan=False),
                min_size=n, max_size=n,
            )
        )
    )
    sizes = np.array(
        draw(
            st.lists(
                st.integers(min_value=1 * MB, max_value=2 * GB),
                min_size=n, max_size=n,
            )
        )
    )
    return History(times=times, values=values, sizes=sizes)


BOUNDED_PREDICTORS = [
    TotalAverage(),
    TotalMedian(),
    LastValue(),
    WindowedAverage(5),
    WindowedAverage(25),
    WindowedMedian(5),
    TemporalAverage(hours=15),
]


@given(history=histories())
@settings(max_examples=100)
def test_bounded_predictors_stay_in_value_range(history):
    now = float(history.times[-1]) + 60.0
    lo, hi = float(history.values.min()), float(history.values.max())
    for predictor in BOUNDED_PREDICTORS:
        predicted = predictor.predict(history, target_size=100 * MB, now=now)
        if predicted is not None:
            assert lo - 1e-9 <= predicted <= hi + 1e-9, predictor.name


@given(history=histories(min_size=5))
@settings(max_examples=50)
def test_prediction_depends_only_on_prefix(history):
    """Predicting from prefix(k) must ignore observations k..n."""
    k = len(history) // 2
    prefix = history.prefix(k)
    standalone = History(
        times=history.times[:k].copy(),
        values=history.values[:k].copy(),
        sizes=history.sizes[:k].copy(),
    )
    now = float(history.times[k])
    for predictor in paper_predictors().values():
        a = predictor.predict(prefix, target_size=100 * MB, now=now)
        b = predictor.predict(standalone, target_size=100 * MB, now=now)
        assert a == b, predictor.name


@given(history=histories(), target=st.integers(min_value=1 * MB, max_value=2 * GB))
@settings(max_examples=100)
def test_classified_equals_base_on_filtered_history(history, target):
    cls = paper_classification()
    base = TotalAverage()
    wrapped = ClassifiedPredictor(base, cls)
    now = float(history.times[-1]) + 1.0
    label = cls.classify(target)
    filtered = history.of_class(cls, label)
    expected = base.predict(filtered, target_size=target, now=now)
    assert wrapped.predict(history, target_size=target, now=now) == expected


@given(history=histories(min_size=3))
@settings(max_examples=100)
def test_ar_prediction_is_finite_and_positive_floor(history):
    predictor = ArModel()
    predicted = predictor.predict(history, now=float(history.times[-1]) + 1.0)
    assert predicted is not None
    assert np.isfinite(predicted)
    assert predicted >= 0.1 * float(history.values.min()) - 1e-9


@given(history=histories())
@settings(max_examples=100)
def test_constant_history_predicted_exactly(history):
    """Every predictor should nail a constant series."""
    constant = History(
        times=history.times,
        values=np.full(len(history), 5e6),
        sizes=history.sizes,
    )
    now = float(constant.times[-1]) + 1.0
    for predictor in paper_predictors().values():
        predicted = predictor.predict(constant, target_size=100 * MB, now=now)
        if predicted is not None:
            assert predicted == 5e6, predictor.name
