"""Property tests: batched observe is indistinguishable from sequential.

``observe_batch`` must be a pure performance optimization: for ANY
stream of observations — out-of-order end times, duplicate timestamps,
many links interleaved, any batch-boundary placement — the batched path
must leave identical versions, identical predictions, identical
quality-tracker state, and (with a durable store) identical WAL bytes
and sealed columns, compared to feeding the same stream through
per-record ``observe``.  The WAL codec's vectorized scan/encode must
likewise match the per-record struct reference byte for byte.
"""

import struct
import tempfile
import zlib
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs.record import Operation, TransferRecord
from repro.service.service import PredictionService
from repro.store import LinkStore
from repro.store import wal

# Small time grid → plenty of duplicate timestamps and regressions.
observations = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=30),          # end time grid
        st.floats(min_value=0.1, max_value=1e4,
                  allow_nan=False, allow_infinity=False),  # bandwidth
        st.integers(min_value=1, max_value=10**9),       # size
        st.sampled_from(["read", "write"]),
    ),
    min_size=1, max_size=60,
)
# Batch boundaries: split the stream at arbitrary points.
splits = st.lists(st.integers(min_value=1, max_value=7),
                  min_size=1, max_size=20)


def _record(end, bandwidth, size, op):
    end = float(end)
    return TransferRecord(
        source_ip="0.0.0.0", file_name="/f", file_size=size, volume="/",
        start_time=end - 1.0, end_time=end, bandwidth=bandwidth,
        operation=Operation(op), streams=1, tcp_buffer=65536,
    )


def _items(stream):
    return [(link, _record(end, bw, size, op))
            for link, end, bw, size, op in stream]


def _batches(items, sizes):
    out, lo, step = [], 0, 0
    while lo < len(items):
        hi = min(lo + sizes[step % len(sizes)], len(items))
        out.append(items[lo:hi])
        lo, step = hi, step + 1
    return out


def _predictions(service, links):
    return [
        (link, spec, repr(service.predict(link, size, spec=spec,
                                          now=1e6).value))
        for link in links
        for spec in ("C-AVG15", "AVG", "MED")
        for size in (10**6, 5 * 10**8)
    ]


@given(stream=observations, sizes=splits)
@settings(max_examples=40, deadline=None)
def test_batched_observe_matches_sequential(stream, sizes):
    seq = PredictionService(clock=lambda: 1e6)
    bat = PredictionService(clock=lambda: 1e6)
    items = _items(stream)
    expected = [seq.observe(link, record) for link, record in items]
    got = []
    for batch in _batches(items, sizes):
        got.extend(bat.observe_batch(batch))
    assert got == expected  # version per record, in request order
    links = sorted({link for link, _ in items})
    assert _predictions(bat, links) == _predictions(seq, links)
    assert bat.quality.status() == seq.quality.status()


@given(stream=observations, sizes=splits)
@settings(max_examples=12, deadline=None)
def test_batched_observe_leaves_identical_wal_bytes(stream, sizes):
    items = _items(stream)
    links = sorted({link for link, _ in items})
    with tempfile.TemporaryDirectory() as d1, \
            tempfile.TemporaryDirectory() as d2:
        seq = PredictionService(store=LinkStore(d1), clock=lambda: 1e6)
        bat = PredictionService(store=LinkStore(d2), clock=lambda: 1e6)
        for link, record in items:
            seq.observe(link, record)
        for batch in _batches(items, sizes):
            bat.observe_batch(batch)

        def tails(root):
            return {p.parent.name: p.read_bytes()
                    for p in sorted(Path(root).glob("links/*/tail.wal"))}

        assert tails(d2) == tails(d1)  # identical WAL bytes, pre-seal
        for link in links:
            seq.store.seal(link)
            bat.store.seal(link)
        assert tails(d2) == tails(d1)  # both truncated identically
        for link in links:
            a = seq.store.load_columns(link)
            b = bat.store.load_columns(link)
            for col_a, col_b in zip(a, b):
                assert col_a.tobytes() == col_b.tobytes()


# ----------------------------------------------------------------------
# WAL codec: vectorized scan/encode vs the struct reference
# ----------------------------------------------------------------------
_PAYLOAD = struct.Struct("<Qddqbq")

wal_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False),  # time
        st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False),  # value
        st.integers(min_value=0, max_value=2**40),         # size
        st.integers(min_value=-1, max_value=1),            # op
        st.integers(min_value=0, max_value=2**40),         # offset
    ),
    min_size=0, max_size=40,
)


def _reference_encode(seq0, rows):
    parts = []
    for i, (time, value, size, op, offset) in enumerate(rows):
        payload = _PAYLOAD.pack(seq0 + i, time, value, size, op, offset)
        parts.append(struct.pack("<I", zlib.crc32(payload)))
        parts.append(payload)
    return b"".join(parts)


@given(rows=wal_rows, seq0=st.integers(min_value=0, max_value=2**48))
@settings(max_examples=100, deadline=None)
def test_encode_columns_matches_struct_reference(rows, seq0):
    blob = wal.encode_columns(
        seq0,
        [r[0] for r in rows], [r[1] for r in rows],
        [r[2] for r in rows], [r[3] for r in rows],
        [r[4] for r in rows],
    )
    assert blob == _reference_encode(seq0, rows)


@given(
    rows=wal_rows,
    corrupt_at=st.one_of(st.none(), st.integers(min_value=0, max_value=39)),
    flip_bit=st.integers(min_value=0, max_value=7),
    trailing=st.binary(max_size=wal.RECORD_SIZE - 1),
)
@settings(max_examples=100, deadline=None)
def test_vectorized_scan_matches_per_record_semantics(
    rows, corrupt_at, flip_bit, trailing
):
    blob = bytearray(_reference_encode(0, rows))
    if corrupt_at is not None and rows:
        pos = (corrupt_at % len(rows)) * wal.RECORD_SIZE
        blob[pos + 5] ^= 1 << flip_bit  # flip one payload bit
    blob += trailing
    scan = wal.scan(bytes(blob))
    # Reference: decode forward, stop at the first bad checksum.
    expect, pos = [], 0
    while pos + wal.RECORD_SIZE <= len(blob):
        (crc,) = struct.unpack_from("<I", blob, pos)
        payload = bytes(blob[pos + 4: pos + wal.RECORD_SIZE])
        if zlib.crc32(payload) != crc:
            break
        expect.append(_PAYLOAD.unpack(payload))
        pos += wal.RECORD_SIZE
    assert scan.valid_bytes == pos
    assert scan.torn_bytes == len(blob) - pos
    assert list(zip(scan.seqs, scan.times, scan.values, scan.sizes,
                    scan.ops, scan.offsets)) == expect
