"""Property tests: log trimming policies conserve and bound correctly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logs import FlushRestart, MaxCount, RunningWindow, TransferLog
from tests.conftest import make_record


@st.composite
def record_sequences(draw, max_size=40):
    n = draw(st.integers(min_value=1, max_value=max_size))
    gaps = draw(st.lists(
        st.floats(min_value=1.0, max_value=100_000.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    records = []
    t = 1_000.0
    for gap in gaps:
        records.append(make_record(start=t, duration=10.0))
        t += gap + 10.0
    return records


@given(records=record_sequences(), count=st.integers(min_value=1, max_value=20))
@settings(max_examples=100)
def test_max_count_bounds_length_keeps_newest(records, count):
    log = TransferLog(trim=MaxCount(count))
    log.extend(records)
    retained = log.records()
    assert len(retained) <= count
    assert retained == records[-len(retained):]


@given(records=record_sequences(),
       max_age=st.floats(min_value=10.0, max_value=1e6, allow_nan=False))
@settings(max_examples=100)
def test_running_window_retains_only_fresh(records, max_age):
    log = TransferLog(trim=RunningWindow(max_age))
    log.extend(records)
    newest_end = records[-1].end_time
    for record in log:
        assert record.end_time >= newest_end - max_age
    # No fresh record may be dropped.
    fresh = [r for r in records if r.end_time >= newest_end - max_age]
    assert log.records() == fresh


@given(records=record_sequences(), threshold=st.integers(min_value=1, max_value=15))
@settings(max_examples=100)
def test_flush_restart_conserves_records(records, threshold):
    policy = FlushRestart(threshold)
    log = TransferLog(trim=policy)
    log.extend(records)
    archived = [r for batch in policy.archived for r in batch]
    assert archived + log.records() == records
    assert len(log) < threshold


@given(records=record_sequences())
@settings(max_examples=100)
def test_log_is_always_end_time_sorted(records):
    log = TransferLog()
    # Append in a shuffled-ish order: reversed halves.
    half = len(records) // 2
    for record in records[half:] + records[:half]:
        log.append(record)
    ends = [r.end_time for r in log]
    assert ends == sorted(ends)
    assert len(log) == len(records)
