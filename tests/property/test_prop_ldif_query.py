"""Property tests: LDIF round-trips and filter algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mds import Entry, format_entries, parse_ldif, parse_filter

attr_names = st.from_regex(r"[a-z][a-z0-9]{0,15}", fullmatch=True).filter(
    lambda s: s != "dn"
)
# Values: any printable ASCII plus some unicode; LDIF must base64 when needed.
attr_values = st.text(min_size=0, max_size=40).filter(
    lambda s: "\n" not in s and "\r" not in s
)

entries = st.builds(
    lambda dn_suffix, attrs: Entry(
        f"cn={dn_suffix},o=grid",
        {name: values for name, values in attrs.items()},
    ),
    dn_suffix=st.from_regex(r"[a-z0-9.]{1,12}", fullmatch=True),
    attrs=st.dictionaries(
        attr_names,
        st.lists(attr_values, min_size=1, max_size=3),
        max_size=6,
    ),
)


@given(entry_list=st.lists(entries, max_size=5))
@settings(max_examples=150)
def test_ldif_roundtrip(entry_list):
    assert parse_ldif(format_entries(entry_list)) == entry_list


@given(entry=entries)
@settings(max_examples=100)
def test_presence_filter_matches_iff_attribute_exists(entry):
    for name in entry.attribute_names():
        assert parse_filter(f"({name}=*)").matches(entry)
    assert not parse_filter("(zzzabsent=*)").matches(entry)


@given(entry=entries)
@settings(max_examples=100)
def test_not_is_involutive(entry):
    f = parse_filter("(&(cn=*)(!(zzzabsent=*)))")
    double = parse_filter("(!(!(cn=*)))")
    assert double.matches(entry) == parse_filter("(cn=*)").matches(entry)
    assert f.matches(entry) == parse_filter("(cn=*)").matches(entry)


@given(entry=entries)
@settings(max_examples=100)
def test_and_or_duality(entry):
    """De Morgan over presence filters."""
    a, b = "(cn=*)", "(zzzabsent=*)"
    lhs = parse_filter(f"(!(&{a}{b}))").matches(entry)
    rhs = parse_filter(f"(|(!{a})(!{b}))").matches(entry)
    assert lhs == rhs
