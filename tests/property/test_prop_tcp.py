"""Property tests: TCP model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import TcpModel

tcp = TcpModel()

rtts = st.floats(min_value=0.001, max_value=0.5, allow_nan=False)
bandwidths = st.floats(min_value=1e4, max_value=1e9, allow_nan=False)
buffers = st.integers(min_value=1_500, max_value=10**7)
streams = st.integers(min_value=1, max_value=32)
sizes = st.integers(min_value=1, max_value=2 * 10**9)


@given(size=sizes, rtt=rtts, bw=bandwidths, buffer=buffers, n=streams)
@settings(max_examples=200)
def test_achieved_bandwidth_never_exceeds_available(size, rtt, bw, buffer, n):
    timing = tcp.timing(size, rtt, bw, buffer, n)
    assert timing.bandwidth <= bw + 1e-6
    assert timing.duration > 0


@given(size=sizes, rtt=rtts, bw=bandwidths, buffer=buffers, n=streams)
@settings(max_examples=200)
def test_duration_decomposition(size, rtt, bw, buffer, n):
    t = tcp.timing(size, rtt, bw, buffer, n)
    assert t.duration == pytest.approx(t.setup_time + t.slow_start_time + t.steady_time)
    assert t.setup_time >= 0 and t.slow_start_time >= 0 and t.steady_time >= 0
    assert 0 <= t.startup_fraction <= 1.0 + 1e-9


@given(rtt=rtts, bw=bandwidths, buffer=buffers, n=streams,
       small=st.integers(min_value=1, max_value=10**6))
@settings(max_examples=100)
def test_monotone_in_size(rtt, bw, buffer, n, small):
    """Larger transfers always achieve >= effective bandwidth of smaller."""
    large = small * 100
    bw_small = tcp.bandwidth(small, rtt, bw, buffer, n)
    bw_large = tcp.bandwidth(large, rtt, bw, buffer, n)
    assert bw_large >= bw_small - 1e-9


@given(size=sizes, rtt=rtts, bw=bandwidths, n=streams,
       small_buf=st.integers(min_value=1_500, max_value=10**5))
@settings(max_examples=100)
def test_monotone_in_buffer(size, rtt, bw, n, small_buf):
    """A bigger socket buffer never *materially* hurts.

    Strict monotonicity does not hold in the slow-start regime: a window
    capped just below the remaining data switches the tail to continuous
    window-limited sending, which the round-per-RTT doubling abstraction
    makes marginally faster per byte (x - 1 < log2(x) * ln 2 near x = 1).
    Real self-clocked TCP shows the same wrinkle; we bound it at 10%.
    """
    big_buf = small_buf * 16
    small_bw = tcp.bandwidth(size, rtt, bw, small_buf, n)
    assert tcp.bandwidth(size, rtt, bw, big_buf, n) >= small_bw * 0.9


@given(size=sizes, rtt=rtts, bw=bandwidths, buffer=buffers)
@settings(max_examples=100)
def test_monotone_in_available_bandwidth(size, rtt, bw, buffer):
    """More spare capacity never materially slows a transfer (same
    slow-start boundary caveat as the buffer test)."""
    assert (
        tcp.bandwidth(size, rtt, bw * 2, buffer, 4)
        >= tcp.bandwidth(size, rtt, bw, buffer, 4) * 0.9
    )


@given(size=sizes, rtt=rtts, bw=bandwidths, buffer=buffers, n=streams)
@settings(max_examples=100)
def test_steady_rate_bounded_by_window_and_wire(size, rtt, bw, buffer, n):
    t = tcp.timing(size, rtt, bw, buffer, n)
    assert t.steady_rate <= bw + 1e-6
    assert t.steady_rate <= n * max(buffer, tcp.config.mss) / rtt + 1e-6
    assert t.effective_window >= tcp.config.mss
