"""Property tests: History views and classification partition laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Classification, paper_classification
from repro.units import GB, MB
from tests.property.test_prop_predictors import histories


@given(history=histories())
@settings(max_examples=100)
def test_classes_partition_every_history(history):
    """of_class over all labels is a partition: lengths sum, no overlap."""
    cls = paper_classification()
    total = sum(len(history.of_class(cls, label)) for label in cls.labels)
    assert total == len(history)


@given(history=histories(), n=st.integers(min_value=1, max_value=80))
@settings(max_examples=100)
def test_last_n_is_a_suffix(history, n):
    suffix = history.last(n)
    k = min(n, len(history))
    assert len(suffix) == k
    assert list(suffix.values) == list(history.values[-k:])


@given(history=histories(), t=st.floats(min_value=0, max_value=1e7, allow_nan=False))
@settings(max_examples=100)
def test_since_keeps_exactly_late_observations(history, t):
    window = history.since(t)
    assert len(window) == int(np.sum(history.times >= t))
    if len(window):
        assert window.times[0] >= t


@given(history=histories(), k=st.integers(min_value=0, max_value=80))
@settings(max_examples=100)
def test_prefix_plus_remainder_is_identity(history, k):
    k = min(k, len(history))
    prefix = history.prefix(k)
    assert list(prefix.values) + list(history.values[k:]) == list(history.values)


@given(size=st.integers(min_value=1, max_value=10 * GB))
@settings(max_examples=200)
def test_classify_assigns_exactly_one_class(size):
    cls = paper_classification()
    label = cls.classify(size)
    lo, hi = cls.bounds(label)
    assert lo <= size < hi
    # No other class contains it.
    others = [l for l in cls.labels if l != label]
    for other in others:
        lo2, hi2 = cls.bounds(other)
        assert not (lo2 <= size < hi2)


@given(
    edges=st.lists(
        st.integers(min_value=1 * MB, max_value=5 * GB),
        min_size=1, max_size=5, unique=True,
    ).map(sorted),
    size=st.integers(min_value=1, max_value=10 * GB),
)
@settings(max_examples=150)
def test_custom_classifications_cover_all_sizes(edges, size):
    labels = tuple(f"c{i}" for i in range(len(edges) + 1))
    cls = Classification(edges=tuple(edges), labels=labels)
    label = cls.classify(size)
    assert label in labels
    lo, hi = cls.bounds(label)
    assert lo <= size < hi
