"""Property tests: the vectorized ULM ingest is frame-identical to the
per-record parser — on the shipped campaign logs and on fuzzed records
exercising the quoting/escaping edge cases the fast path must hand off.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TransferFrame, parse_ulm_lines, parse_ulm_text
from repro.logs import Operation, TransferRecord, format_record
from repro.logs.ulm import parse_lines

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
SHIPPED_LOGS = sorted(DATA_DIR.glob("*.ulm"))

# File names biased toward the characters that trigger quoting and
# escaping in ULM: spaces, '=', double quotes, backslashes.
tricky_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())
spicy_names = st.builds(
    lambda parts: " ".join(parts).strip() or "x",
    st.lists(
        st.sampled_from(['a', 'data', '=', '"', '\\', 'file="v"', '\\"', 'b=c']),
        min_size=1,
        max_size=6,
    ),
)
file_names = st.one_of(tricky_names, spicy_names).filter(lambda s: s.strip())

records = st.builds(
    lambda name, volume, size, start, duration, bw, op, streams, buffer: TransferRecord(
        source_ip="140.221.65.69",
        file_name=name,
        file_size=size,
        volume=volume,
        start_time=start,
        end_time=start + duration,
        bandwidth=bw,
        operation=op,
        streams=streams,
        tcp_buffer=buffer,
    ),
    name=file_names,
    volume=st.sampled_from(["/home/ftp", "/vol with space", '/q"uote']),
    size=st.integers(min_value=1, max_value=10**12),
    start=st.floats(min_value=0, max_value=2e9, allow_nan=False),
    duration=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    bw=st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    op=st.sampled_from([Operation.READ, Operation.WRITE]),
    streams=st.integers(min_value=1, max_value=64),
    buffer=st.integers(min_value=1, max_value=10**8),
)


@pytest.mark.parametrize("path", SHIPPED_LOGS, ids=lambda p: p.name)
def test_shipped_logs_parse_identically(path):
    text = path.read_text()
    vectorized = parse_ulm_text(text)
    per_record = TransferFrame.from_records(parse_lines(text.splitlines()))
    assert len(vectorized) > 0
    assert vectorized.equals(per_record)


@settings(max_examples=150, deadline=None)
@given(st.lists(records, min_size=0, max_size=12))
def test_fuzzed_records_parse_identically(batch):
    lines = [format_record(r) for r in batch]
    vectorized = parse_ulm_lines(lines)
    per_record = TransferFrame.from_records(parse_lines(lines))
    assert vectorized.equals(per_record)
    assert vectorized.to_records() == batch


@settings(max_examples=60, deadline=None)
@given(
    st.lists(records, min_size=1, max_size=6),
    st.sampled_from(["# comment", "", "   ", "\t"]),
)
def test_noise_lines_ignored_identically(batch, noise):
    lines = []
    for record in batch:
        lines.append(noise)
        lines.append(format_record(record))
    vectorized = parse_ulm_lines(lines)
    per_record = TransferFrame.from_records(parse_lines(lines))
    assert vectorized.equals(per_record)
