"""Property tests: evaluation accounting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate, paper_classification
from repro.core.predictors import LastValue, TotalAverage
from tests.property.test_prop_predictors import histories


@given(history=histories(min_size=6, max_size=40),
       training=st.integers(min_value=1, max_value=5))
@settings(max_examples=100)
def test_predictions_plus_abstentions_cover_the_walk(history, training):
    result = evaluate(history, {"AVG": TotalAverage(), "LV": LastValue()},
                      training=training)
    expected = max(0, len(history) - training)
    for trace in result.traces.values():
        assert len(trace) + trace.abstentions == expected


@given(history=histories(min_size=6, max_size=40))
@settings(max_examples=100)
def test_lv_trace_reproduces_shifted_series(history):
    result = evaluate(history, {"LV": LastValue()}, training=1)
    trace = result["LV"]
    assert list(trace.predicted) == list(history.values[:-1])
    assert list(trace.actual) == list(history.values[1:])


@given(history=histories(min_size=6, max_size=40))
@settings(max_examples=100)
def test_class_masks_partition_each_trace(history):
    cls = paper_classification()
    result = evaluate(history, {"AVG": TotalAverage()}, training=2)
    trace = result["AVG"]
    masks = [trace.class_mask(cls, label) for label in cls.labels]
    stacked = np.vstack(masks) if len(trace) else np.zeros((4, 0), dtype=bool)
    assert (stacked.sum(axis=0) == 1).all()


@given(history=histories(min_size=6, max_size=40))
@settings(max_examples=100)
def test_pct_errors_nonnegative_and_consistent(history):
    result = evaluate(history, {"AVG": TotalAverage()}, training=2)
    trace = result["AVG"]
    errors = trace.pct_errors
    assert (errors >= 0).all()
    if len(trace):
        recomputed = abs(trace.actual[0] - trace.predicted[0]) / trace.actual[0] * 100
        assert errors[0] == recomputed
