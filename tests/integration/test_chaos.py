"""Chaos suite: replay the shipped campaign logs under seeded faults.

The acceptance bar for the resilience subsystem (ISSUE 4): with faults
injected at four distinct boundary sites —

* ``tail.read``      — transient OSErrors while following a live log,
* ``ingest.cache``   — an unreadable ``.npz`` sidecar on warm start,
* ``socket.connect`` — refused connections during the server race,
* ``gris.search``    — one wedged GRIS behind the aggregate directory,

the prediction service completes the whole replay without wedging, and
every post-fault answer is **trace-identical** to a fault-free run of
the same schedule.  Faults only cost retries, delays, and stale reads —
never accuracy.

The replay itself is deterministic (fixed clock, seeded injector, byte
-chunked appends), so the comparison is exact equality on the full
result structure, not approximate.
"""

import socket
from pathlib import Path

import pytest

from repro import faults
from repro.data.ingest import cache_path, load_ulm
from repro.faults import FaultInjector
from repro.mds import GIIS, Entry
from repro.obs import get_registry
from repro.service import LogFollower, PredictionService, ServiceServer
from repro.client import ServiceClient
from repro.units import MB

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
LOGS = ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm"]
SPECS = ["C-AVG15", "AVG5", "C-MED15"]
SIZES = [10 * MB, 100 * MB]
NOW = 10_000_000.0
CHUNK = 1500  # tail appends arrive in raw byte chunks, not whole lines


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    faults.uninstall()


class StateGRIS:
    """A GRIS-shaped source answering from live service state."""

    def __init__(self, name, service, link):
        self.name = name
        self.service = service
        self.link = link
        self.calls = 0

    def search(self, now, flt=None, base=None):
        self.calls += 1
        return [Entry(
            f"ln={self.link}, o=grid",
            {"records": [str(len(self.service.history(self.link)))]},
        )]


def _stage(workdir):
    """Copy the shipped logs into ``workdir`` split into warm + tail parts.

    The first half of each log is the "already on disk at startup" warm
    file; the second half is returned as raw bytes to be appended live.
    Sidecars are created here, *before* any injector is installed, so
    the cache fault fires against a previously good cache.
    """
    workdir.mkdir(parents=True)
    tails = {}
    for name in LOGS:
        data = (DATA_DIR / name).read_bytes()
        lines = data.splitlines(keepends=True)
        half = len(lines) // 2
        target = workdir / name
        target.write_bytes(b"".join(lines[:half]))
        tails[name] = b"".join(lines[half:])
        load_ulm(target)  # warm the .npz sidecar
        assert cache_path(target).exists()
    return tails


def _replay(workdir, injector):
    """One full ingest → tail → serve → directory pass; returns its trace."""
    tails = _stage(workdir)
    service = PredictionService(clock=lambda: NOW)
    result = {}

    with faults.injected(injector or FaultInjector()):
        # 1. Warm start through the sidecar cache (site: ingest.cache).
        for name in LOGS:
            service.ingest_ulm(workdir / name)

        # 2. Live appends through the tail follower (site: tail.read).
        followers = {}
        for name in LOGS:
            follower = LogFollower(workdir / name, service.observe)
            follower.seek_to_end()
            followers[name] = follower
        for name in LOGS:
            path, body = workdir / name, tails[name]
            for start in range(0, len(body), CHUNK):
                with path.open("ab") as handle:
                    handle.write(body[start:start + CHUNK])
                followers[name].poll()
        # Drain: a follower that hit an injected error catches up here.
        for follower in followers.values():
            for _ in range(8):
                if follower.poll() == 0:
                    break
        result["records"] = {
            name: followers[name].records for name in LOGS
        }
        result["history"] = {
            link: len(service.history(link)) for link in sorted(service.links())
        }

        # 3. Queries over the socket (site: socket.connect).
        answers = []
        with ServiceServer(service, workdir / "repro.sock") as server, \
                ServiceClient(server.socket_path) as client:
            for link in sorted(service.links()):
                for spec in SPECS:
                    for size in SIZES:
                        response = client.request({
                            "op": "predict", "link": link, "size": size,
                            "spec": spec, "now": NOW,
                        })
                        answers.append({
                            key: response[key]
                            for key in ("ok", "link", "spec", "value",
                                        "version", "history_length", "degraded")
                        })
        result["answers"] = answers

        # 4. The aggregate directory with one wedged source (site:
        #    gris.search).  Searches are driven on simulation time; the
        #    faulted source recovers once its breaker's half-open probe
        #    succeeds after ``breaker_reset``.
        giis = GIIS("top", breaker_failures=3, breaker_reset=60.0)
        for name in LOGS:
            link = Path(name).stem
            giis.register(StateGRIS(f"gris-{link}", service, link), now=0.0)
        searches = []
        for now in (0.0, 1.0, 2.0, 3.0, 10.0, 63.5, 64.0):
            entries = giis.search(now)
            searches.append([(e.dn, e.get("records")) for e in entries])
        result["searches"] = searches

    return result


def test_chaos_replay_is_trace_identical_to_a_fault_free_run(tmp_path):
    baseline = _replay(tmp_path / "clean", None)

    injector = FaultInjector(seed=1234)
    injector.inject("tail.read", error=OSError, message="disk hiccup", times=3)
    injector.inject("ingest.cache", error=IOError, message="bad sidecar", times=1)
    injector.inject("socket.connect", error=ConnectionRefusedError, times=2)
    # ``after=1``: the wedged source answers once (seeding the GIIS's
    # last-good cache), then times out three straight searches — enough
    # to trip its breaker.  The replay's history is complete before the
    # directory phase, so stale-but-served answers match live ones.
    injector.inject("gris.search", error=TimeoutError, times=3, after=1,
                    source="gris-aug-ISI-ANL")

    quarantined_before = get_registry().counter(
        "ingest_cache_quarantined", "").value
    retries_before = get_registry().counter("resilience_retries", "").value
    stale_before = get_registry().counter("mds_giis_stale_served", "").value

    chaotic = _replay(tmp_path / "chaos", injector)

    # Every scheduled fault actually landed — at all four sites.
    assert injector.fired == {
        "tail.read": 3,
        "ingest.cache": 1,
        "socket.connect": 2,
        "gris.search": 3,
    }
    assert injector.pending() == []

    # The system degraded visibly while it absorbed them ...
    registry = get_registry()
    assert registry.counter("ingest_cache_quarantined", "").value \
        == quarantined_before + 1
    assert registry.counter("resilience_retries", "").value >= retries_before + 2
    assert registry.counter("mds_giis_stale_served", "").value > stale_before

    # ... and the unreadable sidecar was quarantined, then rebuilt clean.
    first_log = tmp_path / "chaos" / LOGS[0]
    quarantined = first_log.parent / (cache_path(first_log).name + ".quarantined")
    assert quarantined.exists()
    assert cache_path(first_log).exists()  # rewritten after the reparse

    # The payoff: identical records, histories, predictions, and
    # directory answers.  Faults cost retries and stale reads, never
    # a different number.
    assert chaotic == baseline


def test_chaos_replay_baseline_is_itself_deterministic(tmp_path):
    assert _replay(tmp_path / "one", None) == _replay(tmp_path / "two", None)


@pytest.mark.exhaustive
def test_chaos_replay_december_logs(tmp_path, monkeypatch):
    """The same invariant holds on the December campaign logs."""
    monkeypatch.setitem(globals(), "LOGS",
                        ["dec-LBL-ANL.ulm", "dec-ISI-ANL.ulm"])
    baseline = _replay(tmp_path / "clean", None)
    injector = FaultInjector(seed=99)
    injector.inject("tail.read", error=OSError, times=2)
    injector.inject("ingest.cache", error=IOError, times=1)
    injector.inject("socket.connect", error=ConnectionRefusedError, times=1)
    injector.inject("gris.search", error=TimeoutError, times=3, after=1,
                    source="gris-dec-LBL-ANL")
    chaotic = _replay(tmp_path / "chaos", injector)
    assert injector.total_fired() == 7
    assert chaotic == baseline
