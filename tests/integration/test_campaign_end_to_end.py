"""End-to-end campaign properties: the regenerated datasets look like the
paper's (Section 6.1 / Figure 7)."""

import numpy as np
import pytest

from repro.core import paper_classification
from repro.units import MB


class TestTransferCensus:
    def test_transfer_counts_in_paper_range(self, august_outputs):
        """Figure 7: 350-450 transfers per link per two-week month."""
        for link, output in august_outputs.items():
            assert 330 <= len(output.log.records()) <= 560, link

    def test_class_mix_matches_uniform_size_draws(self, august_outputs):
        cls = paper_classification()
        for output in august_outputs.values():
            records = output.log.records()
            fractions = {
                label: sum(1 for r in records if cls.classify(r.file_size) == label)
                / len(records)
                for label in cls.labels
            }
            # Expected: 5/13, 3/13, 3/13, 2/13.
            assert fractions["10MB"] == pytest.approx(5 / 13, abs=0.08)
            assert fractions["100MB"] == pytest.approx(3 / 13, abs=0.08)
            assert fractions["500MB"] == pytest.approx(3 / 13, abs=0.08)
            assert fractions["1GB"] == pytest.approx(2 / 13, abs=0.08)


class TestBandwidthShape:
    def test_bandwidth_range_matches_figures_1_2(self, august_outputs):
        """GridFTP end-to-end bandwidth swings over the paper's 1.5-10 MB/s scale."""
        for link, output in august_outputs.items():
            bw = np.array([r.bandwidth for r in output.log.records()])
            assert bw.min() < 3e6, link      # deep lows exist
            assert bw.max() > 8e6, link      # highs approach the wire
            assert bw.max() / bw.min() > 4, link

    def test_bandwidth_never_exceeds_wire(self, august_outputs):
        oc3 = 155e6 / 8
        for output in august_outputs.values():
            for record in output.log.records():
                assert record.bandwidth <= oc3

    def test_bandwidth_correlates_with_file_size(self, august_outputs):
        """Section 4.3: the correlation classification exploits."""
        for output in august_outputs.values():
            records = output.log.records()
            sizes = np.array([r.file_size for r in records], dtype=float)
            bws = np.array([r.bandwidth for r in records])
            rho = np.corrcoef(np.log(sizes), bws)[0, 1]
            assert rho > 0.5

    def test_small_files_slower_on_average(self, august_outputs):
        cls = paper_classification()
        for output in august_outputs.values():
            records = output.log.records()
            small = [r.bandwidth for r in records
                     if cls.classify(r.file_size) == "10MB"]
            large = [r.bandwidth for r in records
                     if cls.classify(r.file_size) == "1GB"]
            assert np.mean(small) < np.mean(large)


class TestLogIntegrity:
    def test_records_sorted_by_end_time(self, august_outputs):
        for output in august_outputs.values():
            ends = [r.end_time for r in output.log.records()]
            assert ends == sorted(ends)

    def test_all_records_carry_campaign_parameters(self, august_outputs):
        for output in august_outputs.values():
            for record in output.log.records():
                assert record.streams == 8
                assert record.tcp_buffer == 1 * MB
                assert record.operation.value == "read"

    def test_no_transfers_outside_daily_window(self, august_outputs):
        from repro.units import DAY, HOUR

        for output in august_outputs.values():
            for record in output.log.records():
                hour = (record.start_time % DAY) / HOUR
                assert hour >= 18.0 or hour < 8.0, hour


class TestDeterminism:
    def test_same_seed_reproduces_identical_logs(self):
        from repro.workload import run_month

        a = run_month(seed=123)
        b = run_month(seed=123)
        for link in a:
            assert a[link].log.records() == b[link].log.records()

    def test_different_seeds_differ(self):
        from repro.workload import run_month

        a = run_month(seed=123)
        b = run_month(seed=124)
        assert a["LBL-ANL"].log.records() != b["LBL-ANL"].log.records()


class TestSharedTestbedContention:
    def test_both_links_ran_on_one_engine(self, august_outputs):
        lbl = august_outputs["LBL-ANL"]
        isi = august_outputs["ISI-ANL"]
        # Campaigns overlap in time: both logs span the same fortnight.
        lbl_span = (lbl.log.records()[0].start_time, lbl.log.records()[-1].end_time)
        isi_span = (isi.log.records()[0].start_time, isi.log.records()[-1].end_time)
        assert max(lbl_span[0], isi_span[0]) < min(lbl_span[1], isi_span[1])
