"""The shipped sample traces stay loadable, regenerable, and evaluable."""

from pathlib import Path

import pytest

from repro.core import fast_evaluate
from repro.logs import TransferLog

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
FILES = ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm", "dec-LBL-ANL.ulm", "dec-ISI-ANL.ulm"]


@pytest.mark.parametrize("name", FILES)
def test_sample_traces_load(name):
    log = TransferLog.load(DATA_DIR / name)
    assert 330 <= len(log) <= 560


def test_sample_traces_evaluate(classification):
    log = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm")
    result = fast_evaluate(log.records())
    mape = result.mape_table(classification, "1GB")["C-AVG"]
    assert 5.0 < mape < 55.0


def test_sample_matches_regeneration():
    """The committed August LBL trace is exactly seed 1's output."""
    from repro.workload import run_month

    fresh = run_month(seed=1)["LBL-ANL"].log
    shipped = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm")
    assert shipped.records() == fresh.records()
