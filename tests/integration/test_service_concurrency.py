"""Thread-safety: concurrent ingest and query must never corrupt state.

The service's contract under concurrency:

* a query snapshot is internally consistent (sorted times, matching
  lengths) no matter how much ingest races it;
* every answered prediction corresponds to a real history version;
* after the dust settles, counts, versions, and cached answers are
  exactly what a serial execution would produce.
"""

import threading

import numpy as np
import pytest

from repro.service import PredictionService
from repro.units import MB
from tests.conftest import make_record

N_RECORDS = 300
N_QUERY_THREADS = 4


def test_concurrent_ingest_and_query():
    service = PredictionService()
    records = [
        make_record(start=1000.0 + 50 * i, size=(10 + (i % 4) * 30) * MB)
        for i in range(N_RECORDS)
    ]
    errors = []
    stop = threading.Event()

    def ingest():
        try:
            for record in records:
                service.observe("LBL-ANL", record)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()

    def query():
        try:
            while not stop.is_set():
                prediction = service.predict("LBL-ANL", 100 * MB)
                assert 0 <= prediction.history_length <= N_RECORDS
                assert prediction.version >= 0
                history = service.history("LBL-ANL")
                assert len(history.times) == len(history.values) == len(history.sizes)
                assert (np.diff(history.times) >= 0).all()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=ingest)]
    threads += [threading.Thread(target=query) for _ in range(N_QUERY_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert service.version("LBL-ANL") == N_RECORDS
    assert len(service.history("LBL-ANL")) == N_RECORDS
    # The settled answer equals a serial rebuild's answer.
    serial = PredictionService()
    serial.ingest_records("LBL-ANL", records)
    now = 10_000_000.0
    assert (
        service.predict("LBL-ANL", 100 * MB, now=now).value
        == serial.predict("LBL-ANL", 100 * MB, now=now).value
    )


def test_concurrent_queries_share_the_cache():
    service = PredictionService(clock=lambda: 10_000_000.0)
    service.ingest_records(
        "LBL-ANL", [make_record(start=1000.0 + 100 * i) for i in range(50)]
    )
    values = []
    lock = threading.Lock()

    def query():
        for _ in range(200):
            value = service.predict("LBL-ANL", 100 * MB).value
            with lock:
                values.append(value)

    threads = [threading.Thread(target=query) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(set(values)) == 1  # one history version -> one answer
    stats = service.cache_stats()
    assert stats["hits"] + stats["misses"] == 1600
    # All but the racing first computations were cache hits.
    assert stats["hits"] >= 1600 - 8


def test_concurrent_multi_link_ingest():
    service = PredictionService()
    links = [f"SITE{k}-ANL" for k in range(6)]

    def ingest(link):
        for i in range(100):
            service.observe(link, make_record(start=1000.0 + 10 * i))

    threads = [threading.Thread(target=ingest, args=(link,)) for link in links]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert service.links() == sorted(links)
    for link in links:
        assert service.version(link) == 100
    snap = service.metrics.snapshot()
    assert snap["service_ingested_records"]["value"] == 600
    assert snap["service_links"]["value"] == len(links)
