"""Durable tiered store, end to end on the shipped campaign logs.

The ISSUE 7 parity gates:

* **evict→revive** — a service running under a tight ``max_resident``
  ceiling (links constantly spilled to disk and revived on demand)
  answers every query bit-identically to an always-resident service
  over the same schedule, versions included.
* **warm restart** — checkpoint on shutdown, reopen the store in a
  fresh process-equivalent (new LinkStore, new service), answers are
  trace-identical, and ingest continues seamlessly.
* **kill -9** — a SIGKILLed ingester leaves at most a torn tail
  record; recovery truncates it, serves every durable row, and the
  revived answers match a resident service folded over exactly those
  rows.  No corrupt state is ever served.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

from repro.logs.record import Operation
from repro.service import PredictionService
from repro.store import LinkStore
from repro.store import wal
from repro.units import MB

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
LOGS = ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm"]
#: Exact under every revival path, including the checkpointless rebuild
#: (ring/heap summaries are recomputed from identical values at query
#: time; see docs/architecture.md on fold exactness).
SPECS = ["C-AVG15", "AVG5", "C-MED15", "MED", "LV"]
#: Exact only when revival restores the checkpointed longdouble
#: accumulators (running sums fold sequentially; a vectorized rebuild
#: may differ in the last bits).  Used on the checkpoint paths.
CHECKPOINT_SPECS = SPECS + ["AVG", "C-AVG", "AR"]
SIZES = [10 * MB, 100 * MB, 1000 * MB]
NOW = 10_000_000.0


def _answers(service, specs):
    out = []
    for link in sorted(service.links()):
        for spec in specs:
            for size in SIZES:
                p = service.predict(link, size, spec, now=NOW)
                out.append((link, spec, size, p.value, p.version,
                            p.history_length))
    return out


def _ingest_logs(service):
    for name in LOGS:
        service.ingest_ulm(DATA_DIR / name)


class TestEvictRevive:
    def test_parity_under_constant_eviction(self, tmp_path):
        resident = PredictionService()
        _ingest_logs(resident)

        store = LinkStore(tmp_path / "state", segment_rows=128)
        tiered = PredictionService(store=store, max_resident=1)
        _ingest_logs(tiered)

        # Interleave queries across links so every one crosses an
        # evict→revive boundary (only one link fits in RAM).
        assert _answers(tiered, CHECKPOINT_SPECS) == \
            _answers(resident, CHECKPOINT_SPECS)

        status = tiered.status()["store"]
        assert status["resident_links"] <= 1
        assert status["evictions"] >= 1
        assert status["revivals"] >= 1
        assert status["bytes_on_disk"] > 0

    def test_ingest_continues_after_revival(self, tmp_path):
        from tests.conftest import make_record

        resident = PredictionService()
        store = LinkStore(tmp_path / "state", segment_rows=64)
        tiered = PredictionService(store=store, max_resident=1)
        _ingest_logs(resident)
        _ingest_logs(tiered)

        # Touch the other link so the first is evicted, then append to
        # the evicted one: revival + in-order fold, still identical.
        links = sorted(resident.links())
        tiered.predict(links[1], 100 * MB, now=NOW)
        record = make_record(start=NOW - 5.0, duration=1.0, size=100 * MB)
        for service in (resident, tiered):
            service.observe(links[0], record)
        assert _answers(tiered, CHECKPOINT_SPECS) == \
            _answers(resident, CHECKPOINT_SPECS)


class TestWarmRestart:
    def test_checkpoint_all_then_reopen_is_trace_identical(self, tmp_path):
        resident = PredictionService()
        _ingest_logs(resident)

        store = LinkStore(tmp_path / "state")
        first = PredictionService(store=store)
        _ingest_logs(first)
        assert first.checkpoint_all(seal=True) == len(LOGS)
        store.close()

        reopened = LinkStore(tmp_path / "state")
        second = PredictionService(store=reopened)
        assert second.links() == sorted(resident.links())
        assert _answers(second, CHECKPOINT_SPECS) == \
            _answers(resident, CHECKPOINT_SPECS)
        # Every link came back through the O(1) checkpoint path, not a
        # rebuild.
        assert second.status()["store"]["revivals"] == len(LOGS)

    def test_version_continuity_preserves_cache_keys(self, tmp_path):
        store = LinkStore(tmp_path / "state")
        first = PredictionService(store=store)
        _ingest_logs(first)
        versions = {link: first.version(link) for link in first.links()}
        first.checkpoint_all()
        store.close()

        second = PredictionService(store=LinkStore(tmp_path / "state"))
        for link, version in versions.items():
            assert second.version(link) == version


class TestKillNine:
    """SIGKILL an ingester mid-append; recover; serve only the truth."""

    CHILD = textwrap.dedent("""
        import os, signal, sys
        sys.path.insert(0, {src!r})
        from repro.data.ingest import load_ulm
        from repro.service import PredictionService
        from repro.store import LinkStore

        store = LinkStore({state!r}, segment_rows=64)
        service = PredictionService(store=store)
        frame = load_ulm({log!r})
        for i, record in enumerate(frame.to_records()):
            service.observe("victim", record)
            if i == 150:
                os.write(1, b"ready\\n")  # parent may SIGKILL any time now
        os.write(1, b"done\\n")
        signal.pause()
    """)

    def _run_child_and_kill(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = self.CHILD.format(
            src=src, state=str(tmp_path / "state"),
            log=str(DATA_DIR / LOGS[0]),
        )
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE, env=env)
        assert proc.stdout.readline().strip() == b"ready"
        # Kill while the append loop is hot: no checkpoint, no flush,
        # possibly a torn in-flight record.
        proc.kill()
        proc.wait(timeout=30)

    def test_recovery_serves_exactly_the_durable_rows(self, tmp_path):
        self._run_child_and_kill(tmp_path)

        # Simulate the torn in-flight write the kill may or may not
        # have produced, so the truncation path definitely runs.
        link_dir = next((tmp_path / "state" / "links").iterdir())
        tail = link_dir / "tail.wal"
        if tail.exists():
            with open(tail, "ab") as fh:
                fh.write(b"\x13torn-record-bytes")

        store = LinkStore(tmp_path / "state", segment_rows=64)
        durable = store.durable_rows("victim")
        assert durable > 150  # the child got at least past the marker
        if tail.exists():
            assert os.path.getsize(tail) % wal.RECORD_SIZE == 0

        revived = PredictionService(store=store)
        # The reference: a resident service folded over exactly the
        # rows that became durable, in the same arrival order.
        times, values, sizes, ops = store.load_columns("victim")
        assert len(times) == durable
        assert (np.diff(times) >= 0).all()

        from tests.conftest import make_record

        resident = PredictionService()
        for t, v, s, o in zip(times, values, sizes, ops):
            resident.observe("victim", make_record(
                start=float(t) - 1.0, duration=1.0, size=int(s),
                bandwidth=float(v),
                operation=Operation.READ if o == 0 else Operation.WRITE))

        for spec in SPECS:
            for size in SIZES:
                a = revived.predict("victim", size, spec, now=NOW)
                b = resident.predict("victim", size, spec, now=NOW)
                assert a.value == b.value, (spec, size)
                assert a.history_length == b.history_length == durable

    def test_restart_after_kill_continues_ingest(self, tmp_path):
        from tests.conftest import make_record

        self._run_child_and_kill(tmp_path)
        store = LinkStore(tmp_path / "state", segment_rows=64)
        service = PredictionService(store=store)
        before = len(service.history("victim"))
        last = service.link_state("victim").last_time
        service.observe(
            "victim", make_record(start=last + 10.0, duration=1.0))
        assert len(service.history("victim")) == before + 1
        assert store.durable_rows("victim") == before + 1
