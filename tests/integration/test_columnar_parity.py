"""The columnar substrate changes *nothing* observable.

Three parity claims over the shipped campaign logs:

* evaluating a :class:`TransferFrame` from the vectorized ingest yields
  trace-identical predictions to evaluating the per-record parse;
* the MDS information provider publishes byte-identical LDIF from a
  frame and from a record-list log;
* service state built by bulk frame ingest equals state built by
  per-record observes — same arrays, same version, same predictions.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import evaluate
from repro.data import load_ulm
from repro.logs import TransferLog
from repro.logs.ulm import parse_lines
from repro.mds.ldif import format_entries
from repro.mds.provider import GridFTPInfoProvider
from repro.net.topology import Site
from repro.service import PredictionService

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
LOGS = sorted(DATA_DIR.glob("*.ulm"))

SITE = Site(name="LBL", domain="lbl.gov", hostname="ftp.lbl.gov",
            address="131.243.2.12")


def _records(path):
    return list(parse_lines(path.read_text().splitlines()))


@pytest.mark.parametrize("path", LOGS, ids=lambda p: p.name)
@pytest.mark.parametrize("engine", ["fast", "generic"])
def test_frame_evaluation_trace_identical(path, engine):
    records = _records(path)
    frame = load_ulm(path, cache=False)
    specs = ["C-AVG15", "AVG", "MED5", "AR", "AVG5hr"]
    if engine == "generic":
        specs = specs[:2]  # the generic walk is slow; two specs suffice
    from_records = evaluate(records, specs, engine=engine)
    from_frame = evaluate(frame, specs, engine=engine)
    for spec in specs:
        a, b = from_records[spec], from_frame[spec]
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.predicted, b.predicted)
        assert np.array_equal(a.actual, b.actual)
        assert np.array_equal(a.times, b.times)
        assert a.abstentions == b.abstentions


@pytest.mark.parametrize("path", LOGS, ids=lambda p: p.name)
def test_provider_attributes_identical_on_both_paths(path):
    records = _records(path)
    log = TransferLog()
    log.extend(records)
    frame = load_ulm(path, cache=False)

    now = float(frame.end_times[-1]) + 60.0
    from_log = GridFTPInfoProvider(log=log, site=SITE, url="gsiftp://x")
    from_frame = GridFTPInfoProvider(log=frame, site=SITE, url="gsiftp://x")
    entry_log, _ = from_log.report(now)
    entry_frame, _ = from_frame.report(now)
    assert entry_log is not None and entry_frame is not None
    assert format_entries([entry_log]) == format_entries([entry_frame])


@pytest.mark.parametrize("path", LOGS[:2], ids=lambda p: p.name)
def test_service_bulk_ingest_equals_per_record(path):
    records = _records(path)
    frame = load_ulm(path, cache=False)

    bulk = PredictionService()
    bulk.ingest_frame("link", frame)
    incremental = PredictionService()
    incremental.ingest_records("link", records)

    assert bulk.version("link") == incremental.version("link")
    b_times, b_values, b_sizes, b_ops, b_version = \
        bulk.link_state("link").snapshot()
    i_times, i_values, i_sizes, i_ops, i_version = \
        incremental.link_state("link").snapshot()
    assert b_version == i_version == len(records)
    assert np.array_equal(b_times, i_times)
    assert np.array_equal(b_values, i_values)
    assert np.array_equal(b_sizes, i_sizes)
    assert np.array_equal(b_ops, i_ops)

    now = float(frame.end_times[-1]) + 60.0
    for spec in ("C-AVG15", "AVG", "LV"):
        a = bulk.predict("link", 100_000_000, spec=spec, now=now)
        b = incremental.predict("link", 100_000_000, spec=spec, now=now)
        assert a.value == b.value

    # A service with listeners must fall back to per-record announcement.
    listened = PredictionService()
    seen = []
    listened.subscribe(lambda link, record: seen.append(record))
    listened.ingest_frame("link", frame)
    assert len(seen) == len(records)
    assert listened.version("link") == len(records)
    l_times = listened.link_state("link").snapshot()[0]
    assert np.array_equal(l_times, b_times)
