"""CLI report commands end to end.

Each report regenerates its campaign internally; we run the fast-enough
ones and check the printed artifacts carry the expected structure.
"""

import pytest

from repro.cli import main


def run(capsys, *argv):
    rc = main(list(argv))
    assert rc == 0
    return capsys.readouterr().out


def test_report_summary(capsys):
    out = run(capsys, "report", "summary", "--seed", "1")
    assert "Section 6.2 claims — LBL-ANL" in out
    assert "Section 6.2 claims — ISI-ANL" in out
    assert "[ok]" in out and "[FAIL]" not in out


def test_report_errors_single_class_single_link(capsys):
    out = run(capsys, "report", "errors", "--link", "LBL-ANL",
              "--class", "1GB", "--seed", "1")
    assert "Figure 11 analogue — LBL-ANL, 1GB range" in out
    assert "AVG25hr" in out
    assert "Figure 8" not in out  # class restriction respected


def test_report_errors_all_classes(capsys):
    out = run(capsys, "report", "errors", "--link", "ISI-ANL", "--seed", "1")
    for figure in ("Figure 8", "Figure 9", "Figure 10", "Figure 11"):
        assert figure in out


def test_report_classification(capsys):
    out = run(capsys, "report", "classification", "--link", "LBL-ANL",
              "--seed", "1")
    assert "Figure 12 analogue" in out
    assert "mean reduction" in out


def test_report_relative(capsys):
    out = run(capsys, "report", "relative", "--link", "ISI-ANL",
              "--class", "500MB", "--seed", "1")
    assert "Figure 16 analogue" in out
    assert "best %" in out


def test_report_nws(capsys):
    out = run(capsys, "report", "nws", "--link", "LBL-ANL", "--seed", "1")
    assert "Figure 1/2 analogue — LBL-ANL" in out
    assert "NWS probe" in out


@pytest.mark.slow
def test_report_census(capsys):
    out = run(capsys, "report", "census", "--seed", "1")
    assert "Figure 7 analogue" in out
    assert "August" in out and "December" in out
