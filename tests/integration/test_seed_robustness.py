"""Seed robustness: the Section 6.2 claims are not a lucky draw.

The reference seed (1) is used everywhere; this sweep re-derives the
claims on additional seeds and both months.  Marked slow (runs several
full campaigns).
"""

import pytest

from repro.analysis import check_summary_claims, compute_class_errors
from repro.workload import AUG_2001, DEC_2001, run_month


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 2, 3])
@pytest.mark.parametrize("start", [AUG_2001, DEC_2001], ids=["aug", "dec"])
def test_claims_hold_across_seeds_and_months(seed, start):
    outputs = run_month(start_epoch=start, seed=seed)
    for link, output in outputs.items():
        claims = check_summary_claims(
            compute_class_errors(link, output.log.records())
        )
        assert claims.all_hold(), (seed, start, link, claims)


@pytest.mark.slow
def test_census_scale_stable_across_seeds():
    for seed in (0, 2, 3):
        outputs = run_month(seed=seed)
        for link, output in outputs.items():
            assert 330 <= len(output.log.records()) <= 560, (seed, link)
