"""Accuracy-tracker parity: the telemetry must never change an answer.

Three contracts, all on the shipped campaign logs:

* **on/off parity** — a service with the tracker enabled returns
  trace-identical predictions to one with it disabled;
* **offline agreement** — the live rolling MAPE/MSE after a full
  predict→observe replay matches :func:`repro.analysis.errors.
  compute_class_errors` on the same log to 1e-9;
* **pairing** — out-of-order appends and bulk :meth:`ingest_frame`
  score against exactly the records the version gate promises, and the
  statistics survive evict→revive and warm restart through the store.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.data import load_ulm
from repro.service import PredictionService
from repro.store import LinkStore
from repro.units import MB
from tests.conftest import make_record

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
LOG = DATA_DIR / "aug-LBL-ANL.ulm"
LINK = "aug-LBL-ANL"
TRAINING = 15


def _replay(service, frame, spec="C-AVG15"):
    """Predict-then-observe the whole frame, offline-evaluation style.

    Predictions start after the training prefix — exactly the rows the
    offline engine scores — so the live scored set and the offline
    evaluated set coincide.  Returns the predictions.
    """
    out = []
    for i in range(len(frame)):
        if i >= TRAINING:
            out.append(service.predict(
                LINK, int(frame.sizes[i]), spec,
                now=float(frame.start_times[i])))
        service.observe(LINK, make_record(
            start=float(frame.start_times[i]),
            duration=float(frame.end_times[i] - frame.start_times[i]),
            size=int(frame.sizes[i]),
            bandwidth=float(frame.bandwidths[i]),
        ))
    return out


@pytest.fixture(scope="module")
def frame():
    return load_ulm(LOG)


def test_tracker_on_and_off_answer_identically(frame):
    on = PredictionService(quality=True)
    off = PredictionService(quality=False)
    answered = _replay(on, frame)
    baseline = _replay(off, frame)
    assert len(answered) == len(frame) - TRAINING
    from dataclasses import replace

    for a, b in zip(answered, baseline):
        # Everything but the measured latency must match exactly.
        assert replace(a, latency_seconds=0.0) == \
            replace(b, latency_seconds=0.0)
    assert off.status()["accuracy"] == {"enabled": False}


def test_live_rolling_errors_match_offline_analysis(frame):
    from repro.analysis import compute_class_errors

    service = PredictionService(quality=True, quality_window=64)
    _replay(service, frame)

    trace = compute_class_errors(LINK, frame).result.traces["C-AVG15"]
    predicted = np.asarray(trace.predicted, dtype=np.float64)
    actual = np.asarray(trace.actual, dtype=np.float64)
    scored = np.isfinite(predicted)

    stats = service.status()["accuracy"]["by_spec"]["C-AVG15"]
    assert stats["count"] == int(scored.sum())
    assert stats["abstentions"] == trace.abstentions

    frac = (predicted[scored] - actual[scored]) / actual[scored]
    assert stats["mape"] == pytest.approx(
        float(np.mean(np.abs(frac))) * 100.0, rel=1e-9)
    assert stats["mape"] == pytest.approx(
        trace.mean_abs_pct_error(), rel=1e-9)
    assert stats["mse"] == pytest.approx(
        float(np.mean((predicted[scored] - actual[scored]) ** 2)), rel=1e-9)
    assert stats["bias_pct"] == pytest.approx(
        float(np.mean(frac)) * 100.0, rel=1e-9)
    # The rolling window covers exactly the newest 64 scored pairs.
    assert stats["window"]["count"] == 64
    assert stats["window"]["mape"] == pytest.approx(
        float(np.mean(np.abs(frac[-64:]))) * 100.0, rel=1e-9)


def test_out_of_order_append_scores_against_the_next_observation():
    service = PredictionService(quality=True)
    service.ingest_records(LINK, [
        make_record(start=1000.0 + 100.0 * i, size=100 * MB) for i in range(20)
    ])
    p = service.predict(LINK, 100 * MB, now=10_000.0)
    assert p.value is not None
    # The next observed transfer pairs with it even though its start
    # time lands *before* existing history (pairing is by version, not
    # by timestamp).
    service.observe(LINK, make_record(
        start=1500.5, duration=2.0, size=100 * MB, bandwidth=2.0 * p.value))
    stats = service.status()["accuracy"]["by_spec"]["C-AVG15"]
    assert stats["count"] == 1
    assert stats["last_abs_pct"] == pytest.approx(50.0)


def test_bulk_ingest_scores_against_the_frames_earliest_record(frame):
    service = PredictionService(quality=True)
    half = len(frame) // 2
    tail = frame.view(np.arange(half, len(frame)))
    service.ingest_frame(LINK, frame.prefix(half))
    p = service.predict(LINK, 100 * MB, now=float(frame.end_times[half - 1]))
    service.ingest_frame(LINK, tail)

    stats = service.status()["accuracy"]["by_spec"]["C-AVG15"]
    assert stats["count"] == 1
    i = int(np.argmin(tail.end_times))
    actual = float(tail.bandwidths[i])
    expected = abs(p.value - actual) / actual * 100.0
    assert stats["last_abs_pct"] == pytest.approx(expected)


class TestPersistence:
    def _score_some(self, service):
        service.ingest_records(LINK, [
            make_record(start=1000.0 + 100.0 * i, size=100 * MB)
            for i in range(20)
        ])
        for i in range(5):
            p = service.predict(LINK, 100 * MB, now=10_000.0 + i)
            service.observe(LINK, make_record(
                start=10_000.0 + 100.0 * i, duration=1.0, size=100 * MB,
                bandwidth=1.1 * p.value))

    def test_accuracy_survives_evict_and_revive(self, tmp_path):
        store = LinkStore(tmp_path / "state")
        service = PredictionService(store=store, max_resident=1)
        self._score_some(service)
        before = service.status()["accuracy"]

        # Touching another link evicts the scored one; predicting on it
        # again revives it.  The live statistics must come through the
        # cycle unchanged — neither lost nor double-counted from the
        # checkpoint it left behind.
        service.ingest_records("other", [
            make_record(start=1000.0 + 100.0 * i, size=100 * MB)
            for i in range(20)
        ])
        service.predict("other", 100 * MB, now=10_000.0)
        service.predict(LINK, 100 * MB, now=20_000.0)
        after = service.status()["accuracy"]
        assert after["links"][LINK] == before["links"][LINK]
        assert after["scored"] == before["scored"]

    def test_accuracy_survives_warm_restart(self, tmp_path):
        store = LinkStore(tmp_path / "state")
        first = PredictionService(store=store)
        self._score_some(first)
        expected = first.status()["accuracy"]["links"][LINK]
        assert first.checkpoint_all(seal=True) == 1
        store.close()

        second = PredictionService(store=LinkStore(tmp_path / "state"))
        second.predict(LINK, 100 * MB, now=20_000.0)  # first touch revives
        restored = second.status()["accuracy"]
        assert restored["links"][LINK]["by_spec"] == expected["by_spec"]
        assert restored["links"][LINK]["overall"] == expected["overall"]
        assert restored["scored"] == expected["overall"]["count"]
