"""Integration: campaign logs survive the full ULM persistence cycle."""

from repro.core import evaluate
from repro.core.predictors import paper_predictors
from repro.logs import TransferLog


def test_full_campaign_log_roundtrip(short_campaign_output, tmp_path):
    log = short_campaign_output.log
    path = tmp_path / "campaign.ulm"
    written = log.save(path)
    assert written == len(log)
    loaded = TransferLog.load(path)
    assert loaded.records() == log.records()


def test_evaluation_identical_on_reloaded_log(short_campaign_output, tmp_path):
    """Predictions from a reloaded log are bit-identical: the ULM format
    loses nothing the predictors consume."""
    log = short_campaign_output.log
    path = tmp_path / "campaign.ulm"
    log.save(path)
    reloaded = TransferLog.load(path)

    battery = {"AVG15": paper_predictors()["AVG15"]}
    a = evaluate(log.records(), battery)
    b = evaluate(reloaded.records(), battery)
    assert list(a["AVG15"].predicted) == list(b["AVG15"].predicted)


def test_ulm_file_is_line_oriented_text(short_campaign_output, tmp_path):
    path = tmp_path / "campaign.ulm"
    short_campaign_output.log.save(path)
    lines = path.read_text().splitlines()
    assert len(lines) == len(short_campaign_output.log)
    for line in lines[:10]:
        assert line.startswith("DATE=")
        assert "PROG=gridftp" in line
        assert len(line.encode()) < 512  # the paper's size bound
