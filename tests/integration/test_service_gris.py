"""The warm-service MDS provider: parity with the batch provider + GRIS wiring."""

import pytest

from repro.logs import TransferLog
from repro.mds import GRIS, GridFTPInfoProvider
from repro.mds.provider import IncrementalGridFTPInfoProvider
from repro.net import Site
from repro.service import PredictionService, ServicePerfProvider
from tests.conftest import make_record

SITE = Site(name="LBL", domain="lbl.gov", address="131.243.2.91",
            hostname="dpsslx04.lbl.gov")
URL = "gsiftp://dpsslx04.lbl.gov:61000"


@pytest.fixture
def log():
    log = TransferLog()
    sizes = [10_000_000, 120_000_000, 600_000_000, 1_500_000_000] * 10
    for i, size in enumerate(sizes):
        log.append(make_record(start=1000.0 + 500 * i, size=size,
                               duration=5.0 + i % 7))
    return log


@pytest.fixture
def warm(log):
    service = PredictionService()
    service.ingest_records("LBL-ANL", log.records())
    return service


def test_entry_matches_batch_provider_exactly(log, warm):
    """Same attributes, same values, for a read-only log."""
    now = log.latest().end_time + 60.0
    batch = GridFTPInfoProvider(log=log, site=SITE, url=URL)
    served = ServicePerfProvider(warm, "LBL-ANL", SITE, URL)

    [expected] = batch.entries(now)
    [got] = served.entries(now)
    assert got.dn == expected.dn
    assert dict(got.items()) == dict(expected.items())


def test_entry_matches_incremental_provider(log, warm):
    now = log.latest().end_time + 60.0
    incremental = IncrementalGridFTPInfoProvider(log=log, site=SITE, url=URL)
    [expected] = incremental.entries(now)
    [got] = ServicePerfProvider(warm, "LBL-ANL", SITE, URL).entries(now)
    assert dict(got.items()) == dict(expected.items())


def test_predictions_flow_through_the_service_cache(log, warm):
    now = log.latest().end_time + 60.0
    provider = ServicePerfProvider(warm, "LBL-ANL", SITE, URL)
    provider.entries(now)
    misses_after_first = warm.cache_stats()["misses"]
    provider.entries(now)
    stats = warm.cache_stats()
    # The second render recomputes nothing: all class predictions hit.
    assert stats["misses"] == misses_after_first
    assert stats["hits"] > 0


def test_unknown_or_empty_link_publishes_nothing(warm):
    provider = ServicePerfProvider(warm, "NOWHERE", SITE, URL)
    assert provider.entries(1000.0) == []


def test_gris_serves_warm_entries_and_sees_growth(log, warm):
    now = log.latest().end_time + 60.0
    gris = GRIS("lbl-gris", cache_ttl=30.0)
    gris.add_provider("gridftp", ServicePerfProvider(warm, "LBL-ANL", SITE, URL))

    [entry] = gris.search(now, "(objectclass=GridFTPPerf)")
    assert entry.first("numtransfers") == "40"

    # New transfer lands; within the TTL the GRIS serves the cached copy,
    # after invalidation the provider re-renders from the grown state.
    warm.observe("LBL-ANL", make_record(start=now + 10.0, size=600_000_000))
    [cached] = gris.search(now + 1.0, "(objectclass=GridFTPPerf)")
    assert cached.first("numtransfers") == "40"
    gris.invalidate()
    [fresh] = gris.search(now + 2.0, "(objectclass=GridFTPPerf)")
    assert fresh.first("numtransfers") == "41"
