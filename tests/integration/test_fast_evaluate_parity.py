"""Parity: the vectorized evaluator equals the generic one, exactly.

Every one of the 30 traces (15 plain + 15 classified) must agree with the
generic walk on which predictions were made (indices, abstentions) and on
the predicted values to floating-point tolerance, on a real campaign log.
"""

import numpy as np
import pytest

from repro.core import evaluate, fast_evaluate
from repro.core.predictors import classified_predictors, paper_predictors


@pytest.fixture(scope="module")
def both_results(august_outputs):
    records = august_outputs["LBL-ANL"].log.records()
    generic = evaluate(
        records, {**paper_predictors(), **classified_predictors()}, training=15
    )
    fast = fast_evaluate(records, training=15)
    return generic, fast


def test_same_trace_names(both_results):
    generic, fast = both_results
    assert set(generic.names()) == set(fast.names())


@pytest.mark.parametrize("name", [
    "AVG", "LV", "AVG5", "AVG15", "AVG25",
    "MED", "MED5", "MED15", "MED25",
    "AVG5hr", "AVG15hr", "AVG25hr",
    "AR", "AR5d", "AR10d",
])
def test_plain_predictor_parity(both_results, name):
    generic, fast = both_results
    g, f = generic[name], fast[name]
    assert list(g.indices) == list(f.indices), name
    assert g.abstentions == f.abstentions, name
    np.testing.assert_allclose(f.predicted, g.predicted, rtol=1e-9)
    np.testing.assert_array_equal(f.actual, g.actual)
    np.testing.assert_array_equal(f.sizes, g.sizes)
    np.testing.assert_array_equal(f.times, g.times)


@pytest.mark.parametrize("name", [f"C-{n}" for n in (
    "AVG", "LV", "AVG5", "AVG15", "AVG25",
    "MED", "MED5", "MED15", "MED25",
    "AVG5hr", "AVG15hr", "AVG25hr",
    "AR", "AR5d", "AR10d",
)])
def test_classified_predictor_parity(both_results, name):
    generic, fast = both_results
    g, f = generic[name], fast[name]
    assert list(g.indices) == list(f.indices), name
    assert g.abstentions == f.abstentions, name
    np.testing.assert_allclose(f.predicted, g.predicted, rtol=1e-9)


def test_mape_tables_agree(both_results):
    from repro.core import paper_classification

    generic, fast = both_results
    cls = paper_classification()
    for label in cls.labels:
        g_table = generic.mape_table(cls, label)
        f_table = fast.mape_table(cls, label)
        for name, g_value in g_table.items():
            f_value = f_table[name]
            if g_value != g_value:
                assert f_value != f_value, (label, name)
            else:
                assert f_value == pytest.approx(g_value, rel=1e-9), (label, name)


def test_unclassified_only_mode(august_outputs):
    records = august_outputs["ISI-ANL"].log.records()
    fast = fast_evaluate(records, classified=False)
    assert len(fast.names()) == 15
    assert not any(n.startswith("C-") for n in fast.names())


def test_validation(august_outputs):
    records = august_outputs["ISI-ANL"].log.records()
    with pytest.raises(ValueError):
        fast_evaluate(records, training=0)
