"""The complete Figure 5 loop, end to end:

instrumented servers -> incremental providers -> per-site GRIS ->
organization GIIS -> a *remote* broker that sees only directory entries
-> replica choice -> an actual transfer that lands back in the logs.
"""

import pytest

from repro.core import paper_classification
from repro.mds import (
    GIIS,
    GRIS,
    IncrementalGridFTPInfoProvider,
    MdsReplicaBroker,
)
from repro.storage import ReplicaCatalog
from repro.units import GB, MB
from repro.workload import AUG_2001, build_testbed
from repro.workload.controlled import CampaignConfig, ControlledCampaign


@pytest.fixture(scope="module")
def grid():
    """A testbed with 2 days of traffic and the full MDS stack wired."""
    bed = build_testbed(seed=19, start_time=AUG_2001)
    cfg = CampaignConfig(start_epoch=AUG_2001, days=2)
    campaigns = [ControlledCampaign(bed, s, "ANL", cfg) for s in ("LBL", "ISI")]
    for c in campaigns:
        c.start()
    bed.engine.run(until=cfg.end_epoch)
    for c in campaigns:
        c.stop()

    giis = GIIS("giis-grid", default_ttl=86_400.0)
    now = bed.engine.now
    for name in ("LBL", "ISI"):
        server = bed.servers[name]
        provider = IncrementalGridFTPInfoProvider(
            log=server.monitor.log, site=server.site, url=server.url
        )
        gris = GRIS(f"gris-{name.lower()}", cache_ttl=0.0)
        gris.add_provider("gridftp", provider)
        giis.register(gris, now=now)

    catalog = ReplicaCatalog()
    for name in ("LBL", "ISI"):
        catalog.register("lfn://dataset", name, 1 * GB)
    broker = MdsReplicaBroker(
        catalog, giis,
        {name: bed.sites[name].hostname for name in ("LBL", "ISI")},
    )
    return bed, giis, broker


def test_directory_carries_both_sites(grid):
    bed, giis, _ = grid
    entries = giis.search(bed.engine.now, flt="(objectclass=GridFTPPerf)")
    hostnames = {e.first("hostname") for e in entries}
    assert hostnames == {"dpsslx04.lbl.gov", "jet.isi.edu"}


def test_remote_broker_ranks_from_directory_alone(grid):
    bed, _, broker = grid
    ranked = broker.rank("lfn://dataset", bed.engine.now)
    assert len(ranked) == 2
    assert all(r.predicted_bandwidth is not None for r in ranked)
    assert all(r.source_attribute.startswith("predictedrdbandwidth") for r in ranked)
    assert ranked[0].predicted_bandwidth >= ranked[1].predicted_bandwidth


def test_directory_choice_agrees_with_log_level_broker(grid):
    """The MDS broker (directory attributes) and the log-level broker
    (raw histories, total-average predictor) pick the same site — the
    provider publishes exactly that predictor's output."""
    from repro.core import ReplicaBroker
    from repro.core.predictors import classified_predictors

    bed, _, mds_broker = grid
    catalog = ReplicaCatalog()
    for name in ("LBL", "ISI"):
        catalog.register("lfn://dataset", name, 1 * GB)
    log_broker = ReplicaBroker(
        catalog,
        {name: bed.servers[name].monitor.log for name in ("LBL", "ISI")},
        classified_predictors()["C-AVG"],
    )
    now = bed.engine.now
    assert (
        mds_broker.select("lfn://dataset", now).site
        == log_broker.select("lfn://dataset", bed.sites["ANL"].address, now).site
    )


def test_choice_feeds_back_into_the_directory(grid):
    """Fetch from the chosen site; the provider (incremental, attached to
    the live log) reflects the new transfer on the next inquiry."""
    bed, giis, broker = grid
    now = bed.engine.now
    choice = broker.select("lfn://dataset", now)
    before = {
        e.first("hostname"): int(e.first("numtransfers"))
        for e in giis.search(now, flt="(objectclass=GridFTPPerf)")
    }
    server = bed.servers[choice.site]
    outcome = bed.clients["ANL"].get(server, bed.data_path(1 * GB),
                                     streams=8, buffer=1 * MB)
    bed.engine.run(until=outcome.end_time + 1)
    after = {
        e.first("hostname"): int(e.first("numtransfers"))
        for e in giis.search(bed.engine.now, flt="(objectclass=GridFTPPerf)")
    }
    assert after[choice.hostname] == before[choice.hostname] + 1


def test_class_specific_attributes_drive_small_files(grid):
    bed, _, broker = grid
    cls = paper_classification()
    broker.catalog.register("lfn://thumbnail", "LBL", 5 * MB)
    broker.catalog.register("lfn://thumbnail", "ISI", 5 * MB)
    ranked = broker.rank("lfn://thumbnail", bed.engine.now)
    for r in ranked:
        assert "10mbrange" in r.source_attribute
    # Small-class predictions are lower than 1GB-class ones (TCP startup).
    big = broker.rank("lfn://dataset", bed.engine.now)
    assert ranked[0].predicted_bandwidth < big[0].predicted_bandwidth
