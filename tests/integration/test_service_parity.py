"""Service predictions are identical to the batch evaluator, prefix by prefix.

The walk: ingest a shipped campaign log record by record; *before*
observing record i, ask the service what it predicts for record i's size
at record i's start time.  That sequence of answers must equal the batch
``evaluate()`` trace — value for value, abstention for abstention — at
every log prefix.  (Caching cannot mask staleness: each observe bumps
the link version, so every walk query recomputes against exactly
``history.prefix(i)``.)
"""

from pathlib import Path

import pytest

from repro.core import evaluate
from repro.core.evaluation import DEFAULT_TRAINING
from repro.logs import TransferLog
from repro.service import PredictionService

DATA_DIR = Path(__file__).resolve().parent.parent.parent / "data"

QUICK_SPECS = ("C-AVG15", "AVG", "LV", "C-MED5", "AR5d")


def walk_service(records, spec, training=DEFAULT_TRAINING):
    """The service's answer sequence for one spec over one log."""
    service = PredictionService()
    answers = {}
    for i, record in enumerate(records):
        if i >= training:
            prediction = service.predict(
                "walk", record.file_size, spec=spec, now=record.start_time
            )
            assert prediction.version == i  # answering at prefix i exactly
            answers[i] = prediction.value
        service.observe("walk", record)
    return answers


def batch_answers(records, specs, training=DEFAULT_TRAINING):
    """index -> value (None for abstentions) per spec, from the facade."""
    result = evaluate(records, list(specs), training=training)
    out = {}
    for spec in specs:
        trace = result[spec]
        answers = {i: None for i in range(training, len(records))}
        answers.update(dict(zip(trace.indices.tolist(), trace.predicted.tolist())))
        out[spec] = answers
    return out


@pytest.mark.parametrize("log_name", ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm"])
def test_service_matches_batch_on_shipped_logs(log_name):
    records = TransferLog.load(DATA_DIR / log_name).records()
    batch = batch_answers(records, QUICK_SPECS)
    for spec in QUICK_SPECS:
        served = walk_service(records, spec)
        assert served.keys() == batch[spec].keys()
        for i, expected in batch[spec].items():
            got = served[i]
            if expected is None:
                assert got is None, f"{spec}@{i}: served {got}, batch abstained"
            else:
                assert got == pytest.approx(expected, rel=1e-12), f"{spec}@{i}"


@pytest.mark.exhaustive
@pytest.mark.parametrize("log_name", ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm",
                                      "dec-LBL-ANL.ulm", "dec-ISI-ANL.ulm"])
def test_service_matches_batch_full_battery(log_name):
    from repro.core.predictors import ALL_PREDICTOR_NAMES

    path = DATA_DIR / log_name
    if not path.exists():
        pytest.skip(f"{log_name} not shipped")
    records = TransferLog.load(path).records()
    batch = batch_answers(records, ALL_PREDICTOR_NAMES)
    for spec in ALL_PREDICTOR_NAMES:
        served = walk_service(records, spec)
        for i, expected in batch[spec].items():
            got = served[i]
            if expected is None:
                assert got is None, f"{spec}@{i}"
            else:
                assert got == pytest.approx(expected, rel=1e-12), f"{spec}@{i}"


def test_warm_predict_is_10x_faster_than_cold_provider_scan():
    """The acceptance bar: cached service predict >=10x a full-log scan."""
    import time

    from repro.core.predictors import resolve
    from repro.mds import GridFTPInfoProvider
    from repro.net import Site

    log = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm")
    now = log.latest().end_time + 60.0
    site = Site(name="LBL", domain="lbl.gov", address="131.243.2.91",
                hostname="dpsslx04.lbl.gov")
    provider = GridFTPInfoProvider(
        log=log, site=site, url="gsiftp://dpsslx04.lbl.gov:61000",
        predictor=resolve("AVG15"),
    )

    service = PredictionService()
    link, _ = service.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm")
    service.predict(link, 600_000_000, now=now)  # warm the cache

    rounds = 3
    t0 = time.perf_counter()
    for _ in range(rounds):
        assert provider.entries(now)
    cold = (time.perf_counter() - t0) / rounds

    best_warm = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        prediction = service.predict(link, 600_000_000, now=now)
        best_warm = min(best_warm, time.perf_counter() - t0)
        assert prediction.cached
    assert cold / best_warm >= 10.0, f"cold {cold:.6f}s vs warm {best_warm:.6f}s"
