"""The streaming fast path answers exactly like the snapshot path.

A service with the default streaming bank must be indistinguishable —
answer for answer, abstention for abstention — from one with
``streaming=False`` that recomputes every miss from the history arrays,
while actually taking the fast path (asserted through the service's
streaming counters).  Covers in-order walks over the shipped campaign
logs for the full 30-spec battery, out-of-order arrivals (bank rebuild),
bulk ingest (vectorized rebuild then incremental resume), non-battery
specs (snapshot fallback), regressed temporal anchors (window fallback),
and the MDS provider's bank-backed attribute path.
"""

from pathlib import Path

import pytest

from repro.core.classification import paper_classification
from repro.core.predictors import ALL_PREDICTOR_NAMES
from repro.core.streaming import StreamingBank
from repro.data.ingest import load_ulm
from repro.logs import TransferLog
from repro.net import Site
from repro.service import PredictionService
from repro.service.provider import ServicePerfProvider

DATA_DIR = Path(__file__).resolve().parent.parent.parent / "data"

SITE = Site(name="LBL", domain="lbl.gov", address="131.243.2.91",
            hostname="dpsslx04.lbl.gov")
URL = "gsiftp://dpsslx04.lbl.gov:61000"


def walk_both(records, specs, mutate=None):
    """Walk two services in lockstep; assert identical answers throughout.

    ``mutate`` optionally reorders/edits the record list first (both
    services see the same stream).  Returns the streaming service.
    """
    streaming = PredictionService()
    snapshot = PredictionService(streaming=False)
    records = list(records) if mutate is None else mutate(list(records))
    for i, record in enumerate(records):
        if i >= 5:
            for spec in specs:
                a = streaming.predict("walk", record.file_size, spec=spec,
                                      now=record.start_time)
                b = snapshot.predict("walk", record.file_size, spec=spec,
                                     now=record.start_time)
                assert a.version == b.version == i
                if b.value is None:
                    assert a.value is None, f"{spec}@{i}: {a.value} vs abstain"
                else:
                    assert a.value == pytest.approx(b.value, rel=1e-12), f"{spec}@{i}"
        streaming.observe("walk", record)
        snapshot.observe("walk", record)
    return streaming


def test_streaming_walk_matches_snapshot_walk_full_battery():
    records = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm").records()
    service = walk_both(records, ALL_PREDICTOR_NAMES)
    # Every cache miss on a battery spec took the fast path.
    assert service._m_streamed.value > 0
    assert service._m_stream_fallbacks.value == 0
    assert service._m_rebuilds.value == 0


@pytest.mark.exhaustive
@pytest.mark.parametrize("log_name", ["aug-ISI-ANL.ulm", "dec-LBL-ANL.ulm",
                                      "dec-ISI-ANL.ulm"])
def test_streaming_walk_matches_snapshot_walk_all_logs(log_name):
    path = DATA_DIR / log_name
    if not path.exists():
        pytest.skip(f"{log_name} not shipped")
    records = TransferLog.load(path).records()
    service = walk_both(records, ALL_PREDICTOR_NAMES)
    assert service._m_streamed.value > 0
    assert service._m_stream_fallbacks.value == 0


def test_out_of_order_arrivals_rebuild_the_bank_and_stay_identical():
    records = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm").records()[:80]

    def shuffle_some(rs):
        # Swap a few adjacent pairs so end times regress at ingest.
        for i in (10, 25, 40, 60):
            rs[i], rs[i + 1] = rs[i + 1], rs[i]
        return rs

    service = walk_both(records, ("C-AVG15", "AVG", "MED", "AR5d"),
                        mutate=shuffle_some)
    assert service._m_rebuilds.value > 0
    assert service._m_streamed.value > 0


def test_bulk_ingest_rebuilds_then_resumes_incrementally():
    records = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm").records()
    streaming = PredictionService()
    snapshot = PredictionService(streaming=False)
    streaming.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    snapshot.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    assert streaming._m_rebuilds.value == 1  # one vectorized fold, not N

    now = records[-1].end_time + 60.0
    for spec in ALL_PREDICTOR_NAMES:
        a = streaming.predict("L", 600_000_000, spec=spec, now=now)
        b = snapshot.predict("L", 600_000_000, spec=spec, now=now)
        assert not a.cached and a.streamed
        if b.value is None:
            assert a.value is None, spec
        else:
            assert a.value == pytest.approx(b.value, rel=1e-12), spec
    assert streaming._m_stream_fallbacks.value == 0


def test_non_battery_spec_falls_back_to_snapshot():
    streaming = PredictionService()
    streaming.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    snapshot = PredictionService(streaming=False)
    snapshot.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")

    a = streaming.predict("L", 600_000_000, spec="SIZE")
    b = snapshot.predict("L", 600_000_000, spec="SIZE")
    assert not a.streamed
    assert streaming._m_stream_fallbacks.value == 1
    if b.value is None:
        assert a.value is None
    else:
        assert a.value == pytest.approx(b.value, rel=1e-12)


def test_regressed_anchor_falls_back_and_stays_correct():
    records = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm").records()
    streaming = PredictionService()
    snapshot = PredictionService(streaming=False)
    streaming.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    snapshot.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")

    late = records[-1].end_time + 60.0
    early = records[len(records) // 2].end_time  # behind the expired boundary
    a1 = streaming.predict("L", 600_000_000, spec="AVG5hr", now=late)
    assert a1.streamed
    a2 = streaming.predict("L", 600_000_000, spec="AVG5hr", now=early)
    b2 = snapshot.predict("L", 600_000_000, spec="AVG5hr", now=early)
    assert not a2.streamed  # lazy expiry cannot rewind; snapshot answered
    assert streaming._m_stream_fallbacks.value >= 1
    if b2.value is None:
        assert a2.value is None
    else:
        assert a2.value == pytest.approx(b2.value, rel=1e-12)


def test_empty_link_short_circuits_without_resolution():
    service = PredictionService()
    # An unknown spec on an unknown link answers None instead of raising:
    # the empty-history short-circuit runs before predictor resolution.
    p = service.predict("nowhere", 600_000_000, spec="NOT-A-SPEC")
    assert p.value is None and p.version == 0 and p.history_length == 0
    assert not p.streamed
    # A known link with history still validates the spec.
    log = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm")
    service.ingest_records("L", log.records()[:3])
    with pytest.raises(KeyError):
        service.predict("L", 600_000_000, spec="NOT-A-SPEC")


def test_mds_provider_bank_path_matches_column_path():
    streaming = PredictionService()
    snapshot = PredictionService(streaming=False)
    streaming.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    snapshot.ingest_ulm(DATA_DIR / "aug-LBL-ANL.ulm", link="L")
    now = 1e9

    banked = ServicePerfProvider(streaming, "L", SITE, URL).entries(now)
    column = ServicePerfProvider(snapshot, "L", SITE, URL).entries(now)
    assert len(banked) == len(column) == 1
    # Same attributes, same values, same order — byte-identical LDIF.
    assert list(banked[0].items()) == list(column[0].items())


def test_rank_replicas_resolves_once_and_ranks_identically():
    streaming = PredictionService()
    snapshot = PredictionService(streaming=False)
    records = TransferLog.load(DATA_DIR / "aug-LBL-ANL.ulm").records()
    for i, record in enumerate(records[:60]):
        link = f"link-{i % 3}"
        streaming.observe(link, record)
        snapshot.observe(link, record)

    now = records[59].end_time + 30.0
    candidates = ["link-0", "link-1", "link-2", "ghost", "link-0"]
    a = streaming.rank_replicas(candidates, 600_000_000, now=now)
    b = snapshot.rank_replicas(candidates, 600_000_000, now=now)
    assert [r.site for r in a] == [r.site for r in b]
    for ra, rb in zip(a, b):
        if rb.predicted_bandwidth is None:
            assert ra.predicted_bandwidth is None
        else:
            assert ra.predicted_bandwidth == pytest.approx(
                rb.predicted_bandwidth, rel=1e-12)


# ----------------------------------------------------------------------
# vectorized extend(): bit-parity with sequential add() on every prefix
# ----------------------------------------------------------------------
ALL_LOGS = ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm",
            "dec-LBL-ANL.ulm", "dec-ISI-ANL.ulm"]


def _fresh_bank() -> StreamingBank:
    return StreamingBank(paper_classification())


@pytest.mark.parametrize("log_name", ALL_LOGS)
def test_extend_bit_parity_at_every_prefix(log_name):
    """``extend()`` in size-1 steps equals ``add()`` at EVERY prefix.

    ``repr`` comparison of the full checkpoint state is deliberate: it
    distinguishes ``-0.0`` from ``0.0`` and survives NaN, so this is
    bit-parity of every running sum, window structure, and heap — the
    acceptance gate for the vectorized write path.
    """
    frame = load_ulm(DATA_DIR / log_name, cache=False)
    seq, bat = _fresh_bank(), _fresh_bank()
    for i in range(len(frame)):
        seq.add(float(frame.end_times[i]), float(frame.bandwidths[i]),
                int(frame.sizes[i]), int(frame.ops[i]))
        bat.extend(frame.end_times[i:i + 1], frame.bandwidths[i:i + 1],
                   frame.sizes[i:i + 1], frame.ops[i:i + 1])
        assert repr(bat.state()) == repr(seq.state()), f"{log_name}@{i}"


@pytest.mark.parametrize("log_name", ALL_LOGS)
def test_extend_bit_parity_under_mixed_chunking(log_name):
    """Arbitrary chunk boundaries leave the same bank as one-by-one adds."""
    frame = load_ulm(DATA_DIR / log_name, cache=False)
    seq = _fresh_bank()
    for i in range(len(frame)):
        seq.add(float(frame.end_times[i]), float(frame.bandwidths[i]),
                int(frame.sizes[i]), int(frame.ops[i]))
    sizes = [1, 2, 3, 7, 13, 31, 64]
    bat = _fresh_bank()
    lo, step = 0, 0
    while lo < len(frame):
        hi = min(lo + sizes[step % len(sizes)], len(frame))
        bat.extend(frame.end_times[lo:hi], frame.bandwidths[lo:hi],
                   frame.sizes[lo:hi], frame.ops[lo:hi])
        lo, step = hi, step + 1
    assert repr(bat.state()) == repr(seq.state())
