"""Integration: the Figures 1-2 contrast on regenerated data."""

import pytest

from repro.analysis import compare_probe_vs_gridftp, render_nws_comparison


@pytest.fixture(scope="module")
def comparisons(august_with_nws):
    return {
        link: compare_probe_vs_gridftp(output)
        for link, output in august_with_nws.items()
    }


class TestProbeCounts:
    def test_probe_count_scale(self, august_with_nws):
        """Paper: ~1,500 probes per figure axis at 5-minute spacing over the
        plotted stretch; our full fortnight at 5 minutes gives ~4,000."""
        for output in august_with_nws.values():
            assert 3500 <= len(output.probes) <= 4500

    def test_gridftp_count_scale(self, august_with_nws):
        for output in august_with_nws.values():
            assert 330 <= len(output.log.records()) <= 560


class TestFigure12Claims:
    def test_probes_below_03_mbps(self, comparisons):
        """'The NWS measurements indicate network bandwidth to be less than
        0.3 MB/sec.'"""
        for comparison in comparisons.values():
            assert comparison.probes.maximum < 0.3e6

    def test_gridftp_order_of_magnitude_higher(self, comparisons):
        for comparison in comparisons.values():
            assert comparison.mean_ratio > 10.0

    def test_gridftp_much_more_variable(self, comparisons):
        """'Considerably greater variability in the GridFTP measurements.'"""
        for comparison in comparisons.values():
            assert comparison.variability_ratio > 2.0

    def test_gridftp_spread_matches_paper_scale(self, comparisons):
        """Paper: 1.5 to 10.2 MB/s across both links."""
        for comparison in comparisons.values():
            assert comparison.gridftp.minimum < 3e6
            assert comparison.gridftp.maximum > 8e6


class TestScalingIsNotEnough:
    def test_no_constant_scaling_fixes_probes(self, august_with_nws):
        """'Simple data transformations will not improve its predictive
        merits': the best constant multiplier still leaves large error."""
        import numpy as np

        for output in august_with_nws.values():
            records = output.log.records()
            probes = output.probes
            pairs = []
            for record in records:
                p = probes.value_at(record.start_time)
                if p:
                    pairs.append((record.bandwidth, p))
            bw = np.array([b for b, _ in pairs])
            pv = np.array([p for _, p in pairs])
            scale = float(np.median(bw / pv))
            residual = np.abs(bw - scale * pv) / bw
            assert residual.mean() > 0.2  # >20% error even after rescaling


def test_render_smoke(comparisons):
    for comparison in comparisons.values():
        text = render_nws_comparison(comparison)
        assert "GridFTP" in text and "NWS probe" in text
