"""Integration: campaign logs -> provider -> GRIS -> GIIS -> user inquiry."""

import pytest

from repro.core.predictors import classified_predictors
from repro.mds import (
    GIIS,
    GRIS,
    GridFTPInfoProvider,
    format_entries,
    parse_ldif,
    validate_entry,
)


@pytest.fixture(scope="module")
def directory(august_outputs):
    """A GIIS aggregating one GRIS per replica site, as in Figure 5."""
    giis = GIIS("giis-grid", default_ttl=3600.0)
    now = 0.0
    sites = {}
    from repro.workload import build_testbed, AUG_2001

    bed = build_testbed(seed=1, start_time=AUG_2001)
    for link, output in august_outputs.items():
        site_name = output.server_site
        site = bed.sites[site_name]
        provider = GridFTPInfoProvider(
            log=output.log,
            site=site,
            url=f"gsiftp://{site.hostname}:61000",
            predictor=classified_predictors()["C-AVG15"].base,
        )
        gris = GRIS(f"gris-{site_name.lower()}")
        gris.add_provider("gridftp", provider)
        giis.register(gris, now=now)
        sites[site_name] = site
    return giis, sites


class TestDirectory:
    def test_inquiry_finds_all_sites(self, directory):
        giis, sites = directory
        entries = giis.search(now=10.0, flt="(objectclass=GridFTPPerf)")
        assert len(entries) == len(sites)

    def test_entries_validate_against_schema(self, directory):
        giis, _ = directory
        for entry in giis.search(now=10.0):
            validate_entry(entry)

    def test_selection_style_query(self, directory):
        """A broker-style inquiry: sites with decent average read bandwidth."""
        giis, _ = directory
        fast = giis.search(
            now=10.0, flt="(&(objectclass=GridFTPPerf)(avgrdbandwidth>=1000))"
        )
        assert len(fast) >= 1

    def test_entries_carry_per_class_predictions(self, directory):
        giis, _ = directory
        for entry in giis.search(now=10.0):
            assert entry.has("predictedrdbandwidth1gbrange")
            assert entry.has("avgrdbandwidth10mbrange")

    def test_ldif_round_trip_through_text(self, directory):
        """What a remote user actually receives: LDIF text."""
        giis, _ = directory
        entries = giis.search(now=10.0)
        text = format_entries(entries)
        assert parse_ldif(text) == entries

    def test_expiry_removes_site(self, directory):
        giis, sites = directory
        live_now = giis.search(now=10.0)
        assert len(live_now) == len(sites)
        assert giis.search(now=10_000.0) == []  # ttl 3600 lapsed, no renewals


class TestIncrementalProviderLive:
    def test_incremental_provider_tracks_live_log_through_gris(self, testbed):
        """Records appended mid-session surface in the next uncached inquiry."""
        from repro.mds import GRIS, IncrementalGridFTPInfoProvider
        from repro.units import MB

        server = testbed.servers["LBL"]
        provider = IncrementalGridFTPInfoProvider(
            log=server.monitor.log, site=server.site, url=server.url
        )
        gris = GRIS("gris-lbl", cache_ttl=0.0)  # always fresh
        gris.add_provider("gridftp", provider)

        client = testbed.clients["ANL"]
        assert gris.search(now=testbed.engine.now) == []

        client.get(server, testbed.data_path(100 * MB), streams=8, buffer=1 * MB)
        entry = gris.search(now=testbed.engine.now)[0]
        assert entry.first("numtransfers") == "1"

        client.get(server, testbed.data_path(500 * MB), streams=8, buffer=1 * MB)
        entry = gris.search(now=testbed.engine.now)[0]
        assert entry.first("numtransfers") == "2"
        assert entry.has("avgrdbandwidth100mbrange")
        assert entry.has("avgrdbandwidth500mbrange")


class TestProviderLatency:
    def test_700_entry_log_processed_fast(self, august_outputs):
        """Section 5.1: ~700 entries filtered, classified, and predicted in
        1-2 s with 2001-era shell scripts; our pipeline must beat that."""
        output = august_outputs["LBL-ANL"]
        provider = GridFTPInfoProvider(
            log=output.log,
            site=__import__("repro.net", fromlist=["Site"]).Site(
                name="LBL", domain="lbl.gov"
            ),
            url="gsiftp://x:61000",
        )
        entry, report = provider.report(now=1e12)
        assert entry is not None
        assert report.total_seconds < 2.0
