"""Concurrent transfers: contention is visible end to end.

Section 3's motivation for whole-system measurement: storage systems are
not statistically smooth — "no longer does one additional flow or task
have an insignificant effect".  These tests check that concurrency
actually propagates into the measured bandwidths.
"""

from repro.sim import Delay, Process
from repro.units import MB
from repro.workload import AUG_2001, build_testbed


def fetch_concurrently(n_clients, seed=17, size=500 * MB):
    """n other ANL-side pulls overlap a measured LBL->ANL transfer."""
    bed = build_testbed(seed=seed, start_time=AUG_2001)
    client = bed.clients["ANL"]
    server = bed.servers["LBL"]
    path = bed.data_path(size)

    # Start n background transfers at t0 (they acquire the disks)...
    background = [
        client.get(server, path, streams=8, buffer=1 * MB) for _ in range(n_clients)
    ]
    # ...then the measured transfer while they are in flight.
    measured = client.get(server, path, streams=8, buffer=1 * MB)
    bed.engine.run(until=max(o.end_time for o in background + [measured]) + 1)
    return measured.bandwidth


class TestDiskContention:
    def test_more_concurrency_lower_bandwidth(self):
        solo = fetch_concurrently(0)
        crowded = fetch_concurrently(6)
        assert crowded < solo

    def test_single_extra_flow_has_visible_effect(self):
        """The paper's 'no law of large numbers' point, literally."""
        solo = fetch_concurrently(0)
        one_more = fetch_concurrently(1)
        assert one_more < solo * 0.999  # measurably lower, not noise-level


class TestInterleavedCampaignsShareState:
    def test_cross_link_contention_through_shared_client_disk(self):
        """Both campaigns pull to the same ANL host; a transfer on one link
        overlapping a transfer on the other shares the ANL disk."""
        bed = build_testbed(seed=23, start_time=AUG_2001)
        client = bed.clients["ANL"]
        lbl, isi = bed.servers["LBL"], bed.servers["ISI"]
        path = bed.data_path(1000 * MB)

        alone = client.get(lbl, path, streams=8, buffer=1 * MB)
        bed.engine.run(until=alone.end_time + 1)

        # Saturate the ANL disk via many ISI pulls, then re-measure LBL.
        for _ in range(8):
            client.get(isi, path, streams=8, buffer=1 * MB)
        crowded = client.get(lbl, path, streams=8, buffer=1 * MB)
        assert crowded.bandwidth < alone.bandwidth

    def test_overlapping_processes_interleave_deterministically(self):
        """Two processes issuing transfers concurrently produce identical
        logs across runs — concurrency does not break determinism."""

        def run_once():
            bed = build_testbed(seed=31, start_time=AUG_2001)
            client = bed.clients["ANL"]

            def puller(server_name, period):
                def proc():
                    for _ in range(5):
                        outcome = client.get(
                            bed.servers[server_name],
                            bed.data_path(100 * MB),
                            streams=8,
                            buffer=1 * MB,
                        )
                        yield Delay(outcome.duration + period)
                return proc

            Process(bed.engine, puller("LBL", 120.0)())
            Process(bed.engine, puller("ISI", 90.0)())
            bed.engine.run(until=AUG_2001 + 3600 * 6)
            return [
                (r.source_ip, r.end_time, r.bandwidth)
                for name in ("LBL", "ISI")
                for r in bed.servers[name].monitor.log.records()
            ]

        assert run_once() == run_once()


class TestOpenWorkloadConcurrency:
    def test_poisson_requests_can_overlap(self):
        """Open workload fires without waiting for completion; overlapping
        requests raise the ANL disk's concurrent count above 1."""
        bed = build_testbed(seed=29, start_time=AUG_2001)
        client = bed.clients["ANL"]
        server = bed.servers["LBL"]
        peak = {"active": 0}

        def handler(name, now):
            client.get(server, bed.data_path(1000 * MB), streams=8, buffer=1 * MB)
            peak["active"] = max(peak["active"], bed.disks["ANL"].active)

        from repro.workload import OpenWorkload, OpenWorkloadConfig
        from repro.units import HOUR

        workload = OpenWorkload(
            bed,
            OpenWorkloadConfig(
                mean_interarrival=30.0,  # far shorter than a 1 GB transfer
                duration=2 * HOUR,
                logical_names=("lfn://x",),
            ),
            handler,
        )
        workload.start()
        bed.engine.run(until=AUG_2001 + 3 * HOUR)
        assert peak["active"] >= 2
