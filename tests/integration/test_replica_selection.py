"""Integration: the replica-selection use case end to end.

Two sites hold a replica; the LBL-ANL path is systematically less loaded
than the ISI-ANL path (testbed construction), so a broker fed each site's
transfer log should prefer LBL most of the time, and its choices should
beat always picking the slower site.
"""

import numpy as np
import pytest

from repro.core import ReplicaBroker
from repro.core.predictors import classified_predictors, paper_predictors
from repro.storage import ReplicaCatalog
from repro.units import GB


@pytest.fixture(scope="module")
def broker_setup(august_outputs):
    catalog = ReplicaCatalog()
    logs = {}
    for output in august_outputs.values():
        catalog.register("lfn://physics/run42", output.server_site, 1 * GB)
        logs[output.server_site] = output.log
    client = "140.221.65.69"  # the ANL client both campaigns used
    return catalog, logs, client


def test_broker_ranks_both_sites(broker_setup):
    catalog, logs, client = broker_setup
    broker = ReplicaBroker(catalog, logs, paper_predictors()["AVG15"])
    ranked = broker.rank("lfn://physics/run42", client, now=2e9)
    assert len(ranked) == 2
    assert all(r.predicted_bandwidth is not None for r in ranked)


def test_broker_prefers_faster_link_on_average(broker_setup, august_outputs):
    catalog, logs, client = broker_setup
    broker = ReplicaBroker(catalog, logs, classified_predictors()["C-AVG15"])
    choice = broker.select("lfn://physics/run42", client, now=2e9)
    means = {
        output.server_site: np.mean([r.bandwidth for r in output.log.records()])
        for output in august_outputs.values()
    }
    truly_faster = max(means, key=means.get)
    assert choice.site == truly_faster


def test_predicted_bandwidths_plausible(broker_setup):
    catalog, logs, client = broker_setup
    broker = ReplicaBroker(catalog, logs, classified_predictors()["C-AVG"])
    for ranked in broker.rank("lfn://physics/run42", client, now=2e9):
        assert 1e6 < ranked.predicted_bandwidth < 20e6


def test_estimated_transfer_time_consistent(broker_setup):
    catalog, logs, client = broker_setup
    broker = ReplicaBroker(catalog, logs, paper_predictors()["AVG"])
    best = broker.select("lfn://physics/run42", client, now=2e9)
    eta = best.estimated_time(1 * GB)
    assert eta == pytest.approx(1 * GB / best.predicted_bandwidth)
    assert 30 < eta < 1000  # gigabyte over a loaded OC-3: O(minutes)
