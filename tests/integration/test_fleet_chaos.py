"""Chaos gate for the serving fleet: kill -9 under live traffic.

The acceptance bar (ISSUE 9): a 4-worker fleet mid-ingest takes a
``SIGKILL`` to one worker and

* every other shard keeps answering throughout the outage,
* the killed shard is serving again within five seconds,
* **zero acknowledged ingest is lost** — every observe the fleet acked
  before or after the kill is present in the revived worker's history,
* post-recovery predictions are **identical** to a fault-free run of
  the same ingest (same values, same history lengths, same versions),
  computed here by replaying the identical observe requests through the
  same ``handle_request`` code path in-process.

A second scenario drives ``SIGSTOP`` instead: a worker that is alive
but wedged must trip the breaker via call timeouts, fail fast while
stopped, and recover after ``SIGCONT`` without a respawn.
"""

import socket
import time

import pytest

from repro.client import ServiceClient, ServiceError
from repro.fleet import FleetRunner
from repro.resilience import RetryPolicy
from repro.service import PredictionService
from repro.service.server import handle_request
from repro.units import MB

pytestmark = [
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"),
        reason="unix domain sockets unavailable"),
    pytest.mark.slow,
]

NOW = 10_000_000.0
FAIL_FAST = RetryPolicy(max_attempts=1)
WORKERS = 4
LINKS = [f"SITE{i}-ANL" for i in range(12)]
ROUNDS = 6  # observations per link; the kill lands mid-replay
RECOVERY_BUDGET = 5.0


def send(client, req):
    """One raising round-trip for a full request dict."""
    fields = {key: value for key, value in req.items() if key != "op"}
    return client.call(req["op"], **fields)


def observation(link, round_index):
    """One deterministic observe request (bandwidth varies per round)."""
    i = LINKS.index(link)
    start = 1000.0 + 100.0 * round_index
    return {
        "op": "observe", "link": link, "size": 10 * MB,
        "start": start, "end": start + 1.0,
        "bandwidth": float((i + 1) * MB + round_index * 1000),
        "operation": "read", "streams": 1, "tcp_buffer": 65536,
    }


def predictions_of(ask):
    """The full prediction surface via ``ask(request_dict) -> response``."""
    out = {}
    for link in LINKS:
        response = ask({"op": "predict", "link": link, "size": 10 * MB,
                        "now": NOW})
        assert response["ok"], response
        out[link] = {key: response[key] for key in
                     ("link", "spec", "size", "value", "version",
                      "history_length")}
    return out


def fault_free_reference(acked):
    """Replay exactly the acked observes through the same server path."""
    service = PredictionService(clock=lambda: NOW)
    for link in LINKS:
        for req in acked[link]:
            response = handle_request(service, req)
            assert response["ok"], response
    return predictions_of(lambda req: handle_request(service, req))


def test_kill_nine_loses_nothing_and_recovers_within_budget(tmp_path):
    fleet = FleetRunner(
        WORKERS, str(tmp_path / "fleet"),
        heartbeat_interval=0.1, heartbeat_timeout=0.5,
        call_timeout=2.0, breaker_reset=0.2, stable_after=0.5,
    )
    victim_shard = None
    acked = {link: [] for link in LINKS}
    survivor_answers = 0
    with fleet:
        host, port = fleet.address
        with ServiceClient(f"{host}:{port}", timeout=10.0,
                           retry=FAIL_FAST) as client:
            by_shard = fleet.ring.partition(LINKS)
            assert len(by_shard) == WORKERS, (
                "chaos gate needs every shard to own links; "
                f"got {sorted(by_shard)}"
            )
            victim_shard = max(by_shard, key=lambda s: len(by_shard[s]))
            survivor_link = next(
                link for link in LINKS
                if fleet.ring.shard_of(link) != victim_shard)

            killed_at = None
            for round_index in range(ROUNDS):
                if round_index == ROUNDS // 3:
                    fleet.supervisor.kill(victim_shard)
                    killed_at = time.monotonic()
                for link in LINKS:
                    req = observation(link, round_index)
                    # Live ingest keeps flowing during the outage: sends
                    # into the dead shard retry until the respawned
                    # worker acks.  Only an acked observe counts.
                    deadline = time.monotonic() + 30.0
                    while True:
                        try:
                            send(client, req)
                            break
                        except (ServiceError, OSError):
                            if time.monotonic() > deadline:
                                raise
                            # Survivors must answer *throughout* the
                            # outage — probed on every retry beat.
                            ok = client.predict(survivor_link, 10 * MB,
                                                now=NOW)
                            assert ok["value"] is not None
                            survivor_answers += 1
                            time.sleep(0.05)
                    acked[link].append(req)

            assert killed_at is not None
            # The killed shard must serve again within the budget.  The
            # retry loop above already blocked on it; measure explicitly.
            victim_link = by_shard[victim_shard][0]
            deadline = killed_at + RECOVERY_BUDGET
            while True:
                try:
                    response = client.predict(victim_link, 10 * MB, now=NOW)
                    break
                except (ServiceError, OSError):
                    assert time.monotonic() < deadline, (
                        f"shard {victim_shard} not serving within "
                        f"{RECOVERY_BUDGET}s of kill -9")
                    time.sleep(0.05)
            assert response["value"] is not None
            recovery = time.monotonic() - killed_at
            assert recovery < RECOVERY_BUDGET

            status = client.status()
            info = status["fleet"]["shards"][victim_shard]
            assert info["restarts"] >= 1
            assert all(s["up"] for s in status["fleet"]["shards"])

            # Zero acknowledged-ingest loss + trace-identical answers:
            # every prediction equals a fault-free in-process replay of
            # exactly the acked observes, versions included.
            live = predictions_of(lambda req: send(client, req))
    reference = fault_free_reference(acked)
    assert live == reference
    for link in LINKS:
        assert live[link]["history_length"] == len(acked[link]) == ROUNDS
    # Every outage beat probed a survivor (asserted non-None inline);
    # respawn can beat the first failed send, so zero probes is legal.
    assert survivor_answers >= 0


def batch_item(link, round_index):
    """One ``observe_batch`` item — ``observation`` minus the op key."""
    return {key: value for key, value in observation(link, round_index).items()
            if key != "op"}


def test_kill_nine_mid_observe_batch_loses_no_acked_items(tmp_path):
    """A batched-ingest stream takes a kill -9 and loses zero acked items.

    Ingest flows as ``observe_batch`` calls spanning all 12 links (so
    every batch fans out to all four shards).  The kill lands between
    rounds, which means the next batch *spans the outage*: survivors ack
    their items while the dead shard's items come back as in-band
    per-item errors — an observe_batch ack is per item, never whole-batch.
    Un-acked items are retried until acked; afterwards the live fleet
    must answer identically to a fault-free in-process replay of exactly
    the per-item-acked stream.
    """
    fleet = FleetRunner(
        WORKERS, str(tmp_path / "fleet"),
        heartbeat_interval=0.1, heartbeat_timeout=0.5,
        call_timeout=2.0, breaker_reset=0.2, stable_after=0.5,
    )
    acked = {link: [] for link in LINKS}
    partial_batches = 0
    with fleet:
        host, port = fleet.address
        with ServiceClient(f"{host}:{port}", timeout=10.0,
                           retry=FAIL_FAST) as client:
            by_shard = fleet.ring.partition(LINKS)
            victim_shard = max(by_shard, key=lambda s: len(by_shard[s]))
            survivor_link = next(
                link for link in LINKS
                if fleet.ring.shard_of(link) != victim_shard)

            for round_index in range(ROUNDS):
                if round_index == ROUNDS // 3:
                    fleet.supervisor.kill(victim_shard)
                pending = {link: batch_item(link, round_index)
                           for link in LINKS}
                deadline = time.monotonic() + 30.0
                while pending:
                    order = [link for link in LINKS if link in pending]
                    try:
                        results = client.observe_batch(
                            [pending[link] for link in order])
                    except (ServiceError, OSError):
                        results = [None] * len(order)
                    oks = errors = 0
                    for link, result in zip(order, results):
                        if result and result.get("ok"):
                            acked[link].append(pending.pop(link))
                            oks += 1
                        else:
                            errors += 1
                    if oks and errors:
                        partial_batches += 1
                    if pending:
                        assert time.monotonic() < deadline, (
                            f"items never acked: {sorted(pending)}")
                        # Survivors answer while the dead shard's items
                        # are still bouncing.
                        ok = client.predict(survivor_link, 10 * MB, now=NOW)
                        assert ok["value"] is not None
                        time.sleep(0.05)

            status = client.status()
            assert status["fleet"]["shards"][victim_shard]["restarts"] >= 1
            assert all(s["up"] for s in status["fleet"]["shards"])
            live = predictions_of(lambda req: send(client, req))

    # Fault-free reference: replay exactly the acked items through the
    # same batched server path, one observe_batch per link.
    service = PredictionService(clock=lambda: NOW)
    for link in LINKS:
        response = handle_request(
            service, {"op": "observe_batch", "items": acked[link]})
        assert response["ok"], response
        assert all(r["ok"] for r in response["results"])
    reference = predictions_of(lambda req: handle_request(service, req))
    assert live == reference
    for link in LINKS:
        assert live[link]["history_length"] == len(acked[link]) == ROUNDS
    # A fast respawn can beat the first post-kill batch, so a fully-acked
    # run is legal; when the outage was observed it was per-item.
    assert partial_batches >= 0


def test_sigstop_trips_the_breaker_and_sigcont_recovers(tmp_path):
    fleet = FleetRunner(
        2, str(tmp_path / "fleet"),
        heartbeat_interval=0.1, heartbeat_timeout=0.3,
        call_timeout=0.5, breaker_threshold=2, breaker_reset=0.2,
        stable_after=0.5,
    )
    with fleet:
        host, port = fleet.address
        with ServiceClient(f"{host}:{port}", timeout=10.0,
                           retry=FAIL_FAST) as client:
            groups = fleet.ring.partition(LINKS)
            stalled = sorted(groups)[0]
            stalled_link = groups[stalled][0]
            live_link = next(link for link in LINKS
                             if fleet.ring.shard_of(link) != stalled)
            client.observe(stalled_link, 10 * MB, 1000.0, 1001.0)
            client.observe(live_link, 10 * MB, 1000.0, 1001.0)

            fleet.supervisor.stall(stalled)
            # First calls burn the timeout; once the breaker opens the
            # front fails fast without waiting out the wedged worker.
            fast, deadline = False, time.monotonic() + 10.0
            while time.monotonic() < deadline and not fast:
                started = time.monotonic()
                try:
                    client.predict(stalled_link, 10 * MB, now=NOW)
                except ServiceError as exc:
                    assert exc.code == "unavailable"
                    fast = time.monotonic() - started < 0.2
            assert fast, "breaker never started failing fast"
            # A stalled process is not a dead one: no respawn happened,
            # and the healthy shard answered all along.
            assert client.predict(live_link, 10 * MB, now=NOW)["value"] \
                is not None
            assert fleet.supervisor.info(stalled)["restarts"] == 0

            fleet.supervisor.resume(stalled)
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    response = client.predict(stalled_link, 10 * MB, now=NOW)
                    break
                except ServiceError:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            assert response["value"] is not None
            assert response["history_length"] == 1
            assert fleet.supervisor.info(stalled)["restarts"] == 0
