"""The Unix-socket server, end to end (JSON-lines dialect).

The binary dialect and the cross-protocol battery live in
``test_wire_protocol.py``.
"""

import socket

import pytest

from repro.client import ServiceClient, ServiceError
from repro.service import PredictionService, ServiceServer, handle_request
from repro.units import MB
from tests.conftest import make_record

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)


@pytest.fixture
def service():
    service = PredictionService(clock=lambda: 10_000_000.0)
    service.ingest_records(
        "LBL-ANL", [make_record(start=1000.0 + 100 * i) for i in range(30)]
    )
    return service


@pytest.fixture
def server(service, tmp_path):
    with ServiceServer(service, tmp_path / "repro.sock") as server:
        yield server


@pytest.fixture
def client(server):
    with ServiceClient(server.socket_path) as client:
        yield client


def test_ping_roundtrip(client):
    assert client.request({"op": "ping"}) == {"ok": True, "v": 1, "pong": True}
    assert client.ping() is True


def test_predict_over_socket_matches_direct_call(client, service):
    response = client.predict("LBL-ANL", 100 * MB, now=5000.0)
    assert response["ok"] and response["v"] == 1
    direct = service.predict("LBL-ANL", 100 * MB, now=5000.0)
    assert response["value"] == direct.value
    assert response["version"] == direct.version


def test_rank_over_socket(client):
    ranking = client.rank(["LBL-ANL", "NOWHERE"], 100 * MB)
    assert [r["site"] for r in ranking] == ["LBL-ANL", "NOWHERE"]


def test_status_metrics_trace_over_socket(client):
    status = client.status()
    assert status["links"]["LBL-ANL"]["records"] == 30
    metrics = client.request({"op": "metrics"})
    assert metrics["metrics"]["service_ingested_records"]["value"] == 30
    trace = client.request({"op": "trace", "kind": "observe"})
    assert all(e["kind"] == "observe" for e in trace["events"])


def test_metrics_text_format_over_socket(client):
    response = client.request({"op": "metrics", "format": "text"})
    assert response["ok"]
    text = response["text"]
    assert "# TYPE service_ingested_records counter" in text
    assert "service_ingested_records 30" in text


def test_spans_op_serves_the_process_exporter(client):
    from repro.obs.tracing import span

    with span("server.test", link="LBL-ANL"):
        pass
    response = client.request({"op": "spans", "name": "server.test", "limit": 1})
    assert response["ok"]
    (exported,) = response["spans"]
    assert exported["name"] == "server.test"
    assert exported["status"] == "ok"
    assert exported["attributes"] == {"link": "LBL-ANL"}
    assert exported["duration"] >= 0


def test_events_op_scopes(client):
    from repro.obs.events import get_event_bus

    get_event_bus().emit("server.test.global", probe=1)
    service_events = client.request({"op": "events", "kind": "observe"})
    assert service_events["ok"]
    assert len(service_events["events"]) > 0
    assert all(e["kind"] == "observe" for e in service_events["events"])

    global_events = client.request(
        {"op": "events", "scope": "global", "kind": "server.test.global"}
    )
    assert [e["probe"] for e in global_events["events"]] == [1]

    merged = client.request({"op": "events", "scope": "all", "limit": 5})
    assert merged["ok"] and len(merged["events"]) == 5
    times = [e["time"] for e in merged["events"]]
    assert times == sorted(times)

    bad = client.request({"op": "events", "scope": "sideways"})
    assert not bad["ok"] and "scope" in bad["error"]["message"]


def test_concurrent_clients(server):
    import threading

    results = []
    lock = threading.Lock()

    def run_client():
        with ServiceClient(server.socket_path) as client:
            response = client.predict("LBL-ANL", 100 * MB, now=5000.0)
        with lock:
            results.append(response["value"])

    threads = [threading.Thread(target=run_client) for _ in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1


# ----------------------------------------------------------------------
# the versioned envelope and normalized errors
# ----------------------------------------------------------------------
def test_errors_come_back_in_band_and_normalized(client, service):
    response = client.request({"op": "warp"})
    assert response == {
        "ok": False, "v": 1,
        "error": {"code": "unknown_op", "message": "unknown op 'warp'"},
    }
    response = client.request({"op": "predict", "link": "LBL-ANL"})
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"
    assert "size" in response["error"]["message"]
    # handle_request is the same dispatch the socket uses.
    assert handle_request(service, {"op": "warp"})["ok"] is False


def test_typed_helpers_raise_service_error(client):
    with pytest.raises(ServiceError) as err:
        client.call("warp")
    assert err.value.code == "unknown_op"


def test_future_protocol_version_is_refused_in_band(client):
    response = client.request({"op": "ping", "v": 2})
    assert not response["ok"]
    assert response["error"]["code"] == "unsupported_version"
    # The connection is still usable afterwards.
    assert client.ping() is True


def test_bad_protocol_version_is_a_bad_request(client):
    for v in (0, -1, True, "one"):
        response = client.request({"op": "ping", "v": v})
        assert not response["ok"], v
        assert response["error"]["code"] == "bad_request", v


def test_legacy_errors_flag_restores_bare_strings(service, tmp_path):
    with ServiceServer(service, tmp_path / "legacy.sock",
                       legacy_errors=True) as server:
        with ServiceClient(server.socket_path) as client:
            response = client.request({"op": "warp"})
    assert response == {"ok": False, "v": 1, "error": "unknown op 'warp'"}


def test_server_request_helper_is_deprecated_but_works(server):
    from repro.service.server import request

    with pytest.warns(DeprecationWarning):
        response = request(server.socket_path, {"op": "ping"})
    assert response == {"ok": True, "v": 1, "pong": True}


def test_stop_removes_the_socket(service, tmp_path):
    path = tmp_path / "gone.sock"
    server = ServiceServer(service, path).start()
    assert path.exists()
    server.stop()
    assert not path.exists()


# ----------------------------------------------------------------------
# resilience: malformed input, oversized requests, startup races, deadlines
# ----------------------------------------------------------------------
def test_malformed_json_keeps_the_connection_alive(server):
    import json as jsonlib

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b"{this is not json}\n")
        fh.flush()
        bad = jsonlib.loads(fh.readline())
        assert not bad["ok"] and bad["error"]["code"] == "bad_request"
        # Same connection, same thread: a valid request still answers.
        fh.write(b'{"op": "ping"}\n')
        fh.flush()
        assert jsonlib.loads(fh.readline()) == {"ok": True, "v": 1, "pong": True}


def test_oversized_request_answers_in_band_then_closes(server):
    import json as jsonlib

    from repro.service.server import MAX_REQUEST_BYTES

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b'{"op": "ping", "pad": "' + b"x" * MAX_REQUEST_BYTES + b'"}\n')
        fh.flush()
        response = jsonlib.loads(fh.readline())
        assert not response["ok"]
        assert response["error"]["code"] == "oversized_request"


def test_client_retries_through_a_startup_race(service, tmp_path):
    import threading

    socket_path = tmp_path / "late.sock"
    server = ServiceServer(service, socket_path)
    starter = threading.Timer(0.2, server.start)
    starter.start()
    try:
        # The socket file does not exist yet; the default connect retry
        # policy bridges the gap.
        with ServiceClient(socket_path) as client:
            assert client.ping() is True
    finally:
        starter.join()
        server.stop()


def test_client_fail_fast_policy_still_raises(tmp_path):
    from repro.resilience import RetryPolicy

    with ServiceClient(tmp_path / "never.sock",
                       retry=RetryPolicy(max_attempts=1)) as client:
        with pytest.raises(OSError):
            client.ping()


def test_injected_connect_refusals_are_retried(server):
    from repro import faults
    from repro.faults import FaultInjector

    injector = FaultInjector().inject(
        "socket.connect", error=ConnectionRefusedError, times=2)
    with faults.injected(injector):
        with ServiceClient(server.socket_path) as client:
            assert client.ping() is True
    assert injector.fired["socket.connect"] == 2


def test_client_survives_a_server_restart_between_requests(service, tmp_path):
    path = tmp_path / "restart.sock"
    server = ServiceServer(service, path).start()
    try:
        with ServiceClient(path) as client:
            assert client.ping() is True
            server.stop()
            server = ServiceServer(service, path).start()
            # The reused connection is stale; the client reconnects once.
            assert client.ping() is True
    finally:
        server.stop()


def test_expired_deadline_answers_in_band(service):
    from repro.resilience import Deadline

    clock = iter([0.0, 100.0, 200.0, 300.0]).__next__
    deadline = Deadline(10.0, clock=clock)  # expires before the first check
    response = handle_request(service, {"op": "status"}, deadline=deadline)
    assert not response["ok"]
    assert response["error"]["code"] == "deadline_exceeded"


def test_tiny_request_timeout_cuts_requests_over_the_socket(service, tmp_path):
    with ServiceServer(service, tmp_path / "t.sock",
                       request_timeout=1e-9) as server:
        with ServiceClient(server.socket_path) as client:
            response = client.request({"op": "status"})
    assert not response["ok"]
    assert response["error"]["code"] == "deadline_exceeded"


# ----------------------------------------------------------------------
# the observe op (remote ingest; what a fleet front routes to workers)
# ----------------------------------------------------------------------
def test_observe_over_socket_updates_history_and_acks_a_version(client, service):
    before = service.status()["links"].get("NEW-LINK", {}).get("records", 0)
    assert before == 0
    v1 = client.observe("NEW-LINK", 100 * MB, 1000.0, 1010.0)
    v2 = client.observe("NEW-LINK", 100 * MB, 2000.0, 2010.0)
    assert v2 == v1 + 1
    assert service.status()["links"]["NEW-LINK"]["records"] == 2
    response = client.predict("NEW-LINK", 100 * MB, now=3000.0)
    assert response["value"] == pytest.approx(10 * MB)


def test_observe_over_both_dialects_agrees(service, tmp_path):
    with ServiceServer(service, tmp_path / "obs.sock") as server:
        with ServiceClient(server.socket_path, binary=False) as json_client:
            vj = json_client.observe("DIAL-LINK", 10 * MB, 0.0, 1.0)
        with ServiceClient(server.socket_path, binary=True) as bin_client:
            vb = bin_client.observe(
                "DIAL-LINK", 10 * MB, 10.0, 11.0,
                source_ip="10.0.0.1", file_name="/f", volume="/v", offset=3,
            )
    assert vb == vj + 1
    assert service.status()["links"]["DIAL-LINK"]["records"] == 2


def test_observe_rejects_garbage_in_band(client):
    response = client.request({"op": "observe", "link": "X"})  # no size/times
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"
    response = client.request({
        "op": "observe", "link": "X", "size": 10, "start": 0.0, "end": 1.0,
        "operation": "teleport",
    })
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"


def test_observed_records_persist_through_a_durable_store(tmp_path):
    from repro.store import LinkStore

    store = LinkStore(tmp_path / "state")
    service = PredictionService(store=store, clock=lambda: 10_000_000.0)
    with ServiceServer(service, tmp_path / "d.sock") as server:
        with ServiceClient(server.socket_path) as client:
            acked = client.observe("DUR-LINK", 10 * MB, 0.0, 1.0)
    store.close()
    # A cold process (no checkpoint was written: simulating a crash
    # right after the ack) still revives the observation from the WAL.
    revived = LinkStore(tmp_path / "state")
    cold = PredictionService(store=revived, clock=lambda: 10_000_000.0)
    assert cold.predict("DUR-LINK", 10 * MB).history_length == acked
    revived.close()


# ----------------------------------------------------------------------
# accept-loop hardening: fd exhaustion backs off instead of dying
# ----------------------------------------------------------------------
def test_accept_loop_survives_fd_exhaustion(service, tmp_path):
    import errno
    import socketserver

    from repro.obs import get_registry

    with ServiceServer(service, tmp_path / "fd.sock") as server:
        inner = server._server
        counter = get_registry().counter("server_accept_errors")
        before = counter.value
        real_get_request = socketserver.UnixStreamServer.get_request
        remaining = [3]

        def starved(self):
            if remaining[0] > 0:
                remaining[0] -= 1
                raise OSError(errno.EMFILE, "Too many open files")
            return real_get_request(self)

        socketserver.UnixStreamServer.get_request = starved
        try:
            # Each failed accept backs off and is swallowed by
            # serve_forever; the next real connection still answers.
            with ServiceClient(server.socket_path) as probe:
                assert probe.ping() is True
        finally:
            socketserver.UnixStreamServer.get_request = real_get_request
        assert remaining[0] == 0
        assert counter.value == before + 3
        assert inner._accept_delay == 0.0  # reset by the first success
