"""The Unix-socket server, end to end (JSON-lines dialect).

The binary dialect and the cross-protocol battery live in
``test_wire_protocol.py``.
"""

import socket

import pytest

from repro.client import ServiceClient, ServiceError
from repro.service import PredictionService, ServiceServer, handle_request
from repro.units import MB
from tests.conftest import make_record

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)


@pytest.fixture
def service():
    service = PredictionService(clock=lambda: 10_000_000.0)
    service.ingest_records(
        "LBL-ANL", [make_record(start=1000.0 + 100 * i) for i in range(30)]
    )
    return service


@pytest.fixture
def server(service, tmp_path):
    with ServiceServer(service, tmp_path / "repro.sock") as server:
        yield server


@pytest.fixture
def client(server):
    with ServiceClient(server.socket_path) as client:
        yield client


def test_ping_roundtrip(client):
    assert client.request({"op": "ping"}) == {"ok": True, "v": 1, "pong": True}
    assert client.ping() is True


def test_predict_over_socket_matches_direct_call(client, service):
    response = client.predict("LBL-ANL", 100 * MB, now=5000.0)
    assert response["ok"] and response["v"] == 1
    direct = service.predict("LBL-ANL", 100 * MB, now=5000.0)
    assert response["value"] == direct.value
    assert response["version"] == direct.version


def test_rank_over_socket(client):
    ranking = client.rank(["LBL-ANL", "NOWHERE"], 100 * MB)
    assert [r["site"] for r in ranking] == ["LBL-ANL", "NOWHERE"]


def test_status_metrics_trace_over_socket(client):
    status = client.status()
    assert status["links"]["LBL-ANL"]["records"] == 30
    metrics = client.request({"op": "metrics"})
    assert metrics["metrics"]["service_ingested_records"]["value"] == 30
    trace = client.request({"op": "trace", "kind": "observe"})
    assert all(e["kind"] == "observe" for e in trace["events"])


def test_metrics_text_format_over_socket(client):
    response = client.request({"op": "metrics", "format": "text"})
    assert response["ok"]
    text = response["text"]
    assert "# TYPE service_ingested_records counter" in text
    assert "service_ingested_records 30" in text


def test_spans_op_serves_the_process_exporter(client):
    from repro.obs.tracing import span

    with span("server.test", link="LBL-ANL"):
        pass
    response = client.request({"op": "spans", "name": "server.test", "limit": 1})
    assert response["ok"]
    (exported,) = response["spans"]
    assert exported["name"] == "server.test"
    assert exported["status"] == "ok"
    assert exported["attributes"] == {"link": "LBL-ANL"}
    assert exported["duration"] >= 0


def test_events_op_scopes(client):
    from repro.obs.events import get_event_bus

    get_event_bus().emit("server.test.global", probe=1)
    service_events = client.request({"op": "events", "kind": "observe"})
    assert service_events["ok"]
    assert len(service_events["events"]) > 0
    assert all(e["kind"] == "observe" for e in service_events["events"])

    global_events = client.request(
        {"op": "events", "scope": "global", "kind": "server.test.global"}
    )
    assert [e["probe"] for e in global_events["events"]] == [1]

    merged = client.request({"op": "events", "scope": "all", "limit": 5})
    assert merged["ok"] and len(merged["events"]) == 5
    times = [e["time"] for e in merged["events"]]
    assert times == sorted(times)

    bad = client.request({"op": "events", "scope": "sideways"})
    assert not bad["ok"] and "scope" in bad["error"]["message"]


def test_concurrent_clients(server):
    import threading

    results = []
    lock = threading.Lock()

    def run_client():
        with ServiceClient(server.socket_path) as client:
            response = client.predict("LBL-ANL", 100 * MB, now=5000.0)
        with lock:
            results.append(response["value"])

    threads = [threading.Thread(target=run_client) for _ in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1


# ----------------------------------------------------------------------
# the versioned envelope and normalized errors
# ----------------------------------------------------------------------
def test_errors_come_back_in_band_and_normalized(client, service):
    response = client.request({"op": "warp"})
    assert response == {
        "ok": False, "v": 1,
        "error": {"code": "unknown_op", "message": "unknown op 'warp'"},
    }
    response = client.request({"op": "predict", "link": "LBL-ANL"})
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"
    assert "size" in response["error"]["message"]
    # handle_request is the same dispatch the socket uses.
    assert handle_request(service, {"op": "warp"})["ok"] is False


def test_typed_helpers_raise_service_error(client):
    with pytest.raises(ServiceError) as err:
        client.call("warp")
    assert err.value.code == "unknown_op"


def test_future_protocol_version_is_refused_in_band(client):
    response = client.request({"op": "ping", "v": 2})
    assert not response["ok"]
    assert response["error"]["code"] == "unsupported_version"
    # The connection is still usable afterwards.
    assert client.ping() is True


def test_bad_protocol_version_is_a_bad_request(client):
    for v in (0, -1, True, "one"):
        response = client.request({"op": "ping", "v": v})
        assert not response["ok"], v
        assert response["error"]["code"] == "bad_request", v


def test_legacy_errors_flag_restores_bare_strings(service, tmp_path):
    with ServiceServer(service, tmp_path / "legacy.sock",
                       legacy_errors=True) as server:
        with ServiceClient(server.socket_path) as client:
            response = client.request({"op": "warp"})
    assert response == {"ok": False, "v": 1, "error": "unknown op 'warp'"}


def test_server_request_helper_is_deprecated_but_works(server):
    from repro.service.server import request

    with pytest.warns(DeprecationWarning):
        response = request(server.socket_path, {"op": "ping"})
    assert response == {"ok": True, "v": 1, "pong": True}


def test_stop_removes_the_socket(service, tmp_path):
    path = tmp_path / "gone.sock"
    server = ServiceServer(service, path).start()
    assert path.exists()
    server.stop()
    assert not path.exists()


# ----------------------------------------------------------------------
# resilience: malformed input, oversized requests, startup races, deadlines
# ----------------------------------------------------------------------
def test_malformed_json_keeps_the_connection_alive(server):
    import json as jsonlib

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b"{this is not json}\n")
        fh.flush()
        bad = jsonlib.loads(fh.readline())
        assert not bad["ok"] and bad["error"]["code"] == "bad_request"
        # Same connection, same thread: a valid request still answers.
        fh.write(b'{"op": "ping"}\n')
        fh.flush()
        assert jsonlib.loads(fh.readline()) == {"ok": True, "v": 1, "pong": True}


def test_oversized_request_answers_in_band_then_closes(server):
    import json as jsonlib

    from repro.service.server import MAX_REQUEST_BYTES

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b'{"op": "ping", "pad": "' + b"x" * MAX_REQUEST_BYTES + b'"}\n')
        fh.flush()
        response = jsonlib.loads(fh.readline())
        assert not response["ok"]
        assert response["error"]["code"] == "oversized_request"


def test_client_retries_through_a_startup_race(service, tmp_path):
    import threading

    socket_path = tmp_path / "late.sock"
    server = ServiceServer(service, socket_path)
    starter = threading.Timer(0.2, server.start)
    starter.start()
    try:
        # The socket file does not exist yet; the default connect retry
        # policy bridges the gap.
        with ServiceClient(socket_path) as client:
            assert client.ping() is True
    finally:
        starter.join()
        server.stop()


def test_client_fail_fast_policy_still_raises(tmp_path):
    from repro.resilience import RetryPolicy

    with ServiceClient(tmp_path / "never.sock",
                       retry=RetryPolicy(max_attempts=1)) as client:
        with pytest.raises(OSError):
            client.ping()


def test_injected_connect_refusals_are_retried(server):
    from repro import faults
    from repro.faults import FaultInjector

    injector = FaultInjector().inject(
        "socket.connect", error=ConnectionRefusedError, times=2)
    with faults.injected(injector):
        with ServiceClient(server.socket_path) as client:
            assert client.ping() is True
    assert injector.fired["socket.connect"] == 2


def test_client_survives_a_server_restart_between_requests(service, tmp_path):
    path = tmp_path / "restart.sock"
    server = ServiceServer(service, path).start()
    try:
        with ServiceClient(path) as client:
            assert client.ping() is True
            server.stop()
            server = ServiceServer(service, path).start()
            # The reused connection is stale; the client reconnects once.
            assert client.ping() is True
    finally:
        server.stop()


def test_expired_deadline_answers_in_band(service):
    from repro.resilience import Deadline

    clock = iter([0.0, 100.0, 200.0, 300.0]).__next__
    deadline = Deadline(10.0, clock=clock)  # expires before the first check
    response = handle_request(service, {"op": "status"}, deadline=deadline)
    assert not response["ok"]
    assert response["error"]["code"] == "deadline_exceeded"


def test_tiny_request_timeout_cuts_requests_over_the_socket(service, tmp_path):
    with ServiceServer(service, tmp_path / "t.sock",
                       request_timeout=1e-9) as server:
        with ServiceClient(server.socket_path) as client:
            response = client.request({"op": "status"})
    assert not response["ok"]
    assert response["error"]["code"] == "deadline_exceeded"
