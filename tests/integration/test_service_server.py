"""The Unix-socket JSON-lines server, end to end."""

import socket

import pytest

from repro.service import PredictionService, ServiceServer, handle_request
from repro.service.server import request
from repro.units import MB
from tests.conftest import make_record

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)


@pytest.fixture
def service():
    service = PredictionService(clock=lambda: 10_000_000.0)
    service.ingest_records(
        "LBL-ANL", [make_record(start=1000.0 + 100 * i) for i in range(30)]
    )
    return service


@pytest.fixture
def server(service, tmp_path):
    with ServiceServer(service, tmp_path / "repro.sock") as server:
        yield server


def test_ping_roundtrip(server):
    assert request(server.socket_path, {"op": "ping"}) == {"ok": True, "pong": True}


def test_predict_over_socket_matches_direct_call(server, service):
    response = request(
        server.socket_path,
        {"op": "predict", "link": "LBL-ANL", "size": 100 * MB, "now": 5000.0},
    )
    assert response["ok"]
    direct = service.predict("LBL-ANL", 100 * MB, now=5000.0)
    assert response["value"] == direct.value
    assert response["version"] == direct.version


def test_rank_over_socket(server):
    response = request(
        server.socket_path,
        {"op": "rank", "candidates": ["LBL-ANL", "NOWHERE"], "size": 100 * MB},
    )
    assert [r["site"] for r in response["ranking"]] == ["LBL-ANL", "NOWHERE"]


def test_status_metrics_trace_over_socket(server):
    status = request(server.socket_path, {"op": "status"})
    assert status["links"]["LBL-ANL"]["records"] == 30
    metrics = request(server.socket_path, {"op": "metrics"})
    assert metrics["metrics"]["service_ingested_records"]["value"] == 30
    trace = request(server.socket_path, {"op": "trace", "kind": "observe"})
    assert all(e["kind"] == "observe" for e in trace["events"])


def test_metrics_text_format_over_socket(server):
    response = request(server.socket_path, {"op": "metrics", "format": "text"})
    assert response["ok"]
    text = response["text"]
    assert "# TYPE service_ingested_records counter" in text
    assert "service_ingested_records 30" in text


def test_spans_op_serves_the_process_exporter(server):
    from repro.obs.tracing import span

    with span("server.test", link="LBL-ANL"):
        pass
    response = request(
        server.socket_path, {"op": "spans", "name": "server.test", "limit": 1}
    )
    assert response["ok"]
    (exported,) = response["spans"]
    assert exported["name"] == "server.test"
    assert exported["status"] == "ok"
    assert exported["attributes"] == {"link": "LBL-ANL"}
    assert exported["duration"] >= 0


def test_events_op_scopes(server):
    from repro.obs.events import get_event_bus

    get_event_bus().emit("server.test.global", probe=1)
    service_events = request(server.socket_path, {"op": "events", "kind": "observe"})
    assert service_events["ok"]
    assert len(service_events["events"]) > 0
    assert all(e["kind"] == "observe" for e in service_events["events"])

    global_events = request(
        server.socket_path,
        {"op": "events", "scope": "global", "kind": "server.test.global"},
    )
    assert [e["probe"] for e in global_events["events"]] == [1]

    merged = request(server.socket_path, {"op": "events", "scope": "all", "limit": 5})
    assert merged["ok"] and len(merged["events"]) == 5
    times = [e["time"] for e in merged["events"]]
    assert times == sorted(times)

    bad = request(server.socket_path, {"op": "events", "scope": "sideways"})
    assert not bad["ok"] and "scope" in bad["error"]


def test_concurrent_clients(server):
    import threading

    results = []
    lock = threading.Lock()

    def client():
        response = request(
            server.socket_path, {"op": "predict", "link": "LBL-ANL",
                                 "size": 100 * MB, "now": 5000.0}
        )
        with lock:
            results.append(response["value"])

    threads = [threading.Thread(target=client) for _ in range(10)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1


def test_errors_come_back_in_band(server, service):
    assert request(server.socket_path, {"op": "warp"}) == {
        "ok": False, "error": "unknown op 'warp'",
    }
    response = request(server.socket_path, {"op": "predict", "link": "LBL-ANL"})
    assert not response["ok"] and "size" in response["error"]
    # handle_request is the same dispatch the socket uses.
    assert handle_request(service, {"op": "warp"})["ok"] is False


def test_stop_removes_the_socket(service, tmp_path):
    path = tmp_path / "gone.sock"
    server = ServiceServer(service, path).start()
    assert path.exists()
    server.stop()
    assert not path.exists()


# ----------------------------------------------------------------------
# resilience: malformed input, oversized requests, startup races, deadlines
# ----------------------------------------------------------------------
def test_malformed_json_keeps_the_connection_alive(server):
    import json as jsonlib

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b"{this is not json}\n")
        fh.flush()
        bad = jsonlib.loads(fh.readline())
        assert not bad["ok"] and "bad request" in bad["error"]
        # Same connection, same thread: a valid request still answers.
        fh.write(b'{"op": "ping"}\n')
        fh.flush()
        assert jsonlib.loads(fh.readline()) == {"ok": True, "pong": True}


def test_oversized_request_answers_in_band_then_closes(server):
    import json as jsonlib

    from repro.service.server import MAX_REQUEST_BYTES

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(server.socket_path))
        fh = sock.makefile("rwb")
        fh.write(b'{"op": "ping", "pad": "' + b"x" * MAX_REQUEST_BYTES + b'"}\n')
        fh.flush()
        response = jsonlib.loads(fh.readline())
        assert not response["ok"] and "exceeds" in response["error"]


def test_request_retries_through_a_startup_race(service, tmp_path):
    import threading
    import time as timelib

    socket_path = tmp_path / "late.sock"
    server = ServiceServer(service, socket_path)
    starter = threading.Timer(0.2, server.start)
    starter.start()
    try:
        # The socket file does not exist yet; the default connect retry
        # policy bridges the gap.
        response = request(socket_path, {"op": "ping"})
        assert response == {"ok": True, "pong": True}
    finally:
        starter.join()
        server.stop()


def test_request_fail_fast_policy_still_raises(tmp_path):
    from repro.resilience import RetryPolicy

    with pytest.raises(OSError):
        request(tmp_path / "never.sock", {"op": "ping"},
                retry=RetryPolicy(max_attempts=1))


def test_injected_connect_refusals_are_retried(server):
    from repro import faults
    from repro.faults import FaultInjector

    injector = FaultInjector().inject(
        "socket.connect", error=ConnectionRefusedError, times=2)
    with faults.injected(injector):
        response = request(server.socket_path, {"op": "ping"})
    assert response == {"ok": True, "pong": True}
    assert injector.fired["socket.connect"] == 2


def test_expired_deadline_answers_in_band(service):
    from repro.resilience import Deadline

    clock = iter([0.0, 100.0, 200.0, 300.0]).__next__
    deadline = Deadline(10.0, clock=clock)  # expires before the first check
    response = handle_request(service, {"op": "status"}, deadline=deadline)
    assert not response["ok"] and "Deadline" in response["error"]


def test_tiny_request_timeout_cuts_requests_over_the_socket(service, tmp_path):
    with ServiceServer(service, tmp_path / "t.sock",
                       request_timeout=1e-9) as server:
        response = request(server.socket_path, {"op": "status"})
    assert not response["ok"] and "Deadline" in response["error"]
