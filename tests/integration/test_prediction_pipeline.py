"""Integration: logs -> predictors -> evaluation -> paper claims."""

import numpy as np
import pytest

from repro.analysis import (
    check_summary_claims,
    compute_class_errors,
    compute_classification_impact,
    compute_relative_table,
)
from repro.core import evaluate, paper_classification
from repro.core.predictors import (
    DynamicSelector,
    classified_predictors,
    paper_predictors,
)
from repro.core.predictors.registry import PAPER_PREDICTOR_NAMES


@pytest.fixture(scope="module")
def class_errors(august_outputs):
    return {
        link: compute_class_errors(link, output.log.records())
        for link, output in august_outputs.items()
    }


class TestSection62Claims:
    def test_all_claims_hold_both_links(self, class_errors):
        for link, errors in class_errors.items():
            claims = check_summary_claims(errors)
            assert claims.all_hold(), (link, claims)

    def test_classified_errors_in_paper_band_for_large_classes(self, class_errors):
        """'Even simple techniques are at worst off by about 25%.'"""
        for errors in class_errors.values():
            for label in ("100MB", "500MB", "1GB"):
                for name in PAPER_PREDICTOR_NAMES:
                    assert errors.classified[label][name] < 55.0

    def test_classification_gain_in_5_to_10_percent_zone(self, class_errors):
        """Paper: 5-10% average improvement (large classes; small-class
        gains are far larger and excluded)."""
        gains = [
            compute_classification_impact(errors).mean_improvement(exclude_small=True)
            for errors in class_errors.values()
        ]
        assert all(g > 0 for g in gains)
        assert np.mean(gains) == pytest.approx(6.0, abs=5.0)

    def test_small_class_gain_dominates(self, class_errors):
        for errors in class_errors.values():
            impact = compute_classification_impact(errors)
            small_gain = (
                impact.per_class["AVG"]["10MB"][1] - impact.per_class["AVG"]["10MB"][0]
            )
            large_gain = (
                impact.per_class["AVG"]["1GB"][1] - impact.per_class["AVG"]["1GB"][0]
            )
            assert small_gain > large_gain


class TestRelativePerformance:
    def test_every_class_has_competitions(self, class_errors):
        cls = paper_classification()
        for link, errors in class_errors.items():
            table = compute_relative_table(
                link, errors.result,
                predictor_names=tuple(f"C-{n}" for n in PAPER_PREDICTOR_NAMES),
            )
            for label in cls.labels:
                assert table.per_class[label].compared > 10, (link, label)

    def test_best_and_worst_spread_across_battery(self, class_errors):
        """No single predictor dominates: the paper's 'improvement nullified'
        observation implies best% is spread around."""
        for link, errors in class_errors.items():
            table = compute_relative_table(
                link, errors.result,
                predictor_names=tuple(f"C-{n}" for n in PAPER_PREDICTOR_NAMES),
            )
            perf = table.per_class["1GB"]
            top = max(perf.best_pct(n) for n in table.predictor_names)
            assert top < 80.0  # nobody wins everything


class TestDynamicSelection:
    def test_dynamic_selector_competitive_with_battery(self, august_outputs):
        """The NWS-style extension: dynamic selection should land near the
        best fixed member, and never catastrophically off."""
        records = august_outputs["LBL-ANL"].log.records()
        members = {
            name: predictor
            for name, predictor in paper_predictors().items()
            if name in ("AVG", "AVG15", "MED15", "LV")
        }
        battery = dict(members)
        battery["DYN"] = DynamicSelector(list(members.values()))
        result = evaluate(records, battery)
        table = result.mape_table()
        best_member = min(table[n] for n in members)
        worst_member = max(table[n] for n in members)
        assert table["DYN"] <= worst_member + 1.0
        assert table["DYN"] <= best_member * 1.5


class TestTrainingPrefix:
    def test_varying_training_prefix(self, august_outputs):
        records = august_outputs["ISI-ANL"].log.records()
        short = evaluate(records, {"AVG15": paper_predictors()["AVG15"]}, training=5)
        default = evaluate(records, {"AVG15": paper_predictors()["AVG15"]}, training=15)
        assert len(short["AVG15"]) == len(default["AVG15"]) + 10

    def test_classified_battery_abstains_early_not_late(self, august_outputs):
        records = august_outputs["ISI-ANL"].log.records()
        result = evaluate(records, classified_predictors())
        # With ~450 mixed-size records, every class fills up quickly:
        # abstentions happen, but only on a small fraction of predictions.
        for name, trace in result.traces.items():
            total = len(trace) + trace.abstentions
            assert trace.abstentions <= total * 0.2, name
