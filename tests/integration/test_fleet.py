"""The sharded fleet end to end: real worker subprocesses.

Covers the supervised-process half the unit tests fake: spawning,
readiness, cross-process consistent hashing, durable per-shard state
surviving a graceful rolling restart, and the ``repro fleet`` status
surface with live pids.
"""

import socket
import time

import pytest

from repro.client import ServiceClient
from repro.fleet import FleetRunner
from repro.resilience import RetryPolicy
from repro.units import MB

pytestmark = [
    pytest.mark.skipif(
        not hasattr(socket, "AF_UNIX"),
        reason="unix domain sockets unavailable"),
    pytest.mark.slow,
]

NOW = 10_000_000.0
FAIL_FAST = RetryPolicy(max_attempts=1)
LINKS = [f"SITE{i}-ANL" for i in range(8)]


def make_fleet(tmp_path, workers=2, **kw):
    kw.setdefault("heartbeat_interval", 0.2)
    kw.setdefault("call_timeout", 5.0)
    kw.setdefault("stable_after", 0.5)
    return FleetRunner(workers, str(tmp_path / "fleet"), **kw)


def connect(fleet, **kw):
    host, port = fleet.address
    kw.setdefault("retry", FAIL_FAST)
    return ServiceClient(f"{host}:{port}", timeout=10.0, **kw)


def seed(client, links=LINKS, observations=3):
    for link in links:
        for k in range(observations):
            client.observe(link, 10 * MB, 1000.0 + 100.0 * k,
                           1001.0 + 100.0 * k)


def test_fleet_serves_all_ops_across_real_workers(tmp_path):
    with make_fleet(tmp_path, workers=2) as fleet:
        with connect(fleet) as client:
            assert client.ping() is True
            seed(client)
            for link in LINKS:
                response = client.predict(link, 10 * MB, now=NOW)
                assert response["value"] == pytest.approx(10 * MB)
                assert response["history_length"] == 3
            results = client.predict_batch(
                [{"link": link, "size": 10 * MB} for link in LINKS], now=NOW)
            assert [r["link"] for r in results] == LINKS
            assert all(r["ok"] for r in results)
            ranking = client.rank(LINKS, 10 * MB, now=NOW)
            assert len(ranking) == len(LINKS)
            status = client.status()
            assert status["link_count"] == len(LINKS)
            assert status["ingested"] == 3 * len(LINKS)
            fleet_section = status["fleet"]
            assert fleet_section["workers"] == 2
            for shard in fleet_section["shards"]:
                assert shard["up"] and shard["alive"]
                assert isinstance(shard["pid"], int)
                assert shard["restarts"] == 0


def test_links_land_on_the_ring_owner_across_processes(tmp_path):
    # The front (this process) and the workers (subprocesses) must agree
    # on placement: each link's records live on exactly the predicted
    # shard's store directory after a checkpointing shutdown.
    with make_fleet(tmp_path, workers=2) as fleet:
        ring = fleet.ring
        with connect(fleet) as client:
            seed(client)
            for link in LINKS:
                owner = ring.shard_of(link)
                response = client.request(
                    {"op": "status", "shard": owner}, )
                assert response["links"][link]["records"] == 3
                other = client.request(
                    {"op": "status", "shard": 1 - owner})
                assert link not in other["links"]


def test_graceful_restart_revives_every_shard_from_its_store(tmp_path):
    state = tmp_path / "fleet"
    with make_fleet(tmp_path, workers=2) as fleet:
        with connect(fleet) as client:
            seed(client)
    # Rolling shutdown checkpointed every shard; a brand-new fleet over
    # the same state dir answers identically with zero re-ingest.
    with make_fleet(tmp_path, workers=2) as fleet:
        with connect(fleet) as client:
            # Revival is lazy (nothing resident until touched), but the
            # store knows everything it holds before any query lands.
            status = client.status()
            assert status["store"]["stored_links"] == len(LINKS)
            for link in LINKS:
                response = client.predict(link, 10 * MB, now=NOW)
                assert response["value"] == pytest.approx(10 * MB)
                assert response["history_length"] == 3
            assert client.status()["link_count"] == len(LINKS)
    assert any((state / "shard-0").iterdir())
    assert any((state / "shard-1").iterdir())


def test_single_worker_fleet_degenerates_cleanly(tmp_path):
    with make_fleet(tmp_path, workers=1) as fleet:
        with connect(fleet) as client:
            seed(client, links=LINKS[:2])
            assert client.predict(LINKS[0], 10 * MB, now=NOW)["value"] \
                == pytest.approx(10 * MB)
            assert client.status()["fleet"]["workers"] == 1
