"""Chaos suite for the durable store tier.

Storage faults must cost durability *work* — a failed seal leaves rows
in the WAL tail, a corrupt checkpoint forces a column rebuild, an
unwritable checkpoint downgrades eviction to rebuild-on-revive — but
they must never change an answer.  Every test here replays the shipped
campaign logs through a store-backed service under injected faults and
demands bit-identical predictions against a fault-free, always-resident
baseline.

The one deliberate exception: a corrupt *sealed segment* genuinely
loses rows.  There the contract is containment — the bad file is
quarantined, the link is flagged degraded, and the service keeps
serving exactly the rows that survived, with no exception and no
garbage values.

Prediction specs are restricted to ring/heap summaries (``LV``,
``MED``/``MED{n}``, ``AVG{n}``, and their ``C-`` variants), which are
exact under a vectorized rebuild; full-history running sums (``AVG``,
``AR``) are only bit-stable through the checkpoint path, which these
faults disable on purpose.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import faults
from repro.faults import FaultInjector
from repro.service import PredictionService
from repro.store import LinkStore
from repro.units import MB

DATA_DIR = Path(__file__).resolve().parents[2] / "data"
LOGS = ["aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm"]
SPECS = ["C-AVG15", "AVG5", "C-MED15", "MED", "LV"]
SIZES = [10 * MB, 100 * MB, 1000 * MB]
NOW = 10_000_000.0


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    faults.uninstall()


def _ingest_logs(service):
    for name in LOGS:
        service.ingest_ulm(DATA_DIR / name)


def _answers(service):
    out = []
    for link in sorted(service.links()):
        for spec in SPECS:
            for size in SIZES:
                p = service.predict(link, size, spec, now=NOW)
                out.append((link, spec, size, p.value, p.version,
                            p.history_length))
    return out


@pytest.fixture(scope="module")
def baseline():
    service = PredictionService()
    _ingest_logs(service)
    return _answers(service)


def _quarantined(state_dir):
    return list(Path(state_dir).rglob("*.quarantined"))


class TestSegmentSealFaults:
    def test_failed_seals_leave_rows_in_tail_answers_unchanged(
            self, tmp_path, baseline):
        injector = FaultInjector(seed=7)
        injector.inject("store.segment", error=OSError, op="write", times=4)

        store = LinkStore(tmp_path / "state", segment_rows=64)
        with faults.injected(injector):
            service = PredictionService(store=store, max_resident=1)
            _ingest_logs(service)
            chaotic = _answers(service)

        assert injector.fired.get("store.segment", 0) >= 1
        assert chaotic == baseline
        # Nothing was lost: every folded row is durable (tail or segment)
        # and revival under eviction pressure served all of them.
        for link in service.links():
            assert store.durable_rows(link) == len(service.history(link))
        assert not _quarantined(tmp_path / "state")


class TestCheckpointFaults:
    def test_corrupt_checkpoint_quarantined_rebuild_is_identical(
            self, tmp_path, baseline):
        store = LinkStore(tmp_path / "state")
        first = PredictionService(store=store)
        _ingest_logs(first)
        assert first.checkpoint_all(seal=True) == len(LOGS)
        store.close()

        injector = FaultInjector(seed=11)
        injector.inject("store.checkpoint", corrupt=8, times=len(LOGS))

        reopened = LinkStore(tmp_path / "state")
        with faults.injected(injector):
            second = PredictionService(store=reopened)
            chaotic = _answers(second)

        assert injector.fired.get("store.checkpoint", 0) == len(LOGS)
        assert chaotic == baseline
        # Both checkpoints were detected, quarantined, and replaced by a
        # full column rebuild — never trusted.
        quarantined = _quarantined(tmp_path / "state")
        assert len(quarantined) == len(LOGS)
        assert all("checkpoint" in q.name for q in quarantined)

    def test_truncated_checkpoint_quarantined_rebuild_is_identical(
            self, tmp_path, baseline):
        store = LinkStore(tmp_path / "state")
        first = PredictionService(store=store)
        _ingest_logs(first)
        first.checkpoint_all(seal=True)
        store.close()

        injector = FaultInjector(seed=13)
        injector.inject("store.checkpoint", truncate=0.5, times=len(LOGS))

        with faults.injected(injector):
            second = PredictionService(store=LinkStore(tmp_path / "state"))
            chaotic = _answers(second)

        assert injector.fired.get("store.checkpoint", 0) == len(LOGS)
        assert chaotic == baseline
        assert len(_quarantined(tmp_path / "state")) == len(LOGS)

    def test_unwritable_checkpoints_degrade_eviction_not_answers(
            self, tmp_path, baseline):
        injector = FaultInjector(seed=17)
        injector.inject(
            "store.checkpoint", error=OSError, op="write", times=None)

        store = LinkStore(tmp_path / "state", segment_rows=128)
        with faults.injected(injector):
            service = PredictionService(store=store, max_resident=1)
            _ingest_logs(service)
            chaotic = _answers(service)

        # Evictions happened without a checkpoint; every revival fell
        # back to a rebuild from durable columns.
        assert injector.fired.get("store.checkpoint", 0) >= 1
        assert service.status()["store"]["evictions"] >= 1
        assert service.status()["store"]["revivals"] >= 1
        assert chaotic == baseline


class TestSegmentCorruption:
    def test_corrupt_segment_is_contained(self, tmp_path):
        from repro.data.ingest import load_ulm

        link = "lbl-anl"
        store = LinkStore(tmp_path / "state", segment_rows=64)
        first = PredictionService(store=store)
        records = load_ulm(DATA_DIR / LOGS[0]).to_records()
        for i, record in enumerate(records):
            first.observe(link, record)
            if i in (149, 299):  # carve the history into several segments
                store.seal(link)
        total = len(first.history(link))
        store.seal(link)
        store.close()

        segments = sorted((tmp_path / "state").rglob("seg-*.npz"))
        assert len(segments) >= 2
        injector = FaultInjector(seed=19)
        injector.inject("store.segment", corrupt=8, path=str(segments[0]))

        with faults.injected(injector):
            second = PredictionService(store=LinkStore(
                tmp_path / "state", segment_rows=64))
            history = second.history(link)
            p = second.predict(link, 100 * MB, "C-MED15", now=NOW)

        assert injector.fired.get("store.segment", 0) == 1
        # The bad segment's rows are gone, everything else survives and
        # the service answers from the surviving rows without raising.
        assert 0 < len(history) < total
        assert p.value > 0
        assert p.history_length == len(history)
        quarantined = _quarantined(tmp_path / "state")
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith("seg-")
