"""Cross-protocol battery: JSON-lines and binary frames, one server.

The redesign's contract: the two dialects are *the same API* — same
requests, same responses, byte-for-byte identical payloads (modulo the
measured ``latency_seconds``) — and a broken binary client gets its
errors in-band without taking the connection thread down.
"""

import socket
import struct

import pytest

from repro import wire
from repro.client import ServiceClient
from repro.service import PredictionService, ServiceServer
from repro.units import MB
from tests.conftest import make_record

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)

NOW = 10_000_000.0


@pytest.fixture
def service():
    service = PredictionService(clock=lambda: NOW)
    for j, link in enumerate(("LBL-ANL", "ISI-ANL")):
        service.ingest_records(
            link,
            [make_record(start=1000.0 + 100 * i + j, size=(50 + 7 * i) * MB)
             for i in range(30)],
        )
    return service


@pytest.fixture
def server(service, tmp_path):
    with ServiceServer(service, tmp_path / "repro.sock") as server:
        yield server


BATTERY = [
    {"op": "ping"},
    {"op": "predict", "link": "LBL-ANL", "size": 100 * MB, "now": NOW},
    {"op": "predict", "link": "LBL-ANL", "size": 600 * MB,
     "spec": "SIZE", "now": NOW},
    {"op": "predict", "link": "NOWHERE", "size": 100 * MB},
    {"op": "rank", "candidates": ["LBL-ANL", "ISI-ANL", "NOWHERE"],
     "size": 1000 * MB, "now": NOW},
    {"op": "predict_batch", "now": NOW, "items": [
        {"link": "LBL-ANL", "size": 10 * MB},
        {"link": "ISI-ANL", "size": 500 * MB, "spec": "C-MED"},
        {"link": "NOWHERE", "size": 100 * MB},
    ]},
    {"op": "status"},
    {"op": "predict", "link": "LBL-ANL"},           # bad_request
    {"op": "warp"},                                 # unknown_op
    {"op": "ping", "v": 99},                        # unsupported_version
]


def normalize(obj):
    """Strip the measured timing so payloads compare deterministically."""
    if isinstance(obj, dict):
        return {
            k: ("<t>" if k == "latency_seconds" else normalize(v))
            for k, v in obj.items()
        }
    if isinstance(obj, list):
        return [normalize(v) for v in obj]
    return obj


def test_json_and_binary_answer_identical_payloads(server):
    # Two fresh services would dodge cache effects; instead run the
    # battery twice on the *same* server so both passes see identical
    # (warmed) cache state — the second pass is the comparison.
    with ServiceClient(server.socket_path) as client:
        for req in BATTERY:
            client.request(dict(req))
    with ServiceClient(server.socket_path) as json_client, \
            ServiceClient(server.socket_path, binary=True) as bin_client:
        for req in BATTERY:
            via_json = json_client.request(dict(req))
            via_binary = bin_client.request(dict(req))
            assert normalize(via_json) == normalize(via_binary), req


def test_both_protocols_interleave_on_one_server(server):
    with ServiceClient(server.socket_path) as json_client, \
            ServiceClient(server.socket_path, binary=True) as bin_client:
        for _ in range(3):
            assert json_client.ping() is True
            assert bin_client.ping() is True
        a = json_client.predict("LBL-ANL", 100 * MB, now=NOW)
        b = bin_client.predict("LBL-ANL", 100 * MB, now=NOW)
        assert a["value"] == b["value"]


def test_binary_client_full_helper_surface(server, service):
    with ServiceClient(server.socket_path, binary=True) as client:
        assert client.ping() is True
        p = client.predict("LBL-ANL", 100 * MB, now=NOW)
        assert p["value"] == service.predict("LBL-ANL", 100 * MB, now=NOW).value
        results = client.predict_batch(
            [("LBL-ANL", 10 * MB), ("ISI-ANL", 500 * MB)], now=NOW
        )
        assert len(results) == 2 and all(r["ok"] for r in results)
        ranking = client.rank(["LBL-ANL", "ISI-ANL"], 1000 * MB, now=NOW)
        assert len(ranking) == 2
        assert client.status()["links"]["LBL-ANL"]["records"] == 30


def test_batch_mid_batch_errors_are_per_item(server):
    with ServiceClient(server.socket_path, binary=True) as client:
        response = client.request({"op": "predict_batch", "now": NOW, "items": [
            {"link": "LBL-ANL", "size": 100 * MB},
            {"link": "LBL-ANL"},                          # missing size
            {"link": "LBL-ANL", "size": 1, "spec": "WARP"},  # unknown spec
            {"link": "NOWHERE", "size": 100 * MB},        # unknown link
            {"link": "ISI-ANL", "size": 100 * MB},
        ]})
    assert response["ok"] and response["count"] == 5
    ok0, bad1, bad2, unknown3, ok4 = response["results"]
    assert ok0["ok"] and ok0["value"] is not None
    assert not bad1["ok"] and bad1["error"]["code"] == "bad_request"
    assert "item 1" in bad1["error"]["message"]
    assert not bad2["ok"] and "item 2" in bad2["error"]["message"]
    # An unknown link is an *answer* (no prediction), not an error —
    # exactly what a single predict for it returns.
    assert unknown3["ok"] and unknown3["value"] is None
    assert unknown3["history_length"] == 0
    assert ok4["ok"] and ok4["value"] is not None


# ----------------------------------------------------------------------
# broken binary clients: errors in-band, connection thread survives
# ----------------------------------------------------------------------
def _raw_binary(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(5.0)
    sock.connect(str(server.socket_path))
    return sock, sock.makefile("rb")


def test_corrupt_payload_answers_in_band_and_keeps_the_connection(server):
    sock, rfile = _raw_binary(server)
    writer = wire.FrameWriter()
    try:
        good = bytes(writer.encode_request(
            {"op": "predict", "link": "LBL-ANL", "size": 100 * MB, "now": NOW}
        ))
        # Rewrite the header to truncate the payload mid-string: the
        # frame boundary holds, only the payload is garbage.
        cut = good[: wire.HEADER.size + 5]
        header = wire.HEADER.pack(
            wire.MAGIC, wire.FRAME_VERSION, wire.OP_PREDICT, 5)
        sock.sendall(header + cut[wire.HEADER.size:])
        op, payload = wire.read_frame(rfile)
        assert op == wire.OP_ERROR
        error = wire.decode_response(op, payload)
        assert error["error"]["code"] == "bad_frame"
        # Same connection: a well-formed frame still answers.
        sock.sendall(writer.encode_request({"op": "ping"}))
        op, payload = wire.read_frame(rfile)
        assert wire.decode_response(op, payload) == {
            "ok": True, "v": 1, "pong": True,
        }
    finally:
        sock.close()


def test_bad_magic_answers_in_band_then_closes(server):
    sock, rfile = _raw_binary(server)
    try:
        # First byte 0xA5 routes to the binary loop; the *second* frame
        # starts with garbage the loop cannot resync past.
        writer = wire.FrameWriter()
        sock.sendall(writer.encode_request({"op": "ping"}))
        op, payload = wire.read_frame(rfile)
        assert wire.decode_response(op, payload)["ok"]
        sock.sendall(b"\xa5\x00garbagegarbage")
        op, payload = wire.read_frame(rfile)
        error = wire.decode_response(op, payload)
        assert not error["ok"] and error["error"]["code"] == "bad_frame"
        assert rfile.read(1) == b""  # server closed after answering
    finally:
        sock.close()


def test_truncated_frame_answers_in_band_when_possible(server):
    sock, rfile = _raw_binary(server)
    try:
        frame = bytes(wire.FrameWriter().encode_request({"op": "ping"}))
        sock.sendall(frame[:-2])
        sock.shutdown(socket.SHUT_WR)  # half-close mid-frame
        op, payload = wire.read_frame(rfile)
        error = wire.decode_response(op, payload)
        assert not error["ok"] and error["error"]["code"] == "bad_frame"
        assert rfile.read(1) == b""
    finally:
        sock.close()


def test_oversized_frame_is_refused_in_band(server):
    sock, rfile = _raw_binary(server)
    try:
        header = wire.HEADER.pack(wire.MAGIC, wire.FRAME_VERSION,
                                  wire.OP_PING, wire.MAX_FRAME_BYTES + 1)
        sock.sendall(header)
        op, payload = wire.read_frame(rfile)
        error = wire.decode_response(op, payload)
        assert not error["ok"]
        assert error["error"]["code"] == "oversized_request"
        assert rfile.read(1) == b""
    finally:
        sock.close()


def test_unknown_frame_op_answers_in_band_and_survives(server):
    sock, rfile = _raw_binary(server)
    try:
        sock.sendall(wire.HEADER.pack(wire.MAGIC, wire.FRAME_VERSION, 0x66, 0))
        op, payload = wire.read_frame(rfile)
        error = wire.decode_response(op, payload)
        assert not error["ok"] and error["error"]["code"] == "bad_frame"
        # The payload decoded cleanly as "no such op"; the stream is
        # still framed, so the connection keeps serving.
        sock.sendall(wire.FrameWriter().encode_request({"op": "ping"}))
        op, payload = wire.read_frame(rfile)
        assert wire.decode_response(op, payload)["ok"]
    finally:
        sock.close()


def test_server_errors_on_binary_are_always_normalized(service, tmp_path):
    # legacy_errors only bends the JSON dialect; binary clients are new
    # API and never see bare-string errors.
    with ServiceServer(service, tmp_path / "legacy.sock",
                       legacy_errors=True) as server:
        with ServiceClient(server.socket_path, binary=True) as client:
            response = client.request({"op": "warp"})
        assert response["error"] == {
            "code": "unknown_op", "message": "unknown op 'warp'",
        }
        with ServiceClient(server.socket_path) as client:
            response = client.request({"op": "warp"})
        assert response["error"] == "unknown op 'warp'"


def test_batch_over_socket_matches_per_query_over_socket(server):
    items = [
        (link, size)
        for link in ("LBL-ANL", "ISI-ANL")
        for size in (10 * MB, 100 * MB, 500 * MB, 1000 * MB)
    ]
    with ServiceClient(server.socket_path, binary=True) as client:
        batched = client.predict_batch(items, now=NOW)
        singles = [client.predict(link, size, now=NOW) for link, size in items]
    for b, s in zip(batched, singles):
        assert (b["link"], b["value"], b["version"], b["history_length"]) == (
            s["link"], s["value"], s["version"], s["history_length"]
        )


# ----------------------------------------------------------------------
# end-to-end trace propagation
# ----------------------------------------------------------------------
def test_server_spans_join_the_client_trace_on_both_dialects(server):
    from repro.obs import get_span_exporter, span

    exporter = get_span_exporter()
    for binary in (False, True):
        exporter.clear()
        with ServiceClient(server.socket_path, binary=binary) as client:
            with span(f"client.request[binary={binary}]") as parent:
                assert client.predict("LBL-ANL", 100 * MB, now=NOW)["ok"]
                assert client.predict_batch(
                    [("LBL-ANL", 10 * MB)], now=NOW)
        served = [s for s in exporter.spans() if s.name == "server.predict"]
        batched = [s for s in exporter.spans()
                   if s.name == "server.predict_batch"]
        assert len(served) == 1 and len(batched) == 1
        # The server-side spans carry the *client's* trace id — one
        # end-to-end trace across the socket, either dialect.
        assert served[0].trace_id == parent.trace_id
        assert batched[0].trace_id == parent.trace_id


def test_untraced_requests_open_no_server_span(server):
    # Request spans exist to *join* a caller's trace; a request with no
    # trace context must not pay for (or pollute the exporter with) an
    # orphan span.
    from repro.obs import current_span, get_span_exporter

    assert current_span() is None
    exporter = get_span_exporter()
    exporter.clear()
    with ServiceClient(server.socket_path, binary=True) as client:
        assert client.predict("LBL-ANL", 100 * MB, now=NOW)["ok"]
    assert [s for s in exporter.spans() if s.name.startswith("server.")] == []
