"""Failure injection: the system degrades loudly, not silently."""

import numpy as np
import pytest

from repro.core import ReplicaBroker, evaluate
from repro.core.predictors import classified_predictors, paper_predictors
from repro.gridftp import (
    AuthenticationError,
    Credential,
    FileNotFoundOnServer,
    TransferError,
)
from repro.logs import TransferLog, ULMError
from repro.storage import ReplicaCatalog
from repro.units import MB


class TestAuthFailures:
    def test_revoked_credential_blocks_all_operations(self, testbed):
        client = testbed.clients["ANL"]
        client.credential = Credential(subject=client.credential.subject,
                                       valid=False)
        server = testbed.servers["LBL"]
        for op in (
            lambda: client.get(server, testbed.data_path(10 * MB)),
            lambda: client.put(server, "/home/ftp/x", 10),
            lambda: client.partial_get(server, testbed.data_path(10 * MB), 0, 5),
        ):
            with pytest.raises(AuthenticationError):
                op()
        assert len(server.monitor.log) == 0  # nothing leaked into the log

    def test_grid_map_lockout_is_per_server(self, testbed):
        lbl = testbed.servers["LBL"]
        lbl.grid_map = {"/O=Grid/CN=someone-else"}
        client = testbed.clients["ANL"]
        with pytest.raises(AuthenticationError):
            client.get(lbl, testbed.data_path(10 * MB))
        # Other servers unaffected.
        client.get(testbed.servers["ISI"], testbed.data_path(10 * MB))


class TestMissingData:
    def test_missing_file_fails_without_log_entry(self, testbed):
        server = testbed.servers["LBL"]
        before = len(server.monitor.log)
        with pytest.raises(FileNotFoundOnServer):
            testbed.clients["ANL"].get(server, "/home/ftp/data/13G")
        assert len(server.monitor.log) == before

    def test_partial_read_past_eof_rejected(self, testbed):
        client = testbed.clients["ANL"]
        server = testbed.servers["LBL"]
        path = testbed.data_path(10 * MB)
        with pytest.raises(TransferError):
            client.partial_get(server, path, offset=9 * MB, length=2 * MB)


class TestCorruptLogs:
    def test_truncated_line_reported_with_line_number(self, tmp_path,
                                                      short_campaign_output):
        path = tmp_path / "log.ulm"
        short_campaign_output.log.save(path)
        text = path.read_text().splitlines()
        text[3] = text[3][: len(text[3]) // 2]  # chop a line mid-field
        path.write_text("\n".join(text))
        with pytest.raises(ULMError, match="line 4"):
            TransferLog.load(path)

    def test_tampered_values_rejected(self, tmp_path, short_campaign_output):
        path = tmp_path / "log.ulm"
        short_campaign_output.log.save(path)
        import re

        text = re.sub(r"GFTP\.BW=[\d.e+-]+", "GFTP.BW=-1.0",
                      path.read_text(), count=1)
        path.write_text(text)
        with pytest.raises(ULMError):
            TransferLog.load(path)


class TestDegenerateEvaluation:
    def test_all_abstaining_predictor_yields_empty_trace(self, sample_records):
        """A temporal window far narrower than the sampling gap abstains on
        every prediction; the result reports that, not a crash."""
        from repro.core.predictors import TemporalAverage

        # sample_records are 2 hours apart; a 6-minute window is always empty.
        predictor = TemporalAverage(hours=0.1)
        result = evaluate(sample_records, {"never": predictor})
        assert len(result["never"]) == 0
        assert result["never"].abstentions == len(sample_records) - 15
        assert np.isnan(result["never"].mean_abs_pct_error())

    def test_broker_with_empty_catalog_site_logs(self):
        catalog = ReplicaCatalog()
        catalog.register("f", "LBL", 100)
        broker = ReplicaBroker(catalog, {}, paper_predictors()["AVG"])
        ranked = broker.rank("f", "1.2.3.4", now=0.0)
        assert ranked[0].predicted_bandwidth is None

    def test_classified_battery_on_single_class_log(self, record_factory):
        """A log with only 1GB transfers: other classes' predictions
        abstain (classified mode) rather than fabricate."""
        records = [
            record_factory(start=1000.0 * (i + 1), size=900 * MB)
            for i in range(20)
        ]
        result = evaluate(records, classified_predictors())
        assert len(result["C-AVG"]) == 5  # all 1GB targets predicted
        assert result["C-AVG"].abstentions == 0


class TestEngineMisuse:
    def test_exception_in_event_propagates_and_engine_recovers(self):
        from repro.sim import Engine

        eng = Engine()

        def boom():
            raise RuntimeError("injected")

        eng.schedule(1.0, boom)
        eng.schedule(2.0, lambda: None)
        with pytest.raises(RuntimeError, match="injected"):
            eng.run()
        # The failed event is consumed; the engine continues.
        eng.run()
        assert eng.now == 2.0
