"""Active GridFTP probing."""

import pytest

from repro.units import HOUR, MB, MINUTE
from repro.workload import ActiveProbeConfig, ActiveProber, AUG_2001, build_testbed


class TestConfig:
    def test_defaults(self):
        cfg = ActiveProbeConfig()
        assert cfg.size == 100 * MB
        assert cfg.bytes_per_day == pytest.approx(100 * MB * 48)

    @pytest.mark.parametrize("kw", [
        dict(size=0), dict(streams=0), dict(buffer=0), dict(period=0),
        dict(period_jitter=-1), dict(period=60.0, period_jitter=60.0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            ActiveProbeConfig(**kw)


class TestProber:
    def run_probes(self, hours=6, period=30 * MINUTE):
        bed = build_testbed(seed=13, start_time=AUG_2001)
        prober = ActiveProber(
            bed, "LBL", "ANL",
            config=ActiveProbeConfig(period=period),
        )
        prober.start()
        bed.engine.run(until=AUG_2001 + hours * HOUR)
        prober.stop()
        return prober, bed

    def test_probe_rate(self):
        prober, _ = self.run_probes(hours=6)
        # 6 h / 30 min = 12, +/- jitter and transfer durations.
        assert 10 <= len(prober.outcomes) <= 14

    def test_probes_logged_at_server_like_real_transfers(self):
        prober, bed = self.run_probes(hours=3)
        records = bed.servers["LBL"].monitor.log.records()
        assert len(records) == len(prober.outcomes)
        for record in records:
            assert record.file_size == 100 * MB
            assert record.streams == 8
            assert record.source_ip == bed.sites["ANL"].address

    def test_regular_spacing(self):
        prober, _ = self.run_probes(hours=6)
        starts = [o.start_time for o in prober.outcomes]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        cfg = ActiveProbeConfig()
        for gap in gaps:
            assert cfg.period - cfg.period_jitter <= gap
            assert gap <= cfg.period + cfg.period_jitter + 60.0  # + transfer

    def test_same_site_rejected(self):
        bed = build_testbed(seed=0, start_time=AUG_2001)
        with pytest.raises(ValueError):
            ActiveProber(bed, "ANL", "ANL")

    def test_nonstandard_size_rejected(self):
        bed = build_testbed(seed=0, start_time=AUG_2001)
        with pytest.raises(ValueError):
            ActiveProber(bed, "LBL", "ANL",
                         config=ActiveProbeConfig(size=123_456_789))

    def test_double_start_rejected(self):
        bed = build_testbed(seed=0, start_time=AUG_2001)
        prober = ActiveProber(bed, "LBL", "ANL")
        prober.start()
        with pytest.raises(RuntimeError):
            prober.start()
