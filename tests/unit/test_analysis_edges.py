"""Edge cases in the analysis layer."""

import numpy as np
import pytest

from repro.analysis import (
    compare_probe_vs_gridftp,
    compute_class_errors,
    render_class_errors,
    render_relative_table,
)
from repro.analysis.nws_compare import NwsComparison
from repro.analysis.relative_perf import compute_relative_table
from repro.logs import TransferLog
from repro.logs.stats import BandwidthSummary
from repro.units import HOUR, MB
from repro.workload.campaigns import CampaignOutput
from tests.conftest import make_record


def output_without_probes():
    log = TransferLog()
    for i in range(20):
        log.append(make_record(start=1e6 + i * HOUR, size=500 * MB))
    return CampaignOutput(
        link="LBL-ANL", server_site="LBL", client_site="ANL",
        log=log, outcomes=[], probes=None,
    )


class TestNwsCompareEdges:
    def test_missing_probes_is_an_error(self):
        with pytest.raises(ValueError, match="without NWS probes"):
            compare_probe_vs_gridftp(output_without_probes())

    def test_ratios_with_degenerate_probes(self):
        comparison = NwsComparison(
            link="X",
            gridftp=BandwidthSummary(count=1, minimum=1.0, maximum=1.0,
                                     mean=1.0, median=1.0, stddev=0.0),
            probes=BandwidthSummary.empty(),
        )
        assert comparison.mean_ratio == float("inf")
        assert comparison.variability_ratio == float("inf")


class TestClassErrorsEdges:
    def test_single_class_log_other_classes_nan(self):
        """A log with only 1GB transfers: other classes report NaN, and
        best/worst helpers skip them instead of crashing."""
        log = TransferLog()
        for i in range(30):
            log.append(make_record(start=1e6 + i * HOUR, size=900 * MB))
        errors = compute_class_errors("LBL-ANL", log.records())
        assert all(
            v != v for v in errors.classified["10MB"].values()
        )  # all NaN
        assert np.isnan(errors.best("10MB"))
        assert errors.best("1GB") <= errors.worst("1GB")

    def test_render_handles_nan_rows(self):
        log = TransferLog()
        for i in range(30):
            log.append(make_record(start=1e6 + i * HOUR, size=900 * MB))
        errors = compute_class_errors("LBL-ANL", log.records())
        text = render_class_errors(errors, "10MB")
        assert "-" in text  # NaN rendered as dash


class TestRelativeTableEdges:
    def test_unknown_link_uses_generic_title(self):
        log = TransferLog()
        for i in range(30):
            log.append(make_record(start=1e6 + i * HOUR, size=900 * MB))
        errors = compute_class_errors("MARS-ANL", log.records())
        table = compute_relative_table("MARS-ANL", errors.result)
        text = render_relative_table(table, "1GB")
        assert "Relative performance" in text
        assert "Figure" not in text.splitlines()[0]

    def test_empty_class_reports_zero_compared(self):
        log = TransferLog()
        for i in range(30):
            log.append(make_record(start=1e6 + i * HOUR, size=900 * MB))
        errors = compute_class_errors("LBL-ANL", log.records())
        table = compute_relative_table("LBL-ANL", errors.result)
        assert table.per_class["10MB"].compared == 0
        assert np.isnan(table.per_class["10MB"].best_pct("C-AVG"))
