"""Vectorized ULM ingest and the .npz sidecar cache."""

import numpy as np
import pytest

from repro.data import TransferFrame, cache_path, load_ulm, parse_ulm_text
from repro.data.ingest import CACHE_VERSION, read_cache, write_cache
from repro.logs.ulm import ULMError, format_record, parse_lines

from tests.conftest import make_record


@pytest.fixture
def ulm_text(sample_records):
    return "\n".join(format_record(r) for r in sample_records) + "\n"


@pytest.fixture
def log_path(tmp_path, ulm_text):
    path = tmp_path / "link.ulm"
    path.write_text(ulm_text)
    return path


class TestParse:
    def test_matches_per_record_parser(self, ulm_text):
        frame = parse_ulm_text(ulm_text)
        expected = TransferFrame.from_records(parse_lines(ulm_text.splitlines()))
        assert frame.equals(expected)

    def test_blank_lines_and_comments_skipped(self, ulm_text):
        noisy = "# header\n\n" + ulm_text + "\n  \n# trailer\n"
        assert parse_ulm_text(noisy).equals(parse_ulm_text(ulm_text))

    def test_empty_document(self):
        assert len(parse_ulm_text("")) == 0

    def test_quoted_file_names(self):
        record = make_record(file_name='/data/odd name with "quote" and \\slash')
        text = format_record(record)
        frame = parse_ulm_text(text)
        assert frame.to_records() == [record]

    def test_error_carries_line_number(self, ulm_text):
        bad = ulm_text + "GFTP.START=nonsense\n"
        lineno = len(ulm_text.splitlines()) + 1
        with pytest.raises(ULMError, match=f"line {lineno}"):
            parse_ulm_text(bad)

    def test_missing_key_error_matches_per_record_path(self):
        # parse_record names the first missing key in *its* check order
        # (GFTP.SRC first), not the frame's column order; the vectorized
        # path must raise the same message.
        with pytest.raises(ULMError) as vectorized:
            parse_ulm_text("GFTP.START=1.0 GFTP.END=2.0\n")
        with pytest.raises(ULMError) as per_record:
            list(parse_lines(["GFTP.START=1.0 GFTP.END=2.0"]))
        assert str(vectorized.value) == str(per_record.value)
        assert "GFTP.SRC" in str(vectorized.value)

    def test_invalid_value_raises_like_per_record_path(self, sample_records):
        # A parseable line whose values violate record invariants must
        # raise the canonical per-record error, not pass the bulk cast.
        text = format_record(sample_records[0]).replace(
            f"GFTP.NBYTES={sample_records[0].file_size}", "GFTP.NBYTES=0"
        )
        with pytest.raises(ULMError, match="line 1"):
            parse_ulm_text(text)


class TestCache:
    def test_first_load_writes_sidecar(self, log_path):
        frame = load_ulm(log_path)
        sidecar = cache_path(log_path)
        assert sidecar.exists()
        assert load_ulm(log_path).equals(frame)

    def test_cache_false_never_touches_disk(self, log_path):
        load_ulm(log_path, cache=False)
        assert not cache_path(log_path).exists()

    def test_content_change_invalidates(self, log_path, sample_records):
        load_ulm(log_path)
        extra = make_record(start=9_999_999.0)
        log_path.write_text(
            log_path.read_text() + format_record(extra) + "\n"
        )
        frame = load_ulm(log_path)
        assert len(frame) == len(sample_records) + 1
        assert frame.to_records()[-1] == extra

    def test_corrupt_sidecar_degrades_to_parse(self, log_path):
        frame = load_ulm(log_path)
        cache_path(log_path).write_bytes(b"not an npz file")
        assert load_ulm(log_path).equals(frame)

    def test_version_mismatch_rejected(self, log_path):
        frame = load_ulm(log_path)
        sidecar = cache_path(log_path)
        with np.load(sidecar, allow_pickle=False) as payload:
            digest = str(payload["__digest__"])
            arrays = {k: payload[k] for k in payload.files}
        arrays["__version__"] = np.str_("999")
        with open(sidecar, "wb") as handle:
            np.savez(handle, **arrays)
        assert read_cache(sidecar, digest) is None
        assert load_ulm(log_path).equals(frame)  # reparses and rewrites

    def test_digest_mismatch_rejected(self, log_path):
        load_ulm(log_path)
        assert read_cache(cache_path(log_path), "0" * 64) is None

    def test_write_cache_unwritable_destination(self, log_path, tmp_path):
        # Best-effort contract: an unwritable sidecar location (here a
        # missing parent directory) reports False instead of raising.
        frame = load_ulm(log_path, cache=False)
        ok = write_cache(tmp_path / "missing" / "x.ulm.npz", "0" * 64, frame)
        assert ok is False

    def test_round_trip_preserves_every_column(self, log_path):
        parsed = load_ulm(log_path)          # writes sidecar
        cached = load_ulm(log_path)          # reads it back
        assert cached.equals(parsed)
        assert str(CACHE_VERSION) == "1"


class TestCacheQuarantine:
    def test_corrupt_sidecar_is_quarantined_and_rebuilt(self, log_path):
        from repro.data.ingest import read_cache_status

        baseline = load_ulm(log_path, cache=False)
        sidecar = cache_path(log_path)
        sidecar.write_bytes(b"definitely not an npz file")

        frame = load_ulm(log_path)           # must not raise
        assert frame.equals(baseline)
        quarantined = sidecar.with_name(sidecar.name + ".quarantined")
        assert quarantined.exists()          # corrupt file moved aside
        assert sidecar.exists()              # fresh cache rewritten
        frame2, status = read_cache_status(
            sidecar, __import__("hashlib").sha256(log_path.read_bytes()).hexdigest())
        assert status == "hit" and frame2.equals(baseline)

    def test_truncated_sidecar_is_treated_as_corrupt(self, log_path):
        load_ulm(log_path)                    # write a real sidecar
        sidecar = cache_path(log_path)
        sidecar.write_bytes(sidecar.read_bytes()[: sidecar.stat().st_size // 2])
        frame = load_ulm(log_path)            # must not raise
        assert frame.equals(load_ulm(log_path, cache=False))
        assert sidecar.with_name(sidecar.name + ".quarantined").exists()

    def test_stale_format_falls_back_without_quarantine(self, log_path):
        import numpy as np

        frame = load_ulm(log_path, cache=False)
        sidecar = cache_path(log_path)
        digest = __import__("hashlib").sha256(log_path.read_bytes()).hexdigest()
        with open(sidecar, "wb") as handle:
            np.savez(handle, __version__=np.str_("0"), __digest__=np.str_(digest),
                     **frame.to_arrays())
        assert load_ulm(log_path).equals(frame)
        # A well-formed old-layout sidecar is stale, not corrupt: it is
        # rewritten in place, never quarantined.
        assert not sidecar.with_name(sidecar.name + ".quarantined").exists()

    def test_quarantine_is_counted_and_announced(self, log_path):
        from repro.obs import get_event_bus, get_registry

        before = get_registry().counter("ingest_cache_quarantined", "").value
        cache_path(log_path).write_bytes(b"garbage")
        load_ulm(log_path)
        assert (
            get_registry().counter("ingest_cache_quarantined", "").value
            == before + 1
        )
        events = get_event_bus().events(kind="ingest.cache_quarantine")
        assert any(e.fields.get("path") == str(log_path) for e in events)

    def test_injected_cache_fault_degrades_to_reparse(self, log_path):
        from repro import faults
        from repro.faults import FaultInjector

        baseline = load_ulm(log_path, cache=False)
        load_ulm(log_path)                    # warm, valid sidecar
        injector = FaultInjector().inject("ingest.cache", error=IOError, times=1)
        with faults.injected(injector):
            assert load_ulm(log_path).equals(baseline)   # reparse, no raise
        assert injector.fired["ingest.cache"] == 1
        assert load_ulm(log_path).equals(baseline)       # cache healed
