"""Vectorized ULM ingest and the .npz sidecar cache."""

import numpy as np
import pytest

from repro.data import TransferFrame, cache_path, load_ulm, parse_ulm_text
from repro.data.ingest import CACHE_VERSION, read_cache, write_cache
from repro.logs.ulm import ULMError, format_record, parse_lines

from tests.conftest import make_record


@pytest.fixture
def ulm_text(sample_records):
    return "\n".join(format_record(r) for r in sample_records) + "\n"


@pytest.fixture
def log_path(tmp_path, ulm_text):
    path = tmp_path / "link.ulm"
    path.write_text(ulm_text)
    return path


class TestParse:
    def test_matches_per_record_parser(self, ulm_text):
        frame = parse_ulm_text(ulm_text)
        expected = TransferFrame.from_records(parse_lines(ulm_text.splitlines()))
        assert frame.equals(expected)

    def test_blank_lines_and_comments_skipped(self, ulm_text):
        noisy = "# header\n\n" + ulm_text + "\n  \n# trailer\n"
        assert parse_ulm_text(noisy).equals(parse_ulm_text(ulm_text))

    def test_empty_document(self):
        assert len(parse_ulm_text("")) == 0

    def test_quoted_file_names(self):
        record = make_record(file_name='/data/odd name with "quote" and \\slash')
        text = format_record(record)
        frame = parse_ulm_text(text)
        assert frame.to_records() == [record]

    def test_error_carries_line_number(self, ulm_text):
        bad = ulm_text + "GFTP.START=nonsense\n"
        lineno = len(ulm_text.splitlines()) + 1
        with pytest.raises(ULMError, match=f"line {lineno}"):
            parse_ulm_text(bad)

    def test_missing_key_error_matches_per_record_path(self):
        # parse_record names the first missing key in *its* check order
        # (GFTP.SRC first), not the frame's column order; the vectorized
        # path must raise the same message.
        with pytest.raises(ULMError) as vectorized:
            parse_ulm_text("GFTP.START=1.0 GFTP.END=2.0\n")
        with pytest.raises(ULMError) as per_record:
            list(parse_lines(["GFTP.START=1.0 GFTP.END=2.0"]))
        assert str(vectorized.value) == str(per_record.value)
        assert "GFTP.SRC" in str(vectorized.value)

    def test_invalid_value_raises_like_per_record_path(self, sample_records):
        # A parseable line whose values violate record invariants must
        # raise the canonical per-record error, not pass the bulk cast.
        text = format_record(sample_records[0]).replace(
            f"GFTP.NBYTES={sample_records[0].file_size}", "GFTP.NBYTES=0"
        )
        with pytest.raises(ULMError, match="line 1"):
            parse_ulm_text(text)


class TestCache:
    def test_first_load_writes_sidecar(self, log_path):
        frame = load_ulm(log_path)
        sidecar = cache_path(log_path)
        assert sidecar.exists()
        assert load_ulm(log_path).equals(frame)

    def test_cache_false_never_touches_disk(self, log_path):
        load_ulm(log_path, cache=False)
        assert not cache_path(log_path).exists()

    def test_content_change_invalidates(self, log_path, sample_records):
        load_ulm(log_path)
        extra = make_record(start=9_999_999.0)
        log_path.write_text(
            log_path.read_text() + format_record(extra) + "\n"
        )
        frame = load_ulm(log_path)
        assert len(frame) == len(sample_records) + 1
        assert frame.to_records()[-1] == extra

    def test_corrupt_sidecar_degrades_to_parse(self, log_path):
        frame = load_ulm(log_path)
        cache_path(log_path).write_bytes(b"not an npz file")
        assert load_ulm(log_path).equals(frame)

    def test_version_mismatch_rejected(self, log_path):
        frame = load_ulm(log_path)
        sidecar = cache_path(log_path)
        with np.load(sidecar, allow_pickle=False) as payload:
            digest = str(payload["__digest__"])
            arrays = {k: payload[k] for k in payload.files}
        arrays["__version__"] = np.str_("999")
        with open(sidecar, "wb") as handle:
            np.savez(handle, **arrays)
        assert read_cache(sidecar, digest) is None
        assert load_ulm(log_path).equals(frame)  # reparses and rewrites

    def test_digest_mismatch_rejected(self, log_path):
        load_ulm(log_path)
        assert read_cache(cache_path(log_path), "0" * 64) is None

    def test_write_cache_unwritable_destination(self, log_path, tmp_path):
        # Best-effort contract: an unwritable sidecar location (here a
        # missing parent directory) reports False instead of raising.
        frame = load_ulm(log_path, cache=False)
        ok = write_cache(tmp_path / "missing" / "x.ulm.npz", "0" * 64, frame)
        assert ok is False

    def test_round_trip_preserves_every_column(self, log_path):
        parsed = load_ulm(log_path)          # writes sidecar
        cached = load_ulm(log_path)          # reads it back
        assert cached.equals(parsed)
        assert str(CACHE_VERSION) == "1"
