"""Background-load processes."""

import numpy as np
import pytest

from repro.net.load import (
    Ar1Load,
    BurstLoad,
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    standard_link_load,
)
from repro.units import DAY, HOUR


class TestDiurnal:
    def test_peaks_at_peak_hour(self):
        load = DiurnalLoad(mean=0.5, amplitude=0.2, peak_hour=14.0)
        assert load.utilization(14 * HOUR) == pytest.approx(0.7)
        assert load.utilization(2 * HOUR) == pytest.approx(0.3)  # trough 12h later

    def test_period_is_24h(self):
        load = DiurnalLoad()
        assert load.utilization(5 * HOUR) == pytest.approx(load.utilization(5 * HOUR + DAY))

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            DiurnalLoad(amplitude=-0.1)


class TestAr1:
    def make(self, **kw):
        rng = np.random.default_rng(0)
        return Ar1Load(rng, t0=0.0, **kw)

    def test_queries_are_consistent(self):
        load = self.make()
        first = load.utilization(500.0)
        load.utilization(10_000.0)  # extend far forward
        assert load.utilization(500.0) == first

    def test_interpolation_between_grid_points(self):
        load = self.make(dt=60.0)
        a, b = load.utilization(0.0), load.utilization(60.0)
        mid = load.utilization(30.0)
        assert min(a, b) <= mid <= max(a, b)

    def test_before_t0_is_zero(self):
        assert self.make().utilization(-10.0) == 0.0

    def test_parameters_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Ar1Load(rng, t0=0.0, phi=1.0)
        with pytest.raises(ValueError):
            Ar1Load(rng, t0=0.0, sigma=-1)
        with pytest.raises(ValueError):
            Ar1Load(rng, t0=0.0, dt=0)

    def test_stationary_scale(self):
        """Long-run std approximates sigma/sqrt(1-phi^2)."""
        load = self.make(phi=0.9, sigma=0.05, dt=1.0)
        values = np.array([load.utilization(float(t)) for t in range(20_000)])
        expected = 0.05 / np.sqrt(1 - 0.81)
        assert values.std() == pytest.approx(expected, rel=0.2)


class TestBurst:
    def make(self, **kw):
        return BurstLoad(np.random.default_rng(1), t0=0.0, **kw)

    def test_mostly_zero_with_rare_bursts(self):
        load = self.make(mean_interarrival=4 * HOUR)
        values = [load.utilization(float(t)) for t in range(0, int(14 * DAY), 300)]
        zero_fraction = sum(1 for v in values if v == 0.0) / len(values)
        assert zero_fraction > 0.5
        assert max(values) > 0.0

    def test_burst_magnitude_bounds_single(self):
        load = self.make(min_magnitude=0.2, max_magnitude=0.3, mean_interarrival=DAY * 10)
        values = [load.utilization(float(t)) for t in range(0, int(30 * DAY), 60)]
        positive = [v for v in values if v > 0]
        assert positive, "expected at least one burst in 30 days"
        # Non-overlapping bursts stay within [min, max].
        assert all(0.2 <= v <= 0.6001 for v in positive)

    def test_consistency_across_query_order(self):
        load = self.make()
        far = load.utilization(5 * DAY)
        near = load.utilization(1 * DAY)
        assert load.utilization(5 * DAY) == far
        assert load.utilization(1 * DAY) == near

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            self.make(mean_interarrival=0)
        with pytest.raises(ValueError):
            self.make(min_magnitude=0.5, max_magnitude=0.4)


class TestComposite:
    def test_clamps_to_bounds(self):
        load = CompositeLoad(ConstantLoad(2.0), floor=0.02, ceiling=0.97)
        assert load.utilization(0.0) == 0.97
        low = CompositeLoad(ConstantLoad(-1.0), floor=0.02, ceiling=0.97)
        assert low.utilization(0.0) == 0.02

    def test_sums_components(self):
        load = CompositeLoad(ConstantLoad(0.3), ConstantLoad(0.2))
        assert load.utilization(0.0) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoad()

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoad(ConstantLoad(0.1), floor=0.9, ceiling=0.5)


class TestStandardLoad:
    def test_stays_in_unit_interval(self):
        load = standard_link_load(np.random.default_rng(2), t0=0.0)
        values = [load.utilization(float(t)) for t in range(0, int(3 * DAY), 120)]
        assert all(0.0 <= v <= 0.97 for v in values)

    def test_exhibits_diurnal_structure(self):
        load = standard_link_load(np.random.default_rng(3), t0=0.0, mean=0.5)
        # Average at peak hours vs trough hours over two weeks.
        peak, trough = [], []
        for day in range(14):
            peak.append(load.utilization(day * DAY + 14 * HOUR))
            trough.append(load.utilization(day * DAY + 2 * HOUR))
        assert np.mean(peak) > np.mean(trough)
