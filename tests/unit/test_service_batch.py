"""predict_batch: parity with predict, grouping, caching, deadlines."""

import pytest

from repro.resilience import Deadline, DeadlineExceeded
from repro.service import PredictionService
from repro.units import MB
from tests.conftest import make_record

SPECS = ["C-AVG15", "C-MED", "C-LV", "AVG", "LV", "SIZE"]
SIZES = [10 * MB, 100 * MB, 500 * MB, 1000 * MB]
NOW = 10_000_000.0


def build_service(links=("LBL-ANL", "ISI-ANL"), n=30):
    service = PredictionService(clock=lambda: NOW)
    for j, link in enumerate(links):
        service.ingest_records(
            link,
            [make_record(start=1000.0 + 100 * i + j, size=(50 + 7 * i) * MB)
             for i in range(n)],
        )
    return service


def items_battery():
    return [
        ("LBL-ANL" if i % 2 == 0 else "ISI-ANL", size, spec)
        for i, (spec, size) in enumerate(
            (spec, size) for spec in SPECS for size in SIZES
        )
    ]


def test_batch_matches_per_query_predict_exactly():
    batch_service = build_service()
    single_service = build_service()
    items = items_battery()
    batched = batch_service.predict_batch(items, now=NOW)
    for (link, size, spec), b in zip(items, batched):
        s = single_service.predict(link, size, spec=spec, now=NOW)
        assert b.link == s.link and b.spec == s.spec
        assert b.value == s.value, (link, size, spec)
        assert b.version == s.version
        assert b.history_length == s.history_length
        assert b.degraded == s.degraded
        assert b.cached == s.cached  # identical battery order, fresh caches


@pytest.mark.exhaustive
def test_batch_matches_per_query_on_the_shipped_logs():
    from pathlib import Path

    data = Path(__file__).resolve().parents[2] / "data"
    batch_service = PredictionService(clock=lambda: NOW)
    single_service = PredictionService(clock=lambda: NOW)
    for name in ("aug-LBL-ANL.ulm", "aug-ISI-ANL.ulm"):
        batch_service.ingest_ulm(data / name)
        single_service.ingest_ulm(data / name)
    items = [
        (link, size, spec)
        for link in ("aug-LBL-ANL", "aug-ISI-ANL")
        for spec in SPECS
        for size in SIZES
    ]
    for b, (link, size, spec) in zip(
        batch_service.predict_batch(items, now=NOW), items
    ):
        s = single_service.predict(link, size, spec=spec, now=NOW)
        assert (b.value, b.version, b.history_length, b.degraded) == (
            s.value, s.version, s.history_length, s.degraded
        ), (link, size, spec)


def test_second_batch_is_fully_cached():
    service = build_service()
    items = items_battery()
    first = service.predict_batch(items, now=NOW)
    # Only intra-sweep duplicate keys (size-blind specs at several
    # sizes) count as hits the first time through.
    assert not first[0].cached
    second = service.predict_batch(items, now=NOW)
    assert all(p.cached for p in second)
    assert [p.value for p in second] == [p.value for p in first]


def test_batch_and_single_share_one_cache():
    service = build_service()
    single = service.predict("LBL-ANL", 100 * MB, spec="C-AVG15", now=NOW)
    (viabatch,) = service.predict_batch(
        [("LBL-ANL", 100 * MB, "C-AVG15")], now=NOW
    )
    assert viabatch.cached and viabatch.value == single.value


def test_unknown_link_mid_batch_answers_none_without_failing():
    service = build_service(links=("LBL-ANL",))
    results = service.predict_batch(
        [("LBL-ANL", 100 * MB), ("NOWHERE", 100 * MB), ("LBL-ANL", 500 * MB)],
        now=NOW,
    )
    assert results[0].value is not None
    assert results[1].value is None
    assert results[1].version == 0 and results[1].history_length == 0
    assert results[2].value is not None


def test_dict_items_and_defaults():
    service = build_service(links=("LBL-ANL",))
    a, b = service.predict_batch(
        [{"link": "LBL-ANL", "size": 100 * MB},
         {"link": "LBL-ANL", "size": 100 * MB, "spec": "LV"}],
        now=NOW,
    )
    assert a.spec == service.default_spec
    assert b.spec == "LV"


def test_empty_batch_is_fine():
    assert build_service().predict_batch([]) == []


def test_expired_deadline_raises_between_groups():
    service = build_service()
    clock = iter([0.0, 100.0, 200.0, 300.0]).__next__
    with pytest.raises(DeadlineExceeded):
        # First group's check still passes (t=0); the second group's
        # check (t=100) finds the 10-second budget spent.
        service.predict_batch(
            [("LBL-ANL", 100 * MB), ("ISI-ANL", 100 * MB)], now=NOW,
            deadline=Deadline(10.0, clock=clock),
        )


def test_batch_metrics_and_trace():
    service = build_service()
    items = items_battery()
    service.predict_batch(items, now=NOW)
    snap = service.metrics.snapshot()
    assert snap["service_batch_requests"]["value"] == 1
    assert snap["service_batch_predictions"]["value"] == len(items)
    assert snap["service_batch_size"]["count"] == 1
    assert snap["service_batch_size"]["mean"] == float(len(items))
    # One predict counter bump per item, exactly like the single path.
    assert snap["service_predict_requests"]["value"] == len(items)
    events = service.trace.events(kind="predict_batch")
    assert events and events[-1].as_dict()["items"] == len(items)


def test_batch_anchors_the_whole_sweep_at_one_clock_read():
    ticks = iter(range(100))

    def clock():
        return NOW + next(ticks)

    service = PredictionService(clock=clock)
    service.ingest_records(
        "LBL-ANL", [make_record(start=1000.0 + 100 * i) for i in range(5)]
    )
    # Temporal-window specs fold the anchor time into the cache context;
    # one shared clock read means both items land on the same anchor.
    a, b = service.predict_batch(
        [("LBL-ANL", 100 * MB, "AVG1hr"), ("LBL-ANL", 100 * MB, "AVG1hr")]
    )
    assert b.cached  # same context -> the second item hits the first's entry
    assert a.value == b.value
