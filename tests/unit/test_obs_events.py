"""The event bus: bounded ring, subscribers, JSONL export."""

import itertools
import json

import pytest

from repro.obs.events import EventBus, TraceEvent, TraceLog, get_event_bus


def _bus(capacity=8):
    clock = itertools.count(1)
    return EventBus(capacity=capacity, clock=lambda: float(next(clock)))


def test_emit_returns_the_event_and_retains_it():
    bus = _bus()
    event = bus.emit("transfer", link="a-b", size=1024)
    assert isinstance(event, TraceEvent)
    assert event.kind == "transfer" and event.fields["size"] == 1024
    assert bus.events() == [event]
    assert len(bus) == 1
    assert event.as_dict() == {"time": 1.0, "kind": "transfer", "link": "a-b", "size": 1024}


def test_ring_evicts_oldest_and_counts_drops():
    bus = _bus(capacity=3)
    for i in range(5):
        bus.emit("e", i=i)
    assert [e.fields["i"] for e in bus.events()] == [2, 3, 4]
    assert bus.dropped == 2
    assert len(bus) == 3


def test_events_filter_by_kind_and_limit_keeps_newest():
    bus = _bus()
    bus.emit("a", i=0)
    bus.emit("b", i=1)
    bus.emit("a", i=2)
    assert [e.fields["i"] for e in bus.events(kind="a")] == [0, 2]
    assert [e.fields["i"] for e in bus.events(limit=2)] == [1, 2]
    assert bus.events(limit=0) == []


def test_subscribers_see_every_emit_and_can_leave():
    bus = _bus()
    seen = []
    bus.subscribe(seen.append)
    first = bus.emit("a")
    bus.unsubscribe(seen.append)
    bus.emit("b")
    assert seen == [first]


def test_raising_subscriber_never_breaks_the_emitter():
    bus = _bus()

    def bad(event):
        raise RuntimeError("subscriber bug")

    good_seen = []
    bus.subscribe(bad)
    bus.subscribe(good_seen.append)
    bus.emit("a")
    bus.emit("b")
    assert bus.subscriber_errors == 2
    assert [e.kind for e in good_seen] == ["a", "b"]
    assert len(bus) == 2  # the ring kept both events regardless


def test_export_jsonl_round_trips(tmp_path):
    bus = _bus()
    bus.emit("transfer", link="a-b", size=1024)
    bus.emit("cache", hit=True)
    out = tmp_path / "events.jsonl"
    assert bus.export_jsonl(out) == 2
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines == [
        {"time": 1.0, "kind": "transfer", "link": "a-b", "size": 1024},
        {"time": 2.0, "kind": "cache", "hit": True},
    ]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventBus(capacity=0)


def test_tracelog_alias_and_default_bus():
    assert TraceLog is EventBus
    assert get_event_bus() is get_event_bus()
