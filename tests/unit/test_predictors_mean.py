"""Mean-based predictors (AVG family)."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import TemporalAverage, TotalAverage, WindowedAverage
from repro.core.predictors.base import PredictorError
from repro.units import HOUR


def hist(values, spacing=HOUR, sizes=None):
    n = len(values)
    return History(
        times=np.arange(n) * spacing,
        values=np.asarray(values, dtype=float),
        sizes=np.asarray(sizes if sizes is not None else [100] * n),
    )


class TestTotalAverage:
    def test_mean_of_everything(self):
        assert TotalAverage().predict(hist([1, 2, 3, 4])) == pytest.approx(2.5)

    def test_empty_abstains(self):
        assert TotalAverage().predict(History.empty(), now=0.0) is None

    def test_name(self):
        assert TotalAverage().name == "AVG"


class TestWindowedAverage:
    def test_window_of_5(self):
        p = WindowedAverage(5)
        assert p.predict(hist([100, 100, 1, 2, 3, 4, 5])) == pytest.approx(3.0)
        assert p.name == "AVG5"

    def test_short_history_uses_what_exists(self):
        assert WindowedAverage(25).predict(hist([2, 4])) == pytest.approx(3.0)

    def test_invalid_window(self):
        with pytest.raises(PredictorError):
            WindowedAverage(0)


class TestTemporalAverage:
    def test_window_anchored_at_now(self):
        h = hist([10, 20, 30], spacing=HOUR)  # times 0h, 1h, 2h
        p = TemporalAverage(hours=1.5)
        # now = 2.2h -> window [0.7h, 2.2h] -> values at 1h and 2h.
        assert p.predict(h, now=2.2 * HOUR) == pytest.approx(25.0)

    def test_now_defaults_to_last_observation(self):
        h = hist([10, 20, 30], spacing=HOUR)
        # Anchor 2h: window [2h - 1h, 2h] includes only the last value
        # (1h-old observation is exactly at the boundary -> included).
        assert TemporalAverage(hours=1).predict(h) == pytest.approx(25.0)

    def test_empty_window_abstains(self):
        h = hist([10, 20], spacing=HOUR)
        assert TemporalAverage(hours=0.5).predict(h, now=10 * HOUR) is None

    def test_name(self):
        assert TemporalAverage(hours=15).name == "AVG15hr"
        assert TemporalAverage(hours=2.5).name == "AVG2.5hr"

    def test_invalid_hours(self):
        with pytest.raises(PredictorError):
            TemporalAverage(hours=0)
