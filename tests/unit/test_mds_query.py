"""LDAP filter parsing and matching."""

import pytest

from repro.mds import Entry, FilterError, parse_filter


@pytest.fixture
def entry():
    return Entry("cn=1.2.3.4,o=grid", {
        "objectclass": ["GridFTPPerf"],
        "hostname": ["dpsslx04.lbl.gov"],
        "avgrdbandwidth": ["6062K"],
        "numtransfers": ["42"],
    })


class TestEquality:
    def test_simple_match(self, entry):
        assert parse_filter("(objectclass=GridFTPPerf)").matches(entry)
        assert not parse_filter("(objectclass=Other)").matches(entry)

    def test_case_insensitive_value(self, entry):
        assert parse_filter("(objectclass=gridftpperf)").matches(entry)

    def test_missing_attribute_no_match(self, entry):
        assert not parse_filter("(ghost=1)").matches(entry)

    def test_presence(self, entry):
        assert parse_filter("(hostname=*)").matches(entry)
        assert not parse_filter("(ghost=*)").matches(entry)

    def test_substring(self, entry):
        assert parse_filter("(hostname=*.lbl.gov)").matches(entry)
        assert parse_filter("(hostname=dpss*)").matches(entry)
        assert not parse_filter("(hostname=*.anl.gov)").matches(entry)


class TestComparison:
    def test_numeric_ge_le(self, entry):
        assert parse_filter("(numtransfers>=42)").matches(entry)
        assert parse_filter("(numtransfers<=42)").matches(entry)
        assert not parse_filter("(numtransfers>=43)").matches(entry)

    def test_bandwidth_suffix_numeric(self, entry):
        assert parse_filter("(avgrdbandwidth>=5000)").matches(entry)
        assert parse_filter("(avgrdbandwidth<=7000K)").matches(entry)
        assert not parse_filter("(avgrdbandwidth>=10000)").matches(entry)

    def test_lexicographic_fallback(self, entry):
        assert parse_filter("(hostname>=d)").matches(entry)
        assert not parse_filter("(hostname<=a)").matches(entry)


class TestBoolean:
    def test_and(self, entry):
        assert parse_filter(
            "(&(objectclass=GridFTPPerf)(avgrdbandwidth>=5000))"
        ).matches(entry)
        assert not parse_filter(
            "(&(objectclass=GridFTPPerf)(avgrdbandwidth>=9000))"
        ).matches(entry)

    def test_or(self, entry):
        assert parse_filter(
            "(|(hostname=*.anl.gov)(hostname=*.lbl.gov))"
        ).matches(entry)

    def test_not(self, entry):
        assert parse_filter("(!(numtransfers=0))").matches(entry)
        assert not parse_filter("(!(objectclass=GridFTPPerf))").matches(entry)

    def test_nested(self, entry):
        f = parse_filter(
            "(&(objectclass=GridFTPPerf)(|(numtransfers>=100)(avgrdbandwidth>=6000)))"
        )
        assert f.matches(entry)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "(", "()", "(a)", "(=v)", "(a=)", "(&)", "(a=b)junk",
        "(a=b", "(!(a=b)(c=d))junk",
    ])
    def test_malformed(self, bad):
        with pytest.raises(FilterError):
            parse_filter(bad)
