"""Testbed construction."""

import pytest

from repro.units import GB, MB
from repro.workload import AUG_2001, DEC_2001, PAPER_SIZES, build_testbed


class TestSizes:
    def test_thirteen_paper_sizes(self):
        assert len(PAPER_SIZES) == 13
        assert PAPER_SIZES[0] == 1 * MB
        assert PAPER_SIZES[-1] == 1 * GB

    def test_sizes_sorted_unique(self):
        assert list(PAPER_SIZES) == sorted(set(PAPER_SIZES))

    def test_class_proportions_match_figure7(self, classification):
        """Uniform draws from the 13 sizes give Figure 7's class mix."""
        from collections import Counter

        counts = Counter(classification.classify(s) for s in PAPER_SIZES)
        assert counts["10MB"] == 5   # 1,2,5,10,25 MB
        assert counts["100MB"] == 3  # 50,100,150 MB
        assert counts["500MB"] == 3  # 250,400,500 MB
        assert counts["1GB"] == 2    # 750 MB, 1 GB


class TestBuild:
    def test_sites_and_links(self, testbed):
        assert set(testbed.sites) == {"ANL", "ISI", "LBL"}
        assert testbed.topology.link_between("ANL", "LBL") is not None
        assert testbed.topology.link_between("ANL", "ISI") is not None
        assert testbed.topology.link_between("ISI", "LBL") is None

    def test_paths_resolve(self, testbed):
        path = testbed.topology.path("LBL", "ANL")
        assert path.rtt > 0
        assert path.bottleneck_capacity == pytest.approx(155e6 / 8)

    def test_servers_have_standard_files(self, testbed):
        for name, server in testbed.servers.items():
            for size in PAPER_SIZES:
                assert server.volumes[0].has(testbed.data_path(size)), (name, size)

    def test_engine_starts_at_campaign_epoch(self):
        bed = build_testbed(seed=0, start_time=DEC_2001)
        assert bed.engine.now == DEC_2001

    def test_same_seed_same_structure_different_seed_different_loads(self):
        a = build_testbed(seed=0, start_time=AUG_2001)
        b = build_testbed(seed=0, start_time=AUG_2001)
        c = build_testbed(seed=9, start_time=AUG_2001)
        t = AUG_2001 + 3600.0
        link = lambda bed: bed.topology.link_between("ANL", "LBL")
        assert link(a).available(t) == link(b).available(t)
        assert link(a).available(t) != link(c).available(t)

    def test_months_differ_for_same_seed(self):
        aug = build_testbed(seed=0, start_time=AUG_2001)
        dec = build_testbed(seed=0, start_time=DEC_2001)
        aug_u = aug.topology.link_between("ANL", "LBL").utilization(AUG_2001 + 7200)
        dec_u = dec.topology.link_between("ANL", "LBL").utilization(DEC_2001 + 7200)
        assert aug_u != dec_u

    def test_data_path_naming(self, testbed):
        assert testbed.data_path(10 * MB) == "/home/ftp/data/10M"
        assert testbed.data_path(1 * GB) == "/home/ftp/data/1G"

    def test_site_addresses_match_paper(self, testbed):
        # The ANL client host in Figure 3's log.
        assert testbed.sites["ANL"].address == "140.221.65.69"
        assert testbed.sites["LBL"].hostname == "dpsslx04.lbl.gov"
