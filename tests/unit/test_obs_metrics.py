"""The obs metrics layer: labeled instruments, registry, exposition."""

import re
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_decrease():
    c = Counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("links")
    g.set(4)
    g.inc(-1)
    assert g.value == 3.0


def test_histogram_summary_and_percentiles():
    h = Histogram("latency", window=100)
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.count == 100
    assert h.total == pytest.approx(5050.0)
    assert h.mean() == pytest.approx(50.5)
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 100.0
    summary = h.summary()
    assert summary["min"] == 1.0 and summary["max"] == 100.0
    assert summary["p99"] >= summary["p90"] >= summary["p50"]


def test_histogram_window_bounds_the_reservoir():
    h = Histogram("latency", window=10)
    for v in range(1000):
        h.observe(float(v))
    # Lifetime aggregates see everything; percentiles only the newest 10.
    assert h.count == 1000
    assert h.percentile(0) == 990.0


def test_histogram_lifetime_vs_window_extremes():
    """min/max are all-time; window_min/window_max cover the reservoir.

    Fill past the window so the early extreme values age out of the
    reservoir: the percentile scope must report the surviving extremes,
    the lifetime scope the historical ones.
    """
    h = Histogram("latency", window=4)
    for v in (100.0, 0.001, 5.0, 6.0, 7.0, 8.0):
        h.observe(v)
    summary = h.summary()
    assert summary["min"] == 0.001            # all-time, evicted from window
    assert summary["max"] == 100.0            # all-time, evicted from window
    assert summary["window_min"] == 5.0       # what p0 actually covers
    assert summary["window_max"] == 8.0       # what p100 actually covers
    assert h.percentile(0) == summary["window_min"]
    assert h.percentile(100) == summary["window_max"]


def test_histogram_empty_percentile_is_nan():
    h = Histogram("latency")
    assert h.percentile(50) != h.percentile(50)  # NaN
    with pytest.raises(ValueError):
        h.percentile(101)


# ----------------------------------------------------------------------
# labels
# ----------------------------------------------------------------------
def test_labels_return_the_same_child_for_the_same_values():
    c = Counter("requests")
    c.labels(op="predict").inc(2)
    c.labels(op="predict").inc()
    c.labels(op="rank").inc()
    assert c.labels(op="predict").value == 3.0
    assert c.labels(op="rank").value == 1.0
    assert c.value == 0.0  # the parent is its own (unlabeled) series


def test_labels_order_does_not_matter():
    g = Gauge("depth")
    g.labels(a="1", b="2").set(5)
    assert g.labels(b="2", a="1").value == 5.0


def test_labels_on_a_child_raise():
    c = Counter("requests")
    child = c.labels(op="predict")
    with pytest.raises(ValueError, match="already-labeled"):
        child.labels(op="again")


def test_empty_labels_return_the_parent():
    c = Counter("requests")
    assert c.labels() is c


def test_histogram_children_inherit_the_window():
    h = Histogram("lat", window=7)
    assert h.labels(engine="fast").window == 7


def test_children_listing():
    c = Counter("requests")
    c.labels(op="predict").inc()
    c.labels(op="rank").inc()
    assert [labels for labels, _ in c.children()] == [
        {"op": "predict"}, {"op": "rank"},
    ]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_shares_instruments_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.names() == ["a"]


def test_registry_rejects_type_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="registered as Counter"):
        reg.gauge("x")


def test_registry_snapshot_flat_and_labeled():
    reg = MetricsRegistry()
    reg.counter("requests").inc(3)
    reg.gauge("links").set(2)
    reg.histogram("lat").observe(0.5)
    reg.counter("by_spec").labels(spec="C-AVG15").inc(4)
    snap = reg.snapshot()
    # Unlabeled series keep the flat historical shape.
    assert snap["requests"] == {"type": "counter", "value": 3.0}
    assert snap["links"]["value"] == 2.0
    assert snap["lat"]["count"] == 1
    assert snap["lat"]["window_min"] == 0.5
    # Labeled families carry a series list.
    assert snap["by_spec"]["series"] == [
        {"labels": {"spec": "C-AVG15"}, "type": "counter", "value": 4.0},
    ]


def test_registry_merge_shares_instruments_live():
    a, b = MetricsRegistry(), MetricsRegistry()
    counter = a.counter("hits")
    counter.inc()
    merged = MetricsRegistry().merge(a).merge(b)
    counter.inc()  # after the merge: the view must be live, not copied
    assert merged.snapshot()["hits"]["value"] == 2.0


def test_default_registry_is_process_wide_and_swappable():
    assert get_registry() is get_registry()
    replacement = MetricsRegistry()
    previous = set_registry(replacement)
    try:
        assert get_registry() is replacement
    finally:
        set_registry(previous)
    assert get_registry() is previous


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$")
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                       # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)$"               # value
)


def _assert_valid_exposition(text: str) -> None:
    """Line-level Prometheus text-format validation."""
    assert text.endswith("\n")
    seen_type: set = set()
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
        elif line.startswith("# TYPE"):
            name = line.split()[2]
            assert name not in seen_type, f"duplicate TYPE for {name}"
            seen_type.add(name)
            assert _TYPE_RE.match(line), line
        else:
            assert _SAMPLE_RE.match(line), line


def test_render_is_valid_prometheus_exposition():
    reg = MetricsRegistry()
    reg.counter("requests", "requests served").inc(3)
    reg.counter("requests").labels(op="predict", spec="C-AVG15").inc(2)
    reg.gauge("links", "links with state").set(2)
    h = reg.histogram("lat", "predict latency")
    h.observe(0.5)
    h.labels(engine="fast").observe(0.125)
    text = reg.render()
    _assert_valid_exposition(text)
    assert "# HELP requests requests served" in text
    assert "# TYPE requests counter" in text
    assert "# TYPE lat summary" in text
    assert 'requests{op="predict",spec="C-AVG15"} 2' in text
    assert 'lat{engine="fast",quantile="0.5"} 0.125' in text
    assert "lat_count 1" in text
    assert 'lat_count{engine="fast"} 1' in text


def test_render_escapes_label_values_and_help():
    reg = MetricsRegistry()
    reg.counter("odd", 'help with \\ and\nnewline').labels(
        path='/tmp/"quoted"\\dir'
    ).inc()
    text = reg.render()
    _assert_valid_exposition(text)
    assert r"# HELP odd help with \\ and\nnewline" in text
    assert r'odd{path="/tmp/\"quoted\"\\dir"} 1' in text


def test_render_skips_untouched_parents_of_labeled_families():
    reg = MetricsRegistry()
    reg.counter("only_labeled").labels(k="v").inc()
    text = reg.render()
    _assert_valid_exposition(text)
    assert 'only_labeled{k="v"} 1' in text
    assert "\nonly_labeled 0" not in text


# ----------------------------------------------------------------------
# concurrency: exact totals, no lost updates, stable snapshots
# ----------------------------------------------------------------------
def test_metrics_under_concurrency_lose_nothing():
    reg = MetricsRegistry()
    threads, per_thread = 8, 2000
    stop = threading.Event()
    snapshot_errors = []

    def hammer(k: int) -> None:
        # Exercise the registry get-or-create race, the parent series,
        # a shared labeled child, and the histogram reservoir at once.
        counter = reg.counter("hammered")
        child = counter.labels(thread="shared")
        hist = reg.histogram("hammered_lat", window=64)
        for i in range(per_thread):
            counter.inc()
            child.inc(2)
            hist.observe(float(i))

    def scrape() -> None:
        # Reading while 8 writers hammer must never raise and never show
        # a torn value (counters only grow).
        last = 0.0
        while not stop.is_set():
            try:
                snap = reg.snapshot()
                reg.render()
                value = snap.get("hammered", {}).get("value", 0.0)
                if value < last:
                    snapshot_errors.append((last, value))
                last = value
            except Exception as exc:  # pragma: no cover - the assertion
                snapshot_errors.append(exc)
                return

    reader = threading.Thread(target=scrape)
    workers = [threading.Thread(target=hammer, args=(k,)) for k in range(threads)]
    reader.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    stop.set()
    reader.join()

    assert snapshot_errors == []
    assert reg.counter("hammered").value == threads * per_thread
    assert reg.counter("hammered").labels(thread="shared").value == 2 * threads * per_thread
    hist = reg.histogram("hammered_lat")
    assert hist.count == threads * per_thread
    assert hist.total == pytest.approx(threads * sum(range(per_thread)))
    # The reservoir stayed bounded and internally consistent.
    summary = hist.summary()
    assert summary["window_min"] <= summary["p50"] <= summary["window_max"]
