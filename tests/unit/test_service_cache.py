"""PredictionService caching: version-keyed invalidation and contexts."""

import pytest

from repro.service import PredictionService
from repro.service.service import PredictionCache
from repro.units import MB
from tests.conftest import make_record


def build_service(**kwargs):
    service = PredictionService(clock=lambda: 10_000_000.0, **kwargs)
    for i in range(20):
        service.observe("LBL-ANL", make_record(start=1000.0 + 100 * i))
    return service


# ----------------------------------------------------------------------
# the LRU itself
# ----------------------------------------------------------------------
def test_lru_evicts_oldest():
    cache = PredictionCache(capacity=2)
    cache.put(("a",), 1.0)
    cache.put(("b",), 2.0)
    cache.get(("a",))              # touch: "b" is now the LRU entry
    cache.put(("c",), 3.0)
    assert cache.get(("a",)) == 1.0
    assert cache.get(("c",)) == 3.0
    assert len(cache) == 2         # "b" evicted


def test_lru_rejects_bad_capacity():
    with pytest.raises(ValueError):
        PredictionCache(capacity=0)


# ----------------------------------------------------------------------
# hit/miss + invalidation
# ----------------------------------------------------------------------
def test_repeat_query_hits_cache():
    service = build_service()
    first = service.predict("LBL-ANL", 100 * MB)
    second = service.predict("LBL-ANL", 100 * MB)
    assert not first.cached and second.cached
    assert first.value == second.value
    assert service.cache_stats()["hits"] == 1


def test_history_growth_invalidates_exactly_that_link():
    service = build_service()
    service.ingest_records(
        "ISI-ANL", [make_record(start=1000.0 + 100 * i) for i in range(20)]
    )
    p_lbl = service.predict("LBL-ANL", 100 * MB)
    p_isi = service.predict("ISI-ANL", 100 * MB)

    service.observe("LBL-ANL", make_record(start=50_000.0, bandwidth=9e9))

    after_lbl = service.predict("LBL-ANL", 100 * MB)
    after_isi = service.predict("ISI-ANL", 100 * MB)
    # The grown link recomputes against the new history...
    assert not after_lbl.cached
    assert after_lbl.version == p_lbl.version + 1
    assert after_lbl.value != p_lbl.value
    # ...the untouched link still answers from cache.
    assert after_isi.cached
    assert after_isi.value == p_isi.value


def test_same_class_sizes_share_a_cache_entry():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB, spec="C-AVG15")
    # 120 MB falls in the same 100MB class -> same context, cache hit.
    assert service.predict("LBL-ANL", 120 * MB, spec="C-AVG15").cached
    # 600 MB is another class -> different context, recompute.
    assert not service.predict("LBL-ANL", 600 * MB, spec="C-AVG15").cached


def test_unclassified_spec_ignores_size_entirely():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB, spec="AVG15")
    assert service.predict("LBL-ANL", 999 * MB, spec="AVG15").cached


def test_size_spec_keys_on_exact_size():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB, spec="SIZE")
    assert service.predict("LBL-ANL", 100 * MB, spec="SIZE").cached
    assert not service.predict("LBL-ANL", 100 * MB + 1, spec="SIZE").cached


def test_temporal_spec_keys_on_anchor_time():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB, spec="AVG15hr", now=5000.0)
    assert service.predict("LBL-ANL", 100 * MB, spec="AVG15hr", now=5000.0).cached
    assert not service.predict("LBL-ANL", 100 * MB, spec="AVG15hr", now=6000.0).cached


def test_count_window_spec_ignores_anchor_time():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB, spec="AVG5", now=5000.0)
    assert service.predict("LBL-ANL", 100 * MB, spec="AVG5", now=6000.0).cached


def test_abstention_is_cached_too():
    service = PredictionService(clock=lambda: 10_000.0)
    service.observe("LBL-ANL", make_record(start=1000.0, size=10 * MB))
    # C- spec over a class with no history abstains; the second ask hits.
    first = service.predict("LBL-ANL", 900 * MB, spec="C-AVG")
    second = service.predict("LBL-ANL", 900 * MB, spec="C-AVG")
    assert first.value is None and second.value is None
    assert not first.cached and second.cached


def test_unknown_link_answers_none_without_caching():
    service = build_service()
    prediction = service.predict("NOWHERE", 100 * MB)
    assert prediction.value is None
    assert prediction.history_length == 0 and prediction.version == 0


def test_rank_replicas_orders_by_bandwidth_unknowns_last():
    service = build_service()
    slow = [make_record(start=1000.0 + 100 * i, bandwidth=1e6) for i in range(20)]
    service.ingest_records("SLOW-ANL", slow)
    ranking = service.rank_replicas(
        ["SLOW-ANL", "NOWHERE", "LBL-ANL"], 100 * MB
    )
    assert [r.site for r in ranking] == ["LBL-ANL", "SLOW-ANL", "NOWHERE"]
    assert ranking[-1].predicted_bandwidth is None


def test_metrics_and_trace_reflect_activity():
    service = build_service()
    service.predict("LBL-ANL", 100 * MB)
    service.predict("LBL-ANL", 100 * MB)
    snap = service.metrics.snapshot()
    assert snap["service_ingested_records"]["value"] == 20
    assert snap["service_predict_requests"]["value"] == 2
    assert snap["service_cache_hits"]["value"] == 1
    assert snap["service_predict_seconds"]["count"] == 2
    kinds = {e.kind for e in service.trace.events()}
    assert {"observe", "predict"} <= kinds


def test_status_is_json_shaped():
    import json

    service = build_service()
    service.predict("LBL-ANL", 100 * MB)
    status = json.loads(json.dumps(service.status()))
    assert status["links"]["LBL-ANL"] == {"records": 20, "version": 20}
    assert status["cache"]["misses"] == 1


def test_bad_default_spec_fails_fast():
    with pytest.raises(KeyError):
        PredictionService(default_spec="NOPE")


# ----------------------------------------------------------------------
# graceful degradation: the link-agnostic fallback
# ----------------------------------------------------------------------
class TestDegradedFallback:
    def test_off_by_default(self):
        service = build_service()
        assert service.predict("NOWHERE", 100 * MB).value is None

    def test_unknown_link_gets_the_aggregate_marked_degraded(self):
        service = build_service(degraded_fallback=True)
        service.ingest_records(
            "FAST-ANL",
            [make_record(start=1000.0 + 100 * i, bandwidth=4e6) for i in range(10)],
        )
        prediction = service.predict("NOWHERE", 100 * MB)
        assert prediction.degraded
        assert prediction.value == pytest.approx(service.aggregate_bandwidth())
        assert prediction.history_length == 0 and prediction.version == 0
        # A confident answer is never marked degraded.
        assert not service.predict("LBL-ANL", 100 * MB).degraded

    def test_no_history_anywhere_still_answers_none(self):
        service = PredictionService(degraded_fallback=True)
        prediction = service.predict("NOWHERE", 100 * MB)
        assert prediction.value is None and not prediction.degraded

    def test_aggregate_is_the_mean_of_per_link_means(self):
        service = PredictionService(degraded_fallback=True)
        service.ingest_records(
            "A", [make_record(start=1000.0 + 100 * i, bandwidth=2e6)
                  for i in range(5)])
        service.ingest_records(
            "B", [make_record(start=1000.0 + 100 * i, bandwidth=4e6)
                  for i in range(15)])
        assert service.aggregate_bandwidth() == pytest.approx(3e6)

    def test_degraded_answers_rank_after_confident_ones(self):
        service = build_service(degraded_fallback=True)
        service.ingest_records(
            "SLOW-ANL",
            [make_record(start=1000.0 + 100 * i, bandwidth=1e5) for i in range(20)],
        )
        ranking = service.rank_replicas(
            ["NOWHERE", "SLOW-ANL", "LBL-ANL"], 100 * MB)
        # The fallback aggregate exceeds SLOW-ANL's prediction, but a
        # degraded guess must not outrank a measured link.
        assert [r.site for r in ranking] == ["LBL-ANL", "SLOW-ANL", "NOWHERE"]
        assert ranking[-1].predicted_bandwidth is not None

    def test_fallbacks_are_counted_and_traced(self):
        service = build_service(degraded_fallback=True)
        service.predict("NOWHERE", 100 * MB)
        assert service.metrics.snapshot()[
            "service_fallback_predictions"]["value"] == 1
        assert service.trace.events(kind="predict.fallback")

    def test_fallback_is_never_cached(self):
        service = build_service(degraded_fallback=True)
        first = service.predict("NOWHERE", 100 * MB)
        # New history changes the aggregate; a cached fallback would
        # have frozen the old value.
        service.ingest_records(
            "FAST-ANL",
            [make_record(start=1000.0 + 100 * i, bandwidth=9e6)
             for i in range(10)],
        )
        second = service.predict("NOWHERE", 100 * MB)
        assert not second.cached
        assert second.value != first.value
