"""Unit tests for the durable tiered store (repro.store).

The WAL framing, segment container, checkpoint codec, and the
LinkStore's recovery ladder: torn tails truncate, crash-split
seal/truncate pairs dedup, corrupt files quarantine, and compaction
collapses everything back to one trustworthy segment.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store import CorruptCheckpoint, CorruptSegment, LinkStore
from repro.store import checkpoint as ck
from repro.store import segments as seg
from repro.store import wal


def _rows(n, t0=1000.0):
    times = [t0 + i for i in range(n)]
    values = [1e6 + 100.0 * i for i in range(n)]
    sizes = [10_000 + i for i in range(n)]
    ops = [i % 2 for i in range(n)]
    return times, values, sizes, ops


def _append(store, link, n, t0=1000.0, offset=0):
    times, values, sizes, ops = _rows(n, t0)
    assert store.append_rows(link, times, values, sizes, ops,
                             source_offset=offset)


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestWal:
    def test_roundtrip(self):
        blob = wal.encode([(0, 1.5, 2.5, 10, 1, 0), (1, 2.5, 3.5, 20, 0, 99)])
        assert len(blob) == 2 * wal.RECORD_SIZE
        scan = wal.scan(blob)
        assert scan.seqs == [0, 1]
        assert scan.times == [1.5, 2.5]
        assert scan.values == [2.5, 3.5]
        assert scan.sizes == [10, 20]
        assert scan.ops == [1, 0]
        assert scan.offsets == [0, 99]
        assert scan.valid_bytes == len(blob)
        assert scan.torn_bytes == 0

    def test_torn_tail_stops_at_first_bad_record(self):
        blob = wal.encode([(i, float(i), 1.0, 1, 0, 0) for i in range(3)])
        torn = blob + blob[: wal.RECORD_SIZE // 2]  # short final record
        scan = wal.scan(torn)
        assert len(scan) == 3
        assert scan.valid_bytes == len(blob)
        assert scan.torn_bytes == len(torn) - len(blob)

    def test_corrupt_crc_mid_stream_truncates_from_there(self):
        blob = bytearray(wal.encode(
            [(i, float(i), 1.0, 1, 0, 0) for i in range(4)]))
        blob[wal.RECORD_SIZE + 7] ^= 0xFF  # flip a byte in record 1
        scan = wal.scan(bytes(blob))
        assert scan.seqs == [0]  # everything after the bad record is torn
        assert scan.torn_bytes == 3 * wal.RECORD_SIZE

    def test_dedup_drops_rows_below_sealed(self):
        scan = wal.scan(wal.encode(
            [(i, float(i), 1.0, 1, 0, 0) for i in range(5)]))
        kept, dropped = wal.dedup(scan, sealed_rows=3)
        assert dropped == 3
        assert kept.seqs == [3, 4]


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
class TestSegments:
    def test_roundtrip(self, tmp_path):
        times, values, sizes, ops = (np.asarray(c) for c in _rows(10))
        path = tmp_path / seg.segment_name(0)
        seg.write_segment(path, 0, times, values, sizes, ops, max_offset=77)
        data = seg.read_segment(path)
        assert data.start_row == 0 and data.rows == 10
        assert data.max_offset == 77
        np.testing.assert_array_equal(data.times, times)
        np.testing.assert_array_equal(data.values, values)

    def test_flipped_byte_fails_digest(self, tmp_path):
        times, values, sizes, ops = (np.asarray(c) for c in _rows(10))
        path = tmp_path / seg.segment_name(0)
        seg.write_segment(path, 0, times, values, sizes, ops)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(Exception):
            seg.read_segment(path)

    def test_truncated_file_raises(self, tmp_path):
        times, values, sizes, ops = (np.asarray(c) for c in _rows(10))
        path = tmp_path / seg.segment_name(0)
        seg.write_segment(path, 0, times, values, sizes, ops)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(Exception):
            seg.read_segment(path)


# ----------------------------------------------------------------------
# checkpoint codec
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_longdouble_roundtrip_is_exact(self):
        # A sum that differs from its float64 rounding — the whole point
        # of the longdouble pool.
        total = np.longdouble(0)
        for i in range(1000):
            total += np.longdouble(0.1) * i
        state = {"sum": total, "count": 1000, "tag": "x",
                 "ring": [1.5, 2.5, float("inf")], "names": ["a", "b"],
                 "none": None, "flag": True}
        out = ck.loads(ck.dumps(state))
        assert isinstance(out["sum"], np.longdouble)
        assert out["sum"] == total  # bit-exact, not approx
        assert out["ring"] == [1.5, 2.5, float("inf")]
        assert out["names"] == ["a", "b"]
        assert out["none"] is None and out["flag"] is True

    def test_deterministic_bytes(self):
        state = {"b": [1.0, 2.0], "a": {"z": 1, "y": np.longdouble(2)}}
        assert ck.dumps(state) == ck.dumps(state)

    def test_flipped_byte_raises(self):
        blob = bytearray(ck.dumps({"x": [1.0, 2.0, 3.0]}))
        blob[-3] ^= 0xFF
        with pytest.raises(CorruptCheckpoint):
            ck.loads(bytes(blob))

    def test_truncation_raises(self):
        blob = ck.dumps({"x": [1.0, 2.0, 3.0]})
        with pytest.raises(CorruptCheckpoint):
            ck.loads(blob[:-4])
        with pytest.raises(CorruptCheckpoint):
            ck.loads(b"")

    def test_bad_magic_raises(self):
        blob = ck.dumps({"x": 1})
        with pytest.raises(CorruptCheckpoint):
            ck.loads(b"XXXX" + blob[4:])


# ----------------------------------------------------------------------
# LinkStore
# ----------------------------------------------------------------------
class TestLinkStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=8)
        _append(store, "a/b", 20, offset=123)  # link name needs quoting
        assert store.has("a/b")
        assert store.durable_rows("a/b") == 20
        assert store.resume_offset("a/b") == 123
        times, values, sizes, ops = store.load_columns("a/b")
        want_t, want_v, want_s, want_o = _rows(20)
        np.testing.assert_array_equal(times, want_t)
        np.testing.assert_array_equal(values, want_v)
        np.testing.assert_array_equal(sizes, want_s)
        np.testing.assert_array_equal(ops, want_o)

    def test_auto_seal_and_recovery(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=8)
        # Three batches: the first two each cross the seal threshold and
        # seal the whole tail; the last stays live in the WAL.
        _append(store, "x", 8, t0=1000.0)
        _append(store, "x", 8, t0=2000.0)
        _append(store, "x", 4, t0=3000.0)
        store.close()
        link_dir = next((tmp_path / "links").iterdir())
        segs = [p for p in os.listdir(link_dir) if p.endswith(".npz")]
        assert len(segs) == 2
        fresh = LinkStore(tmp_path, segment_rows=8)
        assert fresh.durable_rows("x") == 20
        assert not fresh.degraded("x")
        times, _, _, _ = fresh.load_columns("x")
        assert len(times) == 20

    def test_load_columns_start_row(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=8)
        _append(store, "x", 20)
        times, values, sizes, ops = store.load_columns("x", start_row=15)
        assert len(times) == 5
        assert times[0] == 1000.0 + 15

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=1000)
        _append(store, "x", 5)
        store.close()
        tail = next((tmp_path / "links").iterdir()) / "tail.wal"
        with open(tail, "ab") as fh:
            fh.write(b"\x01\x02\x03garbage")
        fresh = LinkStore(tmp_path)
        assert fresh.durable_rows("x") == 5
        # The torn bytes are physically gone, not just skipped.
        assert os.path.getsize(tail) == 5 * wal.RECORD_SIZE

    def test_crash_between_seal_and_truncate_dedups(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=1000)
        _append(store, "x", 6)
        tail = next((tmp_path / "links").iterdir()) / "tail.wal"
        saved = tail.read_bytes()
        assert store.seal("x")
        # Simulate the crash: the sealed segment exists AND the tail
        # still holds the same rows.
        tail.write_bytes(saved)
        store.close()
        fresh = LinkStore(tmp_path)
        assert fresh.durable_rows("x") == 6  # not 12
        times, _, _, _ = fresh.load_columns("x")
        assert len(times) == 6

    def test_corrupt_segment_quarantined_and_degraded(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=4)
        _append(store, "x", 4, t0=1000.0)
        _append(store, "x", 4, t0=2000.0)
        store.close()
        link_dir = next((tmp_path / "links").iterdir())
        victim = sorted(p for p in link_dir.iterdir()
                        if p.name.endswith(".npz"))[0]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        fresh = LinkStore(tmp_path)
        assert fresh.durable_rows("x") == 4  # survivors only
        assert fresh.degraded("x")
        assert (link_dir / (victim.name + ".quarantined")).exists()
        assert not victim.exists()

    def test_compaction_repairs_degraded_link(self, tmp_path):
        store = LinkStore(tmp_path, segment_rows=4)
        _append(store, "x", 4, t0=1000.0)
        _append(store, "x", 4, t0=2000.0)
        store.close()
        link_dir = next((tmp_path / "links").iterdir())
        victim = sorted(p for p in link_dir.iterdir()
                        if p.name.endswith(".npz"))[0]
        victim.write_bytes(b"junk")
        fresh = LinkStore(tmp_path, segment_rows=4)
        assert fresh.degraded("x")
        assert fresh.compact("x")
        assert not fresh.degraded("x")
        assert fresh.durable_rows("x") == 4
        # Exactly one seg-full remains; appends continue cleanly.
        npz = [p.name for p in link_dir.iterdir() if p.name.endswith(".npz")]
        assert npz == [seg.FULL_NAME]
        _append(fresh, "x", 3, t0=5000.0)
        assert fresh.durable_rows("x") == 7

    def test_checkpoint_roundtrip_and_quarantine(self, tmp_path):
        store = LinkStore(tmp_path)
        state = {"meta": {"n": 3}, "bank": {"sum": np.longdouble(1.25)}}
        assert store.write_checkpoint("x", state)
        out = store.read_checkpoint("x")
        assert out["meta"]["n"] == 3
        assert out["bank"]["sum"] == np.longdouble(1.25)
        path = next((tmp_path / "links").iterdir()) / "checkpoint.bin"
        path.write_bytes(b"rot" + path.read_bytes()[3:])
        assert store.read_checkpoint("x") is None
        assert path.with_name(path.name + ".quarantined").exists()

    def test_append_never_raises_on_unwritable_dir(self, tmp_path, monkeypatch):
        store = LinkStore(tmp_path)
        _append(store, "x", 1)

        def boom(*a, **k):
            raise OSError("disk gone")

        monkeypatch.setattr(LinkStore, "_tail_handle", boom)
        times, values, sizes, ops = _rows(1, t0=2000.0)
        assert store.append_rows("x", times, values, sizes, ops) is False
        assert store.durable_rows("x") == 1  # unchanged, not corrupted

    def test_link_registry(self, tmp_path):
        store = LinkStore(tmp_path)
        _append(store, "b", 1)
        _append(store, "a", 1)
        assert store.link_names() == ["a", "b"]
        assert store.link_count() == 2
        assert not store.has("c")
        assert store.bytes_on_disk(max_age=0.0) > 0
