"""Table rendering."""

import pytest

from repro.analysis import render_table


def test_alignment_and_rule():
    out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert lines[0].endswith("value")
    assert set(lines[1]) <= {"-", " "}
    assert lines[2].endswith("1")


def test_title():
    out = render_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_float_formatting_and_nan():
    out = render_table(["v"], [[1.2345], [float("nan")]])
    assert "1.2" in out
    assert "-" in out.splitlines()[-1]


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_empty_headers_rejected():
    with pytest.raises(ValueError):
        render_table([], [])
