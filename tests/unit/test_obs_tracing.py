"""Span tracing: nesting, status capture, export bounds, the kill switch."""

import pytest

from repro.obs.config import disabled, enabled, set_enabled
from repro.obs.tracing import (
    Span,
    SpanExporter,
    _NOOP,
    current_span,
    get_span_exporter,
    span,
    traced,
)


@pytest.fixture
def exporter():
    return SpanExporter(capacity=16)


def test_span_records_duration_and_status(exporter):
    ticks = iter([10.0, 10.5])
    with Span("work", exporter=exporter, clock=lambda: next(ticks), link="a-b") as sp:
        sp.set_attribute("records", 3)
    assert sp.duration == pytest.approx(0.5)
    assert sp.status == "ok" and sp.error is None
    assert sp.attributes == {"link": "a-b", "records": 3}
    exported = exporter.spans()
    assert exported == [sp]
    assert exported[0].as_dict()["name"] == "work"


def test_span_error_status_and_propagation(exporter):
    with pytest.raises(RuntimeError, match="boom"):
        with Span("work", exporter=exporter):
            raise RuntimeError("boom")
    (sp,) = exporter.spans()
    assert sp.status == "error"
    assert "boom" in sp.error


def test_nested_spans_share_a_trace_and_chain_parents(exporter):
    assert current_span() is None
    with Span("outer", exporter=exporter) as outer:
        assert current_span() is outer
        with Span("inner", exporter=exporter) as inner:
            assert current_span() is inner
        assert current_span() is outer
    assert current_span() is None
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id == outer.span_id
    assert outer.parent_id is None
    # Finished innermost-first.
    assert [s.name for s in exporter.spans()] == ["inner", "outer"]


def test_explicit_parent_beats_the_context(exporter):
    root = Span("root", exporter=exporter)
    with Span("other", exporter=exporter):
        child = Span("child", parent=root, exporter=exporter)
    assert child.parent_id == root.span_id
    assert child.trace_id == root.trace_id


def test_exporter_is_bounded_and_counts_drops():
    exporter = SpanExporter(capacity=3)
    for i in range(5):
        with Span(f"s{i}", exporter=exporter):
            pass
    assert len(exporter) == 3
    assert exporter.dropped == 2
    assert [s.name for s in exporter.spans()] == ["s2", "s3", "s4"]
    assert [s.name for s in exporter.spans(limit=2)] == ["s3", "s4"]
    assert [s.name for s in exporter.spans(name="s3")] == ["s3"]
    exporter.clear()
    assert len(exporter) == 0
    with pytest.raises(ValueError):
        SpanExporter(capacity=0)


def test_span_factory_honors_the_kill_switch(exporter):
    assert enabled()
    assert isinstance(span("live", exporter=exporter), Span)
    with disabled():
        noop = span("dead", exporter=exporter)
        assert noop is _NOOP
        with noop as sp:
            sp.set_attribute("ignored", 1)  # must not raise
        assert current_span() is None
    assert exporter.spans() == []


def test_set_enabled_returns_the_previous_state():
    assert set_enabled(False) is True
    try:
        assert not enabled()
    finally:
        assert set_enabled(True) is False
    assert enabled()


def test_traced_decorator_wraps_the_function(exporter, monkeypatch):
    import repro.obs.tracing as tracing

    monkeypatch.setattr(tracing, "_default_exporter", exporter)
    assert get_span_exporter() is exporter

    @traced(stage="unit")
    def add(a, b):
        return a + b

    assert add(2, 3) == 5
    (sp,) = exporter.spans()
    assert sp.name.endswith("add")
    assert sp.attributes == {"stage": "unit"}
    assert add.__name__ == "add"


def test_traced_with_explicit_name(exporter, monkeypatch):
    import repro.obs.tracing as tracing

    monkeypatch.setattr(tracing, "_default_exporter", exporter)

    @traced("custom.op")
    def work():
        return 42

    assert work() == 42
    assert exporter.spans()[0].name == "custom.op"
