"""CLI parsing and fast subcommands.

Report commands that need a full campaign are exercised in integration
tests; here we check parsing, validation, and the campaign writer.
"""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_report_kinds_restricted(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["report", "nope"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.month == "aug" and args.seed == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCampaignCommand:
    def test_writes_ulm_logs(self, tmp_path):
        rc = main(["campaign", "--month", "aug", "--seed", "1",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["aug-ISI-ANL.ulm", "aug-LBL-ANL.ulm"]
        # Files round-trip through the log loader.
        from repro.logs import TransferLog

        log = TransferLog.load(tmp_path / "aug-LBL-ANL.ulm")
        assert len(log) > 300

    def test_unknown_month_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--month", "july", "--out-dir", str(tmp_path)])


class TestReportValidation:
    def test_unknown_link_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "summary", "--link", "MARS-ANL"])

    def test_unknown_class_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "errors", "--link", "LBL-ANL", "--class", "2GB"])


class TestExportCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        rc = main(["export", "--seed", "1", "--out-dir", str(tmp_path / "figs")])
        assert rc == 0
        out = capsys.readouterr().out
        names = {p.name for p in (tmp_path / "figs").iterdir()}
        assert "fig07_census.csv" in names
        assert "fig08_11_LBL-ANL.csv" in names
        assert "fig14_21_ISI-ANL.csv" in names
        assert out.count("wrote ") == len(names)


class TestEvaluateCommand:
    @pytest.fixture
    def log_path(self, tmp_path, short_campaign_output):
        path = tmp_path / "log.ulm"
        short_campaign_output.log.save(path)
        return path

    def test_evaluate_prints_table(self, log_path, capsys):
        rc = main(["evaluate", str(log_path), "--predictors", "AVG,C-AVG15,SIZE"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "C-AVG15" in out and "SIZE" in out and "overall" in out

    def test_unknown_predictor_rejected(self, log_path):
        with pytest.raises(SystemExit, match="unknown predictor"):
            main(["evaluate", str(log_path), "--predictors", "MAGIC"])

    def test_too_short_log_rejected(self, tmp_path, record_factory):
        from repro.logs import TransferLog

        log = TransferLog()
        for i in range(5):
            log.append(record_factory(start=1000.0 * (i + 1)))
        path = tmp_path / "short.ulm"
        log.save(path)
        with pytest.raises(SystemExit, match="training prefix"):
            main(["evaluate", str(path)])

    def test_custom_training_prefix(self, log_path, capsys):
        rc = main(["evaluate", str(log_path), "--training", "5",
                   "--predictors", "AVG15"])
        assert rc == 0
        assert "AVG15" in capsys.readouterr().out
