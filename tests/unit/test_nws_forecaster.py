"""NWS forecaster battery and dynamic selection."""

import pytest

from repro.nws import (
    DynamicForecaster,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
    SlidingMean,
    SlidingMedian,
    standard_battery,
)


def feed(forecaster, values):
    for v in values:
        forecaster.update(v)
    return forecaster.forecast()


class TestBasicForecasters:
    def test_running_mean(self):
        assert feed(RunningMean(), [1, 2, 3, 4]) == pytest.approx(2.5)

    def test_running_mean_empty(self):
        assert RunningMean().forecast() is None

    def test_sliding_mean_window(self):
        assert feed(SlidingMean(2), [1, 2, 10, 20]) == pytest.approx(15.0)

    def test_sliding_mean_partial_window(self):
        assert feed(SlidingMean(10), [4, 6]) == pytest.approx(5.0)

    def test_sliding_median(self):
        assert feed(SlidingMedian(3), [1, 100, 2, 3]) == pytest.approx(3.0)

    def test_median_rejects_outlier(self):
        med = feed(SlidingMedian(5), [10, 10, 10, 1000, 10])
        assert med == 10

    def test_last_value(self):
        assert feed(LastValue(), [5, 7, 9]) == 9
        assert LastValue().forecast() is None

    def test_exponential_smoothing(self):
        f = ExponentialSmoothing(0.5)
        f.update(10)
        f.update(20)
        assert f.forecast() == pytest.approx(15.0)

    def test_reset(self):
        for f in standard_battery():
            f.update(5.0)
            f.reset()
            assert f.forecast() is None

    @pytest.mark.parametrize("factory", [
        lambda: SlidingMean(0), lambda: SlidingMedian(0),
        lambda: ExponentialSmoothing(0.0), lambda: ExponentialSmoothing(1.5),
    ])
    def test_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestDynamicForecaster:
    def test_selects_lowest_mse_member(self):
        # Alternating series: last-value is always wrong by 10, the mean of
        # all data is nearly perfect around 15.
        dyn = DynamicForecaster([LastValue(), RunningMean()])
        for v in [10, 20] * 20:
            dyn.update(v)
        assert dyn.best().name == "running_mean"

    def test_tracks_regime_change(self):
        # A trending series rewards last-value over the all-time mean.
        dyn = DynamicForecaster([RunningMean(), LastValue()])
        for v in range(1, 60):
            dyn.update(float(v))
        assert dyn.best().name == "last_value"

    def test_forecast_delegates(self):
        dyn = DynamicForecaster([LastValue()])
        dyn.update(42.0)
        assert dyn.forecast() == 42.0

    def test_mse_table_has_all_members(self):
        dyn = DynamicForecaster(standard_battery())
        for v in [10, 12, 11, 13, 12]:
            dyn.update(v)
        table = dyn.mse_table()
        assert len(table) == len(standard_battery())
        assert all(v >= 0 or v == float("inf") for v in table.values())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DynamicForecaster([LastValue(), LastValue()])

    def test_empty_battery_rejected(self):
        with pytest.raises(ValueError):
            DynamicForecaster([])

    def test_reset_clears_scores(self):
        dyn = DynamicForecaster([LastValue(), RunningMean()])
        for v in [1, 2, 3]:
            dyn.update(float(v))
        dyn.reset()
        assert dyn.forecast() is None
        assert all(v == float("inf") for v in dyn.mse_table().values())
