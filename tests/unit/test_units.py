"""Units and conversions."""

import pytest

from repro.units import (
    GB,
    KB,
    MB,
    bytes_per_sec_to_kbps,
    bytes_per_sec_to_mbps,
    fmt_bandwidth,
    fmt_size,
    mbps_network_to_bytes_per_sec,
    parse_size,
)


class TestConversions:
    def test_decimal_prefixes(self):
        assert KB == 1000 and MB == 10**6 and GB == 10**9

    def test_kbps_matches_paper_log(self):
        # Figure 3: 10240000 bytes in 4 s -> 2560 KB/s.
        assert bytes_per_sec_to_kbps(10_240_000 / 4) == 2560

    def test_mbps(self):
        assert bytes_per_sec_to_mbps(2_500_000) == 2.5

    def test_network_mbps(self):
        # OC-3: 155 Mb/s = 19.375 MB/s.
        assert mbps_network_to_bytes_per_sec(155) == pytest.approx(19_375_000)


class TestFmtSize:
    @pytest.mark.parametrize(
        "size,expected",
        [(10 * MB, "10M"), (1 * GB, "1G"), (25 * MB, "25M"), (500, "500"), (2 * KB, "2K")],
    )
    def test_exact(self, size, expected):
        assert fmt_size(size) == expected

    def test_non_integral(self):
        assert fmt_size(1_500_000) == "1.5M"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [("10M", 10 * MB), ("1G", GB), ("64K", 64 * KB), ("512", 512),
         ("10MB", 10 * MB), ("1.5M", 1_500_000), (" 25m ", 25 * MB)],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "-5M", "M"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_roundtrip_paper_sizes(self):
        from repro.workload import PAPER_SIZES

        for size in PAPER_SIZES:
            assert parse_size(fmt_size(size)) == size


class TestFmtBandwidth:
    def test_scales(self):
        assert fmt_bandwidth(6_062_000) == "6.06 MB/s"
        assert fmt_bandwidth(2_560) == "2.6 KB/s"
        assert fmt_bandwidth(999) == "999 B/s"
