"""The MDS-backed replica broker (directory inquiries, no log access)."""

import pytest

from repro.mds import Entry, MdsReplicaBroker
from repro.mds.broker import _parse_kb
from repro.storage import ReplicaCatalog
from repro.units import GB, KB, MB


class FakeDirectory:
    def __init__(self, entries):
        self._entries = entries

    def search(self, now, flt=None, base=None):
        return list(self._entries)


def perf_entry(hostname, **attrs):
    entry = Entry(f"cn=x,hostname={hostname},o=grid")
    entry.add("objectclass", "GridFTPPerf")
    entry.add("hostname", hostname)
    entry.add("gridftpurl", f"gsiftp://{hostname}:2811")
    for name, value in attrs.items():
        entry.add(name, value)
    return entry


@pytest.fixture
def world():
    catalog = ReplicaCatalog()
    catalog.register("lfn://d", "LBL", 1 * GB)
    catalog.register("lfn://d", "ISI", 1 * GB)
    hostnames = {"LBL": "dpsslx04.lbl.gov", "ISI": "jet.isi.edu"}
    return catalog, hostnames


class TestParseKb:
    def test_figure6_format(self):
        assert _parse_kb("6062K") == 6062 * KB
        assert _parse_kb("6062") == 6062 * KB
        assert _parse_kb(None) is None
        assert _parse_kb("fast") is None


class TestRanking:
    def test_ranks_by_class_prediction(self, world):
        catalog, hostnames = world
        directory = FakeDirectory([
            perf_entry("dpsslx04.lbl.gov", predictedrdbandwidth1gbrange="9000K"),
            perf_entry("jet.isi.edu", predictedrdbandwidth1gbrange="7000K"),
        ])
        broker = MdsReplicaBroker(catalog, directory, hostnames)
        ranked = broker.rank("lfn://d", now=0.0)
        assert [r.site for r in ranked] == ["LBL", "ISI"]
        assert ranked[0].predicted_bandwidth == pytest.approx(9_000_000)
        assert ranked[0].source_attribute == "predictedrdbandwidth1gbrange"
        assert ranked[0].gridftp_url == "gsiftp://dpsslx04.lbl.gov:2811"

    def test_class_attribute_selected_by_file_size(self, world):
        catalog, hostnames = world
        catalog.register("lfn://small", "LBL", 10 * MB)
        directory = FakeDirectory([
            perf_entry("dpsslx04.lbl.gov",
                       predictedrdbandwidth10mbrange="2000K",
                       predictedrdbandwidth1gbrange="9000K"),
        ])
        broker = MdsReplicaBroker(catalog, directory, hostnames)
        small = broker.rank("lfn://small", now=0.0)[0]
        assert small.predicted_bandwidth == pytest.approx(2_000_000)
        large = broker.rank("lfn://d", now=0.0)[0]
        assert large.predicted_bandwidth == pytest.approx(9_000_000)

    def test_fallback_attribute_chain(self, world):
        catalog, hostnames = world
        directory = FakeDirectory([
            # No prediction attribute: falls back to class avg, then overall.
            perf_entry("dpsslx04.lbl.gov", avgrdbandwidth1gbrange="8000K"),
            perf_entry("jet.isi.edu", avgrdbandwidth="5000K"),
        ])
        broker = MdsReplicaBroker(catalog, directory, hostnames)
        ranked = broker.rank("lfn://d", now=0.0)
        assert ranked[0].source_attribute == "avgrdbandwidth1gbrange"
        assert ranked[1].source_attribute == "avgrdbandwidth"

    def test_missing_entry_ranked_last(self, world):
        catalog, hostnames = world
        directory = FakeDirectory([
            perf_entry("jet.isi.edu", avgrdbandwidth="5000K"),
        ])
        broker = MdsReplicaBroker(catalog, directory, hostnames)
        ranked = broker.rank("lfn://d", now=0.0)
        assert [r.site for r in ranked] == ["ISI", "LBL"]
        assert ranked[1].predicted_bandwidth is None

    def test_select_and_estimated_time(self, world):
        catalog, hostnames = world
        directory = FakeDirectory([
            perf_entry("dpsslx04.lbl.gov", avgrdbandwidth="10000K"),
        ])
        broker = MdsReplicaBroker(catalog, directory, hostnames)
        best = broker.select("lfn://d", now=0.0)
        assert best.estimated_time(1 * GB) == pytest.approx(100.0)

    def test_unknown_logical_name(self, world):
        catalog, hostnames = world
        broker = MdsReplicaBroker(catalog, FakeDirectory([]), hostnames)
        with pytest.raises(KeyError):
            broker.rank("lfn://ghost", now=0.0)
