"""Server connection limits (FTP 421 behaviour)."""

import pytest

from repro.gridftp import Credential, ServerBusyError
from tests.unit.test_gridftp_server import make_server


def make_limited(max_sessions):
    server, remote, disk, engine = make_server()
    server.max_sessions = max_sessions
    return server, remote, disk


class TestSessionLimits:
    def test_unlimited_by_default(self):
        server, remote, disk = make_limited(None)
        sessions = [
            server.open_session(Credential("/CN=u"), remote, disk)
            for _ in range(50)
        ]
        assert server.open_sessions == 50
        for s in sessions:
            s.close()
        assert server.open_sessions == 0

    def test_limit_enforced(self):
        server, remote, disk = make_limited(2)
        server.open_session(Credential("/CN=a"), remote, disk)
        server.open_session(Credential("/CN=b"), remote, disk)
        with pytest.raises(ServerBusyError, match="2/2"):
            server.open_session(Credential("/CN=c"), remote, disk)

    def test_slot_freed_on_close(self):
        server, remote, disk = make_limited(1)
        session = server.open_session(Credential("/CN=a"), remote, disk)
        session.close()
        server.open_session(Credential("/CN=b"), remote, disk)  # no raise

    def test_double_close_frees_once(self):
        server, remote, disk = make_limited(2)
        session = server.open_session(Credential("/CN=a"), remote, disk)
        session.close()
        session.close()
        assert server.open_sessions == 0
        server.open_session(Credential("/CN=b"), remote, disk)
        assert server.open_sessions == 1

    def test_busy_check_precedes_auth(self):
        """A full server refuses connections before looking at credentials."""
        server, remote, disk = make_limited(1)
        server.open_session(Credential("/CN=a"), remote, disk)
        with pytest.raises(ServerBusyError):
            server.open_session(Credential("/CN=bad", valid=False), remote, disk)

    def test_client_sessions_close_after_operations(self):
        """The client's get/put/partial always release their session."""
        from repro.workload import build_testbed, AUG_2001
        from repro.units import MB

        bed = build_testbed(seed=5, start_time=AUG_2001)
        server = bed.servers["LBL"]
        server.max_sessions = 1
        client = bed.clients["ANL"]
        for _ in range(3):  # would deadlock if sessions leaked
            client.get(server, bed.data_path(10 * MB))
        assert server.open_sessions == 0

    def test_invalid_limit_rejected(self):
        from repro.gridftp import GridFTPServer

        server, remote, disk = make_limited(None)
        with pytest.raises(ValueError):
            GridFTPServer(
                site=server.site, engine=server.engine, topology=server.topology,
                volumes=server.volumes, transfer_engine=server.transfer_engine,
                max_sessions=0,
            )
