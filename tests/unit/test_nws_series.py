"""TimeSeries: append, windows, statistics."""

import numpy as np
import pytest

from repro.nws import TimeSeries


@pytest.fixture
def series():
    s = TimeSeries()
    for t, v in [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]:
        s.append(t, v)
    return s


class TestAppend:
    def test_length_and_iteration(self, series):
        assert len(series) == 4
        assert list(series) == [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]

    def test_time_must_not_decrease(self, series):
        with pytest.raises(ValueError):
            series.append(25.0, 1.0)

    def test_equal_times_allowed(self, series):
        series.append(30.0, 50.0)
        assert len(series) == 5

    def test_growth_beyond_initial_capacity(self):
        s = TimeSeries(initial_capacity=2)
        for i in range(100):
            s.append(float(i), float(i))
        assert len(s) == 100
        assert s.values[99] == 99.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries(initial_capacity=0)


class TestViews:
    def test_views_read_only(self, series):
        with pytest.raises(ValueError):
            series.times[0] = 99.0

    def test_last(self, series):
        assert series.last() == (30.0, 40.0)
        assert TimeSeries().last() is None

    def test_last_n(self, series):
        assert list(series.last_n(2)) == [30.0, 40.0]
        assert list(series.last_n(99)) == [10.0, 20.0, 30.0, 40.0]
        with pytest.raises(ValueError):
            series.last_n(0)

    def test_since(self, series):
        assert list(series.since(10.0)) == [20.0, 30.0, 40.0]
        assert list(series.since(100.0)) == []

    def test_value_at(self, series):
        assert series.value_at(15.0) == 20.0
        assert series.value_at(10.0) == 20.0
        assert series.value_at(-5.0) is None
        assert series.value_at(1000.0) == 40.0


class TestStats:
    def test_mean_median_std(self, series):
        assert series.mean() == pytest.approx(25.0)
        assert series.median() == pytest.approx(25.0)
        assert series.stddev() == pytest.approx(np.std([10, 20, 30, 40]))

    def test_empty_stats_raise(self):
        empty = TimeSeries()
        for method in (empty.mean, empty.median, empty.stddev):
            with pytest.raises(ValueError):
                method()
