"""LogFollower: incremental tailing, partial lines, rotation, bad lines."""

from repro.logs.ulm import format_record
from repro.service import LogFollower, PredictionService
from tests.conftest import make_record


def collect(path, **kwargs):
    seen = []
    follower = LogFollower(path, lambda link, r: seen.append((link, r)), **kwargs)
    return follower, seen


def test_poll_delivers_only_new_records(tmp_path):
    path = tmp_path / "LBL-ANL.ulm"
    r1 = make_record(start=1000.0)
    r2 = make_record(start=2000.0)
    path.write_text(format_record(r1) + "\n")

    follower, seen = collect(path)
    assert follower.poll() == 1
    with path.open("a") as fh:
        fh.write(format_record(r2) + "\n")
    assert follower.poll() == 1
    assert follower.poll() == 0
    assert [r.start_time for _, r in seen] == [1000.0, 2000.0]
    assert seen[0][0] == "LBL-ANL"  # link defaults to the file stem


def test_partial_line_is_held_until_complete(tmp_path):
    path = tmp_path / "log.ulm"
    line = format_record(make_record(start=1000.0))
    path.write_text(line[:40])  # server mid-write

    follower, seen = collect(path)
    assert follower.poll() == 0
    with path.open("a") as fh:
        fh.write(line[40:] + "\n")
    assert follower.poll() == 1
    assert seen[0][1].start_time == 1000.0


def test_malformed_lines_are_counted_and_skipped(tmp_path):
    path = tmp_path / "log.ulm"
    good = format_record(make_record(start=1000.0))
    path.write_text("THIS IS NOT ULM\n" + good + "\n# a comment\n\n")

    follower, seen = collect(path)
    assert follower.poll() == 1
    assert follower.errors == 1
    assert len(seen) == 1


def test_truncation_restarts_from_zero(tmp_path):
    path = tmp_path / "log.ulm"
    r1 = make_record(start=1000.0)
    r2 = make_record(start=2000.0)
    path.write_text(format_record(r1) + "\n" + format_record(r1) + "\n")

    follower, seen = collect(path)
    assert follower.poll() == 2
    path.write_text(format_record(r2) + "\n")  # rotation: shorter file
    assert follower.poll() == 1
    assert follower.truncations == 1
    assert seen[-1][1].start_time == 2000.0


def test_missing_file_waits(tmp_path):
    path = tmp_path / "absent.ulm"
    follower, seen = collect(path)
    assert follower.poll() == 0
    path.write_text(format_record(make_record(start=1000.0)) + "\n")
    assert follower.poll() == 1


def test_seek_to_end_skips_existing_content(tmp_path):
    # `serve --follow` bulk-ingests first; the follower must not
    # deliver the historical records a second time.
    path = tmp_path / "LBL-ANL.ulm"
    r1 = make_record(start=1000.0)
    r2 = make_record(start=2000.0)
    path.write_text(format_record(r1) + "\n")

    follower, seen = collect(path)
    follower.seek_to_end()
    assert follower.poll() == 0          # nothing new yet
    with path.open("a") as fh:
        fh.write(format_record(r2) + "\n")
    assert follower.poll() == 1
    assert [r.start_time for _, r in seen] == [2000.0]


def test_seek_to_end_on_missing_file(tmp_path):
    path = tmp_path / "absent.ulm"
    follower, seen = collect(path)
    follower.seek_to_end()
    path.write_text(format_record(make_record(start=1000.0)) + "\n")
    assert follower.poll() == 1


def test_follower_feeds_the_service_observe(tmp_path):
    path = tmp_path / "LBL-ANL.ulm"
    records = [make_record(start=1000.0 + 100 * i) for i in range(5)]
    path.write_text("".join(format_record(r) + "\n" for r in records))

    service = PredictionService()
    follower = LogFollower(path, service.observe)
    assert follower.poll() == 5
    assert service.version("LBL-ANL") == 5
    assert len(service.history("LBL-ANL")) == 5


# ----------------------------------------------------------------------
# resilience: I/O errors, torn writes, same-size rotation
# ----------------------------------------------------------------------
def test_transient_os_error_is_counted_and_retried(tmp_path):
    from repro import faults
    from repro.faults import FaultInjector

    path = tmp_path / "log.ulm"
    r1 = make_record(start=1000.0)
    r2 = make_record(start=2000.0)
    path.write_text(format_record(r1) + "\n")

    follower, seen = collect(path)
    injector = FaultInjector().inject(
        "tail.read", error=OSError, message="EIO", times=2)
    with faults.injected(injector):
        assert follower.poll() == 0      # injected failure, no raise
        assert follower.poll() == 0
        assert follower.io_errors == 2
        assert follower.poll() == 1      # fault exhausted: reads catch up
    with path.open("a") as fh:
        fh.write(format_record(r2) + "\n")
    assert follower.poll() == 1
    assert [r.start_time for _, r in seen] == [1000.0, 2000.0]


def test_torn_multibyte_write_never_raises(tmp_path):
    # A UTF-8 sequence split across polls used to raise UnicodeDecodeError
    # out of poll(); buffering raw bytes makes the tear invisible.
    path = tmp_path / "log.ulm"
    line = format_record(
        make_record(start=1000.0, file_name="/home/ftp/données")
    ).encode("utf-8")
    split = line.index("données".encode("utf-8")) + 1  # mid-sequence
    path.write_bytes(line[:split])

    follower, seen = collect(path)
    assert follower.poll() == 0          # torn tail held back, no error
    with path.open("ab") as fh:
        fh.write(line[split:] + b"\n")
    assert follower.poll() == 1
    assert seen[0][1].file_name == "/home/ftp/données"


def test_undecodable_complete_line_is_a_counted_parse_error(tmp_path):
    path = tmp_path / "log.ulm"
    good = format_record(make_record(start=1000.0)).encode("utf-8")
    path.write_bytes(b"\xff\xfe garbage \xff\n" + good + b"\n")

    follower, seen = collect(path)
    assert follower.poll() == 1
    assert follower.errors == 1
    assert len(seen) == 1


def test_rotation_to_same_size_is_detected_via_inode(tmp_path):
    path = tmp_path / "log.ulm"
    line = format_record(make_record(start=1000.0)) + "\n"
    path.write_text(line + line)

    follower, seen = collect(path)
    assert follower.poll() == 2

    # Rotate: replace the file with a *same-size* fresh one.
    replacement = tmp_path / "log.ulm.new"
    new_line = format_record(make_record(start=2000.0)) + "\n"
    replacement.write_text(new_line + new_line)
    assert replacement.stat().st_size == path.stat().st_size
    replacement.rename(path)

    assert follower.poll() == 2          # offset-only tracking would miss this
    assert follower.truncations == 1
    assert [r.start_time for _, r in seen] == [1000.0, 1000.0, 2000.0, 2000.0]


def test_poll_mirrors_into_process_wide_counters(tmp_path):
    from repro.obs import get_registry

    reg = get_registry()
    delivered_before = reg.counter("tail_records_delivered", "").value
    errors_before = reg.counter("tail_parse_errors", "").value

    path = tmp_path / "log.ulm"
    path.write_text("NOT ULM\n" + format_record(make_record(start=1000.0)) + "\n")
    follower, _ = collect(path)
    assert follower.poll() == 1
    assert reg.counter("tail_records_delivered", "").value == delivered_before + 1
    assert reg.counter("tail_parse_errors", "").value == errors_before + 1
