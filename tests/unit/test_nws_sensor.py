"""NWS sensor: probe behaviour and periodic operation."""

import numpy as np
import pytest

from repro.nws import NwsSensor, ProbeConfig
from repro.sim import Engine
from repro.units import HOUR
from tests.unit.test_gridftp_transfer import make_path


def make_sensor(engine=None, config=None, load=0.5, seed=0):
    engine = engine or Engine(start_time=0.0)
    return NwsSensor(
        engine=engine,
        path=make_path(load=load),
        rng=np.random.default_rng(seed),
        config=config or ProbeConfig(),
    )


class TestProbeConfig:
    @pytest.mark.parametrize("kw", [
        dict(size=0), dict(buffer=0), dict(streams=0), dict(period=0),
        dict(period_jitter=-1), dict(jitter_sigma=-1),
        dict(period=100.0, period_jitter=100.0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            ProbeConfig(**kw)

    def test_paper_defaults(self):
        cfg = ProbeConfig()
        assert cfg.size == 64_000
        assert cfg.period == 300.0
        assert cfg.streams == 1


class TestProbe:
    def test_probe_records_measurement(self):
        sensor = make_sensor()
        bw = sensor.probe()
        assert bw > 0
        assert len(sensor.series) == 1
        assert sensor.series.last() == (0.0, bw)

    def test_probe_underestimates_large_transfers(self):
        """The core reason NWS data is 'not the right tool' (Section 2)."""
        sensor = make_sensor()
        probe_bw = sensor.probe()
        from repro.net import TcpModel
        gridftp_bw = TcpModel().bandwidth(
            500_000_000, rtt=0.05, available_bw=10e6, buffer=1_000_000, streams=8
        )
        assert gridftp_bw > 5 * probe_bw


class TestPeriodicOperation:
    def test_probes_roughly_every_period(self):
        engine = Engine(start_time=0.0)
        sensor = make_sensor(engine=engine)
        sensor.start()
        engine.run(until=6 * HOUR)
        # 6 h / 5 min = 72 expected; jitter makes it approximate.
        assert 65 <= len(sensor.series) <= 80

    def test_figure12_probe_count_scale(self):
        """Paper: ~1500 probes per two weeks at 5-minute spacing... per figure
        axis; we check the rate (12/hour) holds over a day."""
        engine = Engine(start_time=0.0)
        sensor = make_sensor(engine=engine)
        sensor.start()
        engine.run(until=24 * HOUR)
        assert 270 <= len(sensor.series) <= 305  # ~288/day

    def test_stop_halts_probing(self):
        engine = Engine(start_time=0.0)
        sensor = make_sensor(engine=engine)
        sensor.start()
        engine.run(until=1000.0)
        count = len(sensor.series)
        sensor.stop()
        engine.run(until=1 * HOUR)
        assert len(sensor.series) == count

    def test_double_start_rejected(self):
        sensor = make_sensor()
        sensor.start()
        with pytest.raises(RuntimeError):
            sensor.start()
