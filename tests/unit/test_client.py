"""ServiceClient behavior that doesn't need a live socket server."""

import pytest

from repro.client import ServiceClient, ServiceError, error_info


def test_error_info_normalizes_both_shapes():
    assert error_info(
        {"ok": False, "error": {"code": "bad_request", "message": "no size"}}
    ) == ("bad_request", "no size")
    assert error_info({"ok": False, "error": "boom"}) == ("error", "boom")


def test_service_error_from_response_carries_code_and_message():
    err = ServiceError.from_response(
        {"ok": False, "error": {"code": "unknown_op", "message": "op 'warp'"}}
    )
    assert err.code == "unknown_op"
    assert err.message == "op 'warp'"
    assert "unknown_op" in str(err)
    legacy = ServiceError.from_response({"ok": False, "error": "boom"})
    assert legacy.code == "error" and str(legacy) == "boom"


def test_client_is_idle_until_used(tmp_path):
    client = ServiceClient(tmp_path / "nowhere.sock")
    assert not client.connected
    assert "idle" in repr(client) and "json" in repr(client)
    client.close()  # closing an unconnected client is a no-op


def test_binary_flag_shows_in_repr(tmp_path):
    assert "binary" in repr(ServiceClient(tmp_path / "x.sock", binary=True))


def test_context_manager_closes(tmp_path):
    with ServiceClient(tmp_path / "x.sock") as client:
        pass
    assert not client.connected


def test_unreachable_server_raises_oserror_fail_fast(tmp_path):
    from repro.resilience import RetryPolicy

    client = ServiceClient(tmp_path / "never.sock",
                           retry=RetryPolicy(max_attempts=1))
    with pytest.raises(OSError):
        client.request({"op": "ping"})
    assert not client.connected  # a failed connect leaves no half-open state


def test_predict_batch_normalizes_tuple_items():
    sent = {}

    class Probe(ServiceClient):
        def request(self, req):
            sent.update(req)
            return {"ok": True, "v": 1, "count": len(req["items"]),
                    "results": [{"ok": True}] * len(req["items"])}

    client = Probe("unused.sock")
    results = client.predict_batch(
        [("LBL-ANL", 100), ("ISI-ANL", 200, "SIZE"), ("LBL-ANL", 300, None, 5.0),
         {"link": "X", "size": 1}],
        spec="C-AVG15",
    )
    assert len(results) == 4
    assert sent["spec"] == "C-AVG15"
    assert sent["items"] == [
        {"link": "LBL-ANL", "size": 100},
        {"link": "ISI-ANL", "size": 200, "spec": "SIZE"},
        {"link": "LBL-ANL", "size": 300, "now": 5.0},
        {"link": "X", "size": 1},
    ]


def test_call_raises_service_error_on_not_ok():
    class Probe(ServiceClient):
        def request(self, req):
            return {"ok": False, "v": 1,
                    "error": {"code": "unknown_op", "message": "nope"}}

    with pytest.raises(ServiceError) as err:
        Probe("unused.sock").call("warp")
    assert err.value.code == "unknown_op"


def test_request_stamps_the_protocol_version():
    seen = {}

    class Probe(ServiceClient):
        def _roundtrip(self, req):
            seen.update(req)
            return {"ok": True, "v": 1, "pong": True}

        def connect(self):
            self._sock = object()  # pretend; _roundtrip never touches it
            return self

    client = Probe("unused.sock")
    client.request({"op": "ping"})
    assert seen["v"] == 1
    client.request({"op": "ping", "v": 1})
    assert seen["v"] == 1
