"""ServiceClient behavior that doesn't need a live socket server."""

import pytest

from repro.client import ServiceClient, ServiceError, error_info


def test_error_info_normalizes_both_shapes():
    assert error_info(
        {"ok": False, "error": {"code": "bad_request", "message": "no size"}}
    ) == ("bad_request", "no size")
    assert error_info({"ok": False, "error": "boom"}) == ("error", "boom")


def test_service_error_from_response_carries_code_and_message():
    err = ServiceError.from_response(
        {"ok": False, "error": {"code": "unknown_op", "message": "op 'warp'"}}
    )
    assert err.code == "unknown_op"
    assert err.message == "op 'warp'"
    assert "unknown_op" in str(err)
    legacy = ServiceError.from_response({"ok": False, "error": "boom"})
    assert legacy.code == "error" and str(legacy) == "boom"


def test_client_is_idle_until_used(tmp_path):
    client = ServiceClient(tmp_path / "nowhere.sock")
    assert not client.connected
    assert "idle" in repr(client) and "json" in repr(client)
    client.close()  # closing an unconnected client is a no-op


def test_binary_flag_shows_in_repr(tmp_path):
    assert "binary" in repr(ServiceClient(tmp_path / "x.sock", binary=True))


def test_context_manager_closes(tmp_path):
    with ServiceClient(tmp_path / "x.sock") as client:
        pass
    assert not client.connected


def test_unreachable_server_raises_oserror_fail_fast(tmp_path):
    from repro.resilience import RetryPolicy

    client = ServiceClient(tmp_path / "never.sock",
                           retry=RetryPolicy(max_attempts=1))
    with pytest.raises(OSError):
        client.request({"op": "ping"})
    assert not client.connected  # a failed connect leaves no half-open state


def test_predict_batch_normalizes_tuple_items():
    sent = {}

    class Probe(ServiceClient):
        def request(self, req):
            sent.update(req)
            return {"ok": True, "v": 1, "count": len(req["items"]),
                    "results": [{"ok": True}] * len(req["items"])}

    client = Probe("unused.sock")
    results = client.predict_batch(
        [("LBL-ANL", 100), ("ISI-ANL", 200, "SIZE"), ("LBL-ANL", 300, None, 5.0),
         {"link": "X", "size": 1}],
        spec="C-AVG15",
    )
    assert len(results) == 4
    assert sent["spec"] == "C-AVG15"
    assert sent["items"] == [
        {"link": "LBL-ANL", "size": 100},
        {"link": "ISI-ANL", "size": 200, "spec": "SIZE"},
        {"link": "LBL-ANL", "size": 300, "now": 5.0},
        {"link": "X", "size": 1},
    ]


def test_call_raises_service_error_on_not_ok():
    class Probe(ServiceClient):
        def request(self, req):
            return {"ok": False, "v": 1,
                    "error": {"code": "unknown_op", "message": "nope"}}

    with pytest.raises(ServiceError) as err:
        Probe("unused.sock").call("warp")
    assert err.value.code == "unknown_op"


def test_request_stamps_the_protocol_version():
    seen = {}

    class Probe(ServiceClient):
        def _roundtrip(self, req):
            seen.update(req)
            return {"ok": True, "v": 1, "pong": True}

        def connect(self):
            self._sock = object()  # pretend; _roundtrip never touches it
            return self

    client = Probe("unused.sock")
    client.request({"op": "ping"})
    assert seen["v"] == 1
    client.request({"op": "ping", "v": 1})
    assert seen["v"] == 1


# ----------------------------------------------------------------------
# address parsing (unix path vs TCP host:port)
# ----------------------------------------------------------------------
def test_address_parsing_tcp_and_unix():
    from repro.client import _parse_address

    assert _parse_address("127.0.0.1:9000") == ("tcp", ("127.0.0.1", 9000))
    assert _parse_address("tcp://host.example:80") == \
        ("tcp", ("host.example", 80))
    assert _parse_address("/tmp/repro.sock") == ("unix", "/tmp/repro.sock")
    # A relative path with no colon stays a unix path ...
    assert _parse_address("repro.sock") == ("unix", "repro.sock")
    # ... and anything path-like with a colon does too.
    assert _parse_address("/tmp/odd:name.sock") == \
        ("unix", "/tmp/odd:name.sock")


# ----------------------------------------------------------------------
# error classification: unavailable retries, overloaded surfaces
# ----------------------------------------------------------------------
class FlakyShard(ServiceClient):
    """Answers `unavailable` a fixed number of times, then succeeds."""

    def __init__(self, failures, code="unavailable", **kw):
        from repro.resilience import RetryPolicy

        kw.setdefault("retry", RetryPolicy(
            max_attempts=4, base_delay=0.001, jitter=0.0))
        super().__init__("unused.sock", **kw)
        self.failures = failures
        self.code = code
        self.attempts = 0

    def request(self, req):
        self.attempts += 1
        if self.attempts <= self.failures:
            return {"ok": False, "v": 1,
                    "error": {"code": self.code, "message": "shard down"}}
        return {"ok": True, "v": 1, "pong": True}


def test_unavailable_answers_retry_under_the_connect_policy():
    client = FlakyShard(failures=2)
    assert client.call("ping")["pong"] is True
    assert client.attempts == 3  # two unavailable answers were retried


def test_unavailable_exhaustion_raises_the_original_service_error():
    client = FlakyShard(failures=99)
    with pytest.raises(ServiceError) as excinfo:
        client.call("ping")
    assert excinfo.value.code == "unavailable"
    assert client.attempts == 4  # the policy's cap, then surfaced


def test_overloaded_surfaces_immediately_without_retry():
    client = FlakyShard(failures=99, code="overloaded")
    with pytest.raises(ServiceError) as excinfo:
        client.call("ping")
    assert excinfo.value.code == "overloaded"
    assert client.attempts == 1  # retrying into shed load deepens the queue


def test_other_error_codes_still_surface_immediately():
    client = FlakyShard(failures=99, code="bad_request")
    with pytest.raises(ServiceError) as excinfo:
        client.call("ping")
    assert excinfo.value.code == "bad_request"
    assert client.attempts == 1


def test_observe_helper_computes_bandwidth_and_meta_trio():
    sent = {}

    class Probe(ServiceClient):
        def request(self, req):
            sent.update(req)
            return {"ok": True, "v": 1, "link": req["link"], "version": 3}

    version = Probe("unused.sock").observe(
        "LBL-ANL", 100, 10.0, 20.0, source_ip="10.0.0.1")
    assert version == 3
    assert sent["bandwidth"] == pytest.approx(10.0)  # size / (end - start)
    # Naming any meta field sends the full trio (defaults fill the rest),
    # keeping the request on the fixed-width binary codec.
    assert sent["file_name"] == "/transfer" and sent["volume"] == "/"
    assert sent["operation"] == "read" and sent["streams"] == 1
