"""Best/worst relative performance."""

import numpy as np

from repro.core import paper_classification
from repro.core.evaluation import EvaluationResult, PredictionTrace
from repro.core.relative import relative_performance
from repro.units import MB


def trace(name, indices, predicted, actual, sizes=None):
    n = len(indices)
    return PredictionTrace(
        name=name,
        indices=np.asarray(indices),
        predicted=np.asarray(predicted, dtype=float),
        actual=np.asarray(actual, dtype=float),
        sizes=np.asarray(sizes if sizes is not None else [100 * MB] * n),
        times=np.arange(n, dtype=float),
        abstentions=0,
    )


def result_of(*traces):
    return EvaluationResult(
        traces={t.name: t for t in traces}, training=15, n_records=100
    )


def test_best_and_worst_tallied():
    # "good" is exact on both transfers; "bad" is off by 50% on both.
    res = result_of(
        trace("good", [15, 16], [10, 10], [10, 10]),
        trace("bad", [15, 16], [5, 5], [10, 10]),
    )
    perf = relative_performance(res)
    assert perf.compared == 2
    assert perf.best_pct("good") == 100.0
    assert perf.worst_pct("bad") == 100.0
    assert perf.worst_pct("good") == 0.0


def test_mixed_outcomes():
    res = result_of(
        trace("a", [15, 16], [10, 2], [10, 10]),  # exact, then terrible
        trace("b", [15, 16], [8, 9], [10, 10]),   # mediocre, then best
    )
    perf = relative_performance(res)
    assert perf.best_pct("a") == 50.0
    assert perf.worst_pct("a") == 50.0
    assert perf.best_pct("b") == 50.0


def test_abstainer_does_not_compete():
    res = result_of(
        trace("present", [15, 16], [10, 10], [10, 10]),
        trace("partial", [15], [1], [10]),  # abstained on index 16
    )
    perf = relative_performance(res)
    # Index 16 has one competitor -> not compared.
    assert perf.compared == 1
    assert perf.worst_pct("partial") == 100.0


def test_single_competitor_transfers_excluded():
    res = result_of(trace("only", [15], [1], [10]))
    perf = relative_performance(res)
    assert perf.compared == 0
    assert np.isnan(perf.best_pct("only"))


def test_tie_goes_to_battery_order():
    res = result_of(
        trace("first", [15], [9], [10]),
        trace("second", [15], [11], [10]),  # same 10% error
    )
    perf = relative_performance(res)
    assert perf.best_counts["first"] == 1
    assert perf.best_counts["second"] == 0


def test_class_restriction():
    cls = paper_classification()
    res = result_of(
        trace("a", [15, 16], [10, 2], [10, 10], sizes=[10 * MB, 900 * MB]),
        trace("b", [15, 16], [8, 9], [10, 10], sizes=[10 * MB, 900 * MB]),
    )
    small = relative_performance(res, cls, "10MB")
    assert small.compared == 1
    assert small.best_pct("a") == 100.0
    large = relative_performance(res, cls, "1GB")
    assert large.best_pct("b") == 100.0


def test_table_rendering_fields():
    res = result_of(
        trace("a", [15], [10], [10]),
        trace("b", [15], [5], [10]),
    )
    table = relative_performance(res).table()
    assert table["a"]["best"] == 100.0
    assert table["b"]["worst"] == 100.0
