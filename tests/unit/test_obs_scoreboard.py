"""render_scoreboard — the pure text layer behind ``repro status``."""

from repro.obs.scoreboard import render_scoreboard


def _status(**overrides):
    status = {
        "default_spec": "C-AVG15",
        "link_count": 2,
        "links": {"A": {"records": 40, "version": 40},
                  "B": {"records": 10, "version": 10}},
        "ingested": 50.0,
        "predicts": 12.0,
        "cache": {"entries": 3.0, "capacity": 64.0, "hits": 9.0,
                  "misses": 3.0, "hit_ratio": 0.75},
        "streaming": {"streamed": 10.0, "recomputed": 2.0},
        "accuracy": {
            "enabled": True, "window": 32, "recorded": 12, "scored": 11,
            "dropped": 0, "pending": 1, "link_count": 2,
            "overall": {"count": 11, "abstentions": 0, "unscorable": 0,
                        "mape": 42.5, "mse": 1e10, "rmse": 1e5,
                        "bias_pct": -3.0, "calibration": {},
                        "window": {"count": 11, "mape": 40.0, "mse": 9e9},
                        "last_abs_pct": 12.0, "last_time": 1.0},
            "by_spec": {"C-AVG15": {
                "count": 11, "abstentions": 0, "unscorable": 0,
                "mape": 42.5, "mse": 1e10, "rmse": 1e5, "bias_pct": -3.0,
                "calibration": {},
                "window": {"count": 11, "mape": 40.0, "mse": 9e9},
                "last_abs_pct": 12.0, "last_time": 1.0}},
            "links": {
                "A": {"overall": {"count": 11, "mape": 42.5,
                                  "window": {"count": 11, "mape": 40.0},
                                  "last_abs_pct": 12.0},
                      "by_spec": {}, "kinds": {"streamed": 11}},
                "B": {"overall": {"count": 0, "mape": None,
                                  "window": {"count": 0, "mape": None},
                                  "last_abs_pct": None},
                      "by_spec": {}, "kinds": {}},
            },
        },
    }
    status.update(overrides)
    return status


def test_scoreboard_shows_every_section():
    out = render_scoreboard(_status())
    assert "links=2" in out
    assert "cache  hit=75.0% (9/12)" in out
    assert "streaming  hit=83.3%" in out
    assert "accuracy  scored=11  pending=1  dropped=0  mape=42.5%" in out
    assert "mape[32]=40.0%" in out
    assert "C-AVG15" in out
    # Links with worse rolling error sort first; unscored ones render
    # dashes rather than crashing on None.
    body = out[out.index("link  "):]
    assert body.index("A ") < body.index("B ")
    assert "-" in body


def test_scoreboard_with_metrics_shows_protocol_split():
    metrics = {
        "server_requests": {"type": "counter", "value": 7.0, "series": [
            {"labels": {"protocol": "json"}, "type": "counter", "value": 5.0},
            {"labels": {"protocol": "binary"}, "type": "counter",
             "value": 2.0},
        ]},
        "server_bad_requests": {"type": "counter", "value": 1.0},
    }
    out = render_scoreboard(_status(), metrics)
    assert "server  requests=7 (json=5, binary=2)  bad=1" in out


def test_scoreboard_when_tracker_disabled():
    out = render_scoreboard(_status(accuracy={"enabled": False}))
    assert "accuracy  disabled" in out


def test_scoreboard_shows_store_residency():
    out = render_scoreboard(_status(store={
        "root": "/tmp/state", "resident_links": 1, "evicted_links": 1,
        "stored_links": 2, "bytes_on_disk": 2_500_000, "evictions": 3.0,
        "revivals": 2.0, "max_resident": 1,
    }))
    assert "store  resident=1  evicted=1  stored=2" in out
    assert "disk=2.5MB" in out


def test_scoreboard_shows_fleet_health():
    out = render_scoreboard(_status(fleet={
        "workers": 2,
        "fallback": True,
        "last_good_entries": 12,
        "shards": [
            {"shard": 0, "up": True, "pending": 3, "restarts": 0,
             "pid": 4242, "breaker": {"state": "closed"}},
            {"shard": 1, "up": False, "pending": 0, "restarts": 2,
             "pid": None, "breaker": {"state": "open"}},
        ],
    }))
    assert "fleet  workers=1/2 up  fallback=on  last-good=12" in out
    assert "shard" in out and "breaker" in out
    assert "closed" in out and "open" in out
    assert "NO" in out        # the down shard is visually loud
    assert "4242" in out


def test_scoreboard_without_fleet_section_is_unchanged():
    assert "fleet" not in render_scoreboard(_status())
