"""Dataset: multi-link construction, partitioning, parallel evaluation."""

import numpy as np
import pytest

from repro.core.engine import evaluate, evaluate_dataset
from repro.data import Dataset, TransferFrame
from repro.logs.logfile import TransferLog
from repro.logs.ulm import format_record

from tests.conftest import make_record


def _records(n, source="140.221.65.69", start=1_000_000.0):
    return [
        make_record(start=start + 1000.0 * i, source_ip=source,
                    size=(i % 4 + 1) * 10_000_000)
        for i in range(n)
    ]


@pytest.fixture
def two_logs(tmp_path):
    paths = []
    for name, start in [("LBL-ANL", 1_000_000.0), ("ISI-ANL", 2_000_000.0)]:
        path = tmp_path / f"{name}.ulm"
        path.write_text(
            "\n".join(format_record(r) for r in _records(25, start=start)) + "\n"
        )
        paths.append(path)
    return paths


class TestConstruction:
    def test_from_ulm_links_by_stem(self, two_logs):
        dataset = Dataset.from_ulm(two_logs, cache=False)
        assert dataset.links() == ["LBL-ANL", "ISI-ANL"]
        assert dataset.total_records == 50
        assert len(dataset["LBL-ANL"]) == 25

    def test_explicit_links(self, two_logs):
        dataset = Dataset.from_ulm(two_logs, cache=False, links=["a", "b"])
        assert dataset.links() == ["a", "b"]

    def test_duplicate_stems_merge(self, tmp_path, two_logs):
        dataset = Dataset.from_ulm([two_logs[0], two_logs[0]], cache=False)
        assert dataset.links() == ["LBL-ANL"]
        assert len(dataset["LBL-ANL"]) == 50

    def test_from_logs(self):
        log = TransferLog()
        log.extend(_records(5))
        dataset = Dataset.from_logs({"x": log})
        assert dataset["x"].to_records() == log.records()

    def test_rejects_non_frames(self):
        with pytest.raises(TypeError):
            Dataset({"x": [1, 2, 3]})

    def test_partition_by_source(self):
        mixed = TransferFrame.from_records(
            _records(4, source="10.0.0.1") + _records(4, source="10.0.0.2")
        )
        dataset = Dataset.partition_by_link(mixed, key="sources")
        assert dataset.links() == ["10.0.0.1", "10.0.0.2"]
        assert all(
            (dataset[link].sources == link).all() for link in dataset
        )
        assert dataset.total_records == len(mixed)

    def test_partition_by_callable(self):
        frame = TransferFrame.from_records(_records(6))
        dataset = Dataset.partition_by_link(
            frame, key=lambda f: np.where(f.sizes > 20_000_000, "big", "small")
        )
        assert set(dataset.links()) == {"big", "small"}

    def test_merge(self, two_logs):
        a = Dataset.from_ulm(two_logs[0], cache=False)
        b = Dataset.from_ulm(two_logs[1], cache=False)
        merged = a.merge(b)
        assert merged.links() == ["LBL-ANL", "ISI-ANL"]


class TestEvaluateDataset:
    def test_matches_serial_evaluate(self, two_logs):
        dataset = Dataset.from_ulm(two_logs, cache=False)
        parallel = evaluate_dataset(dataset, ["C-AVG15", "AVG"], training=5)
        for link in dataset:
            serial = evaluate(dataset[link], ["C-AVG15", "AVG"], training=5)
            for spec in ("C-AVG15", "AVG"):
                assert np.array_equal(
                    parallel[link][spec].predicted, serial[spec].predicted
                )
                assert np.array_equal(
                    parallel[link][spec].indices, serial[spec].indices
                )

    def test_forced_serial_matches_pool(self, two_logs):
        dataset = Dataset.from_ulm(two_logs, cache=False)
        pooled = evaluate_dataset(dataset, "AVG", training=5, max_workers=4)
        serial = evaluate_dataset(dataset, "AVG", training=5, max_workers=1)
        for link in dataset:
            assert np.array_equal(
                pooled[link]["AVG"].predicted, serial[link]["AVG"].predicted
            )

    def test_empty_dataset(self):
        assert evaluate_dataset(Dataset({})) == {}

    def test_bad_spec_raises_before_spawning(self, two_logs):
        dataset = Dataset.from_ulm(two_logs, cache=False)
        with pytest.raises(ValueError):
            evaluate_dataset(dataset, "NOPE", engine="fast")
