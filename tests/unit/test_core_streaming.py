"""Unit tests for the incremental streaming summaries."""

import numpy as np
import pytest

from repro.core.classification import paper_classification
from repro.core.predictors.registry import ALL_PREDICTOR_NAMES, resolve
from repro.core.streaming import (
    RECENT_CAPACITY,
    StreamingBank,
    StreamingUnavailable,
)
from repro.units import GB, HOUR, MB

CLS = paper_classification()


def make_bank(times, values, sizes=None, ops=None):
    bank = StreamingBank(CLS)
    n = len(times)
    sizes = sizes if sizes is not None else [100 * MB] * n
    ops = ops if ops is not None else [0] * n
    for t, v, s, op in zip(times, values, sizes, ops):
        bank.add(float(t), float(v), int(s), int(op))
    return bank


def answer(bank, spec, size=100 * MB, now=None):
    return bank.answer(resolve(spec, classification=CLS), size, now)


class TestBasicSummaries:
    def test_empty_bank_abstains_on_every_battery_spec(self):
        bank = StreamingBank(CLS)
        for name in ALL_PREDICTOR_NAMES:
            assert answer(bank, name, now=1000.0) is None, name

    def test_total_average_and_last_value(self):
        bank = make_bank([1, 2, 3], [10.0, 20.0, 60.0])
        assert answer(bank, "AVG") == pytest.approx(30.0)
        assert answer(bank, "LV") == 60.0

    def test_windowed_mean_and_median_use_ring_tail(self):
        values = np.arange(1.0, 41.0)  # 1..40
        bank = make_bank(np.arange(40.0), values)
        assert answer(bank, "AVG5") == pytest.approx(values[-5:].mean())
        assert answer(bank, "MED5") == float(np.median(values[-5:]))
        assert answer(bank, "AVG25") == pytest.approx(values[-25:].mean())
        assert answer(bank, "MED25") == float(np.median(values[-25:]))

    def test_running_median_even_and_odd(self):
        bank = make_bank([1, 2, 3], [5.0, 1.0, 9.0])
        assert answer(bank, "MED") == 5.0
        bank.add(4.0, 7.0, 100 * MB, 0)
        assert answer(bank, "MED") == 6.0  # (5+7)/2

    def test_unbanked_spec_raises_unavailable(self):
        bank = make_bank([1, 2, 3], [1.0, 2.0, 3.0])
        with pytest.raises(StreamingUnavailable):
            answer(bank, "SIZE")
        with pytest.raises(StreamingUnavailable):
            bank.answer(resolve("AVG40"), 100 * MB, None)  # window > ring


class TestTemporalWindows:
    def test_temporal_mean_evicts_by_anchor(self):
        bank = make_bank([0.0, 1 * HOUR, 6 * HOUR], [10.0, 20.0, 40.0])
        # Anchored just after the last record: 5hr window spans (1hr, 6hr].
        assert answer(bank, "AVG5hr", now=6 * HOUR) == pytest.approx(
            (20.0 + 40.0) / 2
        )

    def test_window_boundary_is_inclusive(self):
        # history.since uses side="left": an observation exactly at the
        # cutoff is inside the window.
        bank = make_bank([0.0, 5 * HOUR], [10.0, 30.0])
        assert answer(bank, "AVG5hr", now=10 * HOUR) == 30.0
        bank2 = make_bank([0.0, 5 * HOUR], [10.0, 30.0])
        assert answer(bank2, "AVG5hr", now=5 * HOUR) == pytest.approx(20.0)

    def test_empty_window_abstains(self):
        bank = make_bank([0.0], [10.0])
        assert answer(bank, "AVG5hr", now=100 * HOUR) is None

    def test_regressed_anchor_raises_unavailable(self):
        bank = make_bank([0.0, 10 * HOUR], [10.0, 20.0])
        assert answer(bank, "AVG5hr", now=10 * HOUR) == 20.0  # expires t=0
        with pytest.raises(StreamingUnavailable):
            answer(bank, "AVG5hr", now=4 * HOUR)  # window starts before boundary

    def test_anchor_defaults_to_last_observation(self):
        bank = make_bank([0.0, 1 * HOUR, 2 * HOUR], [10.0, 20.0, 30.0])
        assert answer(bank, "AVG5hr", now=None) == pytest.approx(20.0)


class TestArSummaries:
    def test_matches_generic_ar_fit(self):
        from repro.core.history import History

        times = np.arange(10.0)
        values = np.array([5.0, 7.0, 6.0, 9.0, 8.0, 11.0, 10.0, 13.0, 12.0, 15.0])
        history = History(times=times, values=values,
                         sizes=np.full(10, 100 * MB, dtype=np.int64))
        bank = make_bank(times, values)
        for spec in ("AR", "AR5d", "AR10d"):
            expected = resolve(spec).predict(history, now=times[-1])
            got = answer(bank, spec, now=times[-1])
            assert got == pytest.approx(expected, rel=1e-9), spec

    def test_below_min_points_falls_back_to_mean(self):
        bank = make_bank([1.0, 2.0], [10.0, 30.0])
        assert answer(bank, "AR", now=2.0) == pytest.approx(20.0)

    def test_constant_series_is_singular_falls_back_to_mean(self):
        bank = make_bank(np.arange(6.0), [42.0] * 6)
        assert answer(bank, "AR", now=5.0) == pytest.approx(42.0)

    def test_windowed_ar_evicts_pairs_and_min(self):
        from repro.core.history import History
        from repro.units import DAY

        times = np.array([0.0, 1.0, 2.0, 4.9, 5.0, 5.1, 5.2]) * DAY
        values = np.array([1.0, 100.0, 2.0, 50.0, 60.0, 55.0, 65.0])
        history = History(times=times, values=values,
                         sizes=np.full(7, 100 * MB, dtype=np.int64))
        bank = make_bank(times, values)
        anchor = float(times[-1])
        expected = resolve("AR5d").predict(history, now=anchor)
        assert answer(bank, "AR5d", now=anchor) == pytest.approx(expected, rel=1e-9)


class TestClassifiedVariants:
    def test_per_class_series_are_independent(self):
        sizes = [10 * MB, 1 * GB, 10 * MB, 1 * GB]
        values = [10.0, 1000.0, 20.0, 2000.0]
        bank = make_bank(np.arange(4.0), values, sizes=sizes)
        assert answer(bank, "C-AVG", size=10 * MB) == pytest.approx(15.0)
        assert answer(bank, "C-AVG", size=1 * GB) == pytest.approx(1500.0)
        assert answer(bank, "AVG") == pytest.approx(757.5)

    def test_unseen_class_abstains_without_fallback(self):
        bank = make_bank([1.0], [10.0], sizes=[10 * MB])
        assert answer(bank, "C-AVG", size=1 * GB) is None

    def test_fallback_retries_unclassified(self):
        bank = make_bank([1.0, 2.0], [10.0, 30.0], sizes=[10 * MB, 10 * MB])
        predictor = resolve("C-AVG", classification=CLS, fallback=True)
        assert bank.answer(predictor, 1 * GB, None) == pytest.approx(20.0)

    def test_classification_mismatch_raises_unavailable(self):
        bank = make_bank([1.0], [10.0])
        foreign = resolve("C-AVG", classification=paper_classification())
        with pytest.raises(StreamingUnavailable):
            bank.answer(foreign, 100 * MB, None)


class TestRebuild:
    def test_rebuild_counts_and_reports_reason(self):
        reasons = []
        bank = StreamingBank(CLS, on_rebuild=reasons.append)
        bank.rebuild(np.array([1.0]), np.array([5.0]),
                     np.array([100 * MB]), np.array([0]), reason="out_of_order")
        assert bank.rebuilds == 1
        assert reasons == ["out_of_order"]

    def test_rebuilt_bank_resumes_incrementally(self):
        times = np.arange(50.0)
        values = np.linspace(1.0, 50.0, 50)
        sizes = np.full(50, 100 * MB, dtype=np.int64)
        ops = np.zeros(50, dtype=np.int8)

        rebuilt = StreamingBank(CLS)
        rebuilt.rebuild(times[:40], values[:40], sizes[:40], ops[:40])
        folded = make_bank(times[:40], values[:40])
        for t, v in zip(times[40:], values[40:]):
            rebuilt.add(t, v, 100 * MB, 0)
            folded.add(t, v, 100 * MB, 0)
        for spec in ("AVG", "LV", "AVG5", "MED", "MED25", "AR"):
            a = answer(rebuilt, spec, now=times[-1])
            b = answer(folded, spec, now=times[-1])
            assert a == pytest.approx(b, rel=1e-12), spec


class TestMdsAttributes:
    def test_op_summaries_split_by_direction(self):
        bank = make_bank([1, 2, 3, 4], [10.0, 99.0, 20.0, 77.0],
                         ops=[0, 1, 0, 1])
        reads = bank.op_summary(0)
        writes = bank.op_summary(1)
        assert reads.count == 2 and reads.mean == pytest.approx(15.0)
        assert writes.count == 2 and writes.maximum == 99.0
        assert bank.op_summary(7).count == 0

    def test_class_read_means_only_count_reads(self):
        bank = make_bank([1, 2, 3], [10.0, 30.0, 999.0],
                         sizes=[10 * MB, 10 * MB, 10 * MB], ops=[0, 0, 1])
        means = bank.class_read_means()
        assert list(means.values()) == [pytest.approx(20.0)]

    def test_recent_reads_tail_and_overflow(self):
        n = RECENT_CAPACITY + 10
        bank = make_bank(np.arange(float(n)), np.arange(1.0, n + 1.0))
        assert bank.recent_reads(5) == [n - 4.0, n - 3.0, n - 2.0, n - 1.0, float(n)]
        # More reads exist than the ring holds: the bank cannot answer.
        assert bank.recent_reads(RECENT_CAPACITY + 5) is None

    def test_recent_reads_short_history_returns_everything(self):
        bank = make_bank([1, 2], [5.0, 6.0])
        assert bank.recent_reads(10) == [5.0, 6.0]
