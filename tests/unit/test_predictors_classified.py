"""Classified predictor wrapper."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import ClassifiedPredictor, TotalAverage
from repro.core.predictors.base import PredictorError
from repro.units import MB


@pytest.fixture
def mixed_history():
    # Small files slow (1 MB/s), large files fast (8 MB/s).
    return History(
        times=np.arange(6, dtype=float),
        values=np.array([1e6, 8e6, 1e6, 8e6, 1e6, 8e6]),
        sizes=np.array([10 * MB, 900 * MB] * 3),
    )


def test_filters_history_to_target_class(mixed_history, classification):
    p = ClassifiedPredictor(TotalAverage(), classification)
    small = p.predict(mixed_history, target_size=20 * MB, now=10.0)
    large = p.predict(mixed_history, target_size=1000 * MB, now=10.0)
    assert small == pytest.approx(1e6)
    assert large == pytest.approx(8e6)


def test_unclassified_would_blur(mixed_history):
    blurred = TotalAverage().predict(mixed_history, target_size=20 * MB, now=10.0)
    assert blurred == pytest.approx(4.5e6)  # the mixing classification avoids


def test_requires_target_size(mixed_history, classification):
    p = ClassifiedPredictor(TotalAverage(), classification)
    with pytest.raises(PredictorError):
        p.predict(mixed_history, now=10.0)


def test_abstains_when_class_empty(mixed_history, classification):
    p = ClassifiedPredictor(TotalAverage(), classification)
    assert p.predict(mixed_history, target_size=100 * MB, now=10.0) is None


def test_fallback_uses_full_history(mixed_history, classification):
    p = ClassifiedPredictor(TotalAverage(), classification, fallback=True)
    assert p.predict(mixed_history, target_size=100 * MB, now=10.0) == pytest.approx(4.5e6)


def test_name_prefix(classification):
    assert ClassifiedPredictor(TotalAverage(), classification).name == "C-AVG"


def test_double_wrapping_rejected(classification):
    inner = ClassifiedPredictor(TotalAverage(), classification)
    with pytest.raises(PredictorError):
        ClassifiedPredictor(inner, classification)


def test_custom_classification():
    from repro.core import Classification

    cls = Classification(edges=(100 * MB,), labels=("s", "l"))
    h = History(
        times=np.arange(2, dtype=float),
        values=np.array([1e6, 9e6]),
        sizes=np.array([50 * MB, 200 * MB]),
    )
    p = ClassifiedPredictor(TotalAverage(), cls)
    assert p.predict(h, target_size=60 * MB, now=5.0) == pytest.approx(1e6)
