"""The monitor: record construction and overhead measurement."""

import pytest

from repro.gridftp import Monitor, TransferEngine, TransferRequest
from repro.logs import Operation
from repro.storage import Disk
from repro.units import MB
from tests.unit.test_gridftp_transfer import make_path


@pytest.fixture
def outcome():
    engine = TransferEngine(rng=None)
    return engine.execute(
        make_path(),
        TransferRequest(size=100 * MB, streams=8, buffer=1 * MB, start_time=50.0),
        Disk("s"),
        Disk("d"),
    )


def test_record_fields_from_outcome(outcome):
    monitor = Monitor(host="lbl.gov")
    record = monitor.record(
        outcome,
        source_ip="140.221.65.69",
        file_name="/home/ftp/data/100M",
        volume="/home/ftp",
        operation=Operation.READ,
    )
    assert record.file_size == 100 * MB
    assert record.start_time == 50.0
    assert record.end_time == outcome.end_time
    assert record.bandwidth == pytest.approx(outcome.bandwidth)
    assert monitor.log.records() == [record]


def test_bandwidth_is_end_to_end_sustained(outcome):
    """BW = size / total time, including overheads — the paper's formula."""
    monitor = Monitor()
    record = monitor.record(
        outcome, source_ip="1.2.3.4", file_name="/v/f", volume="/v",
        operation=Operation.READ,
    )
    assert record.bandwidth == pytest.approx(100 * MB / outcome.duration)
    # Strictly less than the steady network rate: overheads are charged.
    assert record.bandwidth < outcome.network_timing.steady_rate


def test_timed_record_reports_cost_and_size(outcome):
    monitor = Monitor(host="lbl.gov")
    record, elapsed, nbytes = monitor.timed_record(
        outcome, source_ip="1.2.3.4", file_name="/v/f", volume="/v",
        operation=Operation.WRITE,
    )
    assert record in monitor.log.records()
    # The paper's claims: ~25 ms per transfer, < 512 bytes per entry.
    # Our pure-Python path must be well under both.
    assert elapsed < 0.025
    assert nbytes < 512
