"""Backtested uncertainty and risk-adjusted ranking."""

import numpy as np
import pytest

from repro.core import (
    History,
    ReplicaBroker,
    RiskAdjustedRanking,
    backtest_error,
)
from repro.core.predictors import LastValue, TotalAverage
from repro.logs import TransferLog
from repro.storage import ReplicaCatalog
from repro.units import MB
from tests.conftest import make_record

CLIENT = "140.221.65.69"


def history_of(values):
    n = len(values)
    return History(
        times=np.arange(n, dtype=float) * 3600.0,
        values=np.asarray(values, dtype=float),
        sizes=np.full(n, 500 * MB),
    )


class TestBacktestError:
    def test_zero_error_on_constant_series(self):
        err = backtest_error(TotalAverage(), history_of([5e6] * 20))
        assert err == pytest.approx(0.0)

    def test_known_error_on_alternating_series(self):
        # LastValue on 10,20,10,20,... is always off by |20-10|/actual.
        values = [10.0, 20.0] * 10
        err = backtest_error(LastValue(), history_of(values), lookback=10)
        # Errors alternate 10/20=0.5 and 10/10=1.0 -> mean 0.75.
        assert err == pytest.approx(0.75)

    def test_noisier_history_higher_error(self):
        rng = np.random.default_rng(0)
        calm = history_of(5e6 * (1 + 0.05 * rng.standard_normal(30)))
        wild = history_of(5e6 * (1 + 0.5 * np.abs(rng.standard_normal(30)) + 0.01))
        assert backtest_error(TotalAverage(), wild) > backtest_error(TotalAverage(), calm)

    def test_abstains_when_too_short(self):
        assert backtest_error(TotalAverage(), history_of([5e6, 6e6])) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            backtest_error(TotalAverage(), history_of([1.0] * 5), lookback=0)


def site_log(values, client=CLIENT):
    log = TransferLog()
    for i, bw in enumerate(values):
        log.append(make_record(start=1000.0 + i * 3600.0, size=500 * MB,
                               bandwidth=float(bw), source_ip=client))
    return log


@pytest.fixture
def risky_world():
    """Site FAST: higher mean, wild variance.  Site STEADY: slightly lower
    mean, near-zero variance."""
    rng = np.random.default_rng(1)
    fast = 8e6 * np.abs(1 + 0.9 * rng.standard_normal(20)) + 1e5
    steady = np.full(20, 7e6)
    catalog = ReplicaCatalog()
    catalog.register("f", "FAST", 500 * MB)
    catalog.register("f", "STEADY", 500 * MB)
    logs = {"FAST": site_log(fast), "STEADY": site_log(steady)}
    return catalog, logs


class TestRiskAdjustedRanking:
    def test_zero_aversion_matches_plain_broker(self, risky_world):
        catalog, logs = risky_world
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        plain = [r.site for r in broker.rank("f", CLIENT, now=1e9)]
        risk = RiskAdjustedRanking(broker, risk_aversion=0.0)
        adjusted = [r.site for r in risk.rank("f", CLIENT, now=1e9)]
        assert adjusted == plain

    def test_full_aversion_prefers_steady_site(self, risky_world):
        catalog, logs = risky_world
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        risk = RiskAdjustedRanking(broker, risk_aversion=1.0)
        ranked = risk.rank("f", CLIENT, now=1e9)
        assert ranked[0].site == "STEADY"
        assert ranked[0].error == pytest.approx(0.0)
        assert ranked[1].error > 0.1

    def test_adjusted_bandwidth_formula(self, risky_world):
        catalog, logs = risky_world
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        risk = RiskAdjustedRanking(broker, risk_aversion=0.5)
        for r in risk.rank("f", CLIENT, now=1e9):
            assert r.adjusted_bandwidth == pytest.approx(
                r.predicted_bandwidth * (1 - 0.5 * min(r.error, 1.0))
            )

    def test_unknown_error_discounted_by_default(self):
        catalog = ReplicaCatalog()
        catalog.register("f", "NEW", 500 * MB)
        catalog.register("f", "OLD", 500 * MB)
        logs = {
            "NEW": site_log([8e6, 8e6]),       # too short to backtest
            "OLD": site_log([7e6] * 20),       # zero backtest error
        }
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        risk = RiskAdjustedRanking(broker, risk_aversion=1.0, default_error=0.5)
        ranked = risk.rank("f", CLIENT, now=1e9)
        # NEW predicts 8 MB/s but is discounted to 4; OLD keeps 7.
        assert ranked[0].site == "OLD"
        assert ranked[1].error is None

    def test_estimated_time(self, risky_world):
        catalog, logs = risky_world
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        best = RiskAdjustedRanking(broker).select("f", CLIENT, now=1e9)
        assert best.estimated_time(500 * MB) == pytest.approx(
            500 * MB / best.predicted_bandwidth
        )

    @pytest.mark.parametrize("kw", [
        dict(risk_aversion=-0.1), dict(risk_aversion=1.1),
        dict(default_error=2.0),
    ])
    def test_validation(self, risky_world, kw):
        catalog, logs = risky_world
        broker = ReplicaBroker(catalog, logs, TotalAverage())
        with pytest.raises(ValueError):
            RiskAdjustedRanking(broker, **kw)
