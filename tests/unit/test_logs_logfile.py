"""TransferLog: ordering, trimming policies, persistence."""

import pytest

from repro.logs import (
    FlushRestart,
    KeepAll,
    MaxCount,
    RunningWindow,
    TransferLog,
)
from repro.units import HOUR
from tests.conftest import make_record


def records_at(*starts, duration=10.0):
    return [make_record(start=s, duration=duration) for s in starts]


class TestAppendOrdering:
    def test_appends_keep_end_time_order(self):
        log = TransferLog()
        for r in records_at(100.0, 200.0, 300.0):
            log.append(r)
        assert [r.start_time for r in log] == [100.0, 200.0, 300.0]

    def test_out_of_order_completion_inserted_correctly(self):
        log = TransferLog()
        long_xfer = make_record(start=100.0, duration=500.0)   # ends at 600
        short_xfer = make_record(start=200.0, duration=10.0)   # ends at 210
        log.append(long_xfer)
        log.append(short_xfer)
        assert [r.end_time for r in log] == [210.0, 600.0]

    def test_latest_and_len(self):
        log = TransferLog()
        assert log.latest() is None and len(log) == 0
        log.extend(records_at(1.0, 50.0))
        assert log.latest().start_time == 50.0
        assert len(log) == 2

    def test_clear(self):
        log = TransferLog()
        log.extend(records_at(1.0))
        log.clear()
        assert len(log) == 0


class TestTrimPolicies:
    def test_keepall_is_default(self):
        log = TransferLog()
        log.extend(records_at(*range(1, 1001, 10)))
        assert len(log) == 100
        assert isinstance(log.trim, KeepAll)

    def test_running_window_drops_old(self):
        log = TransferLog(trim=RunningWindow(max_age=1 * HOUR))
        log.append(make_record(start=0.0))
        log.append(make_record(start=2 * HOUR))
        assert len(log) == 1
        assert log.latest().start_time == 2 * HOUR

    def test_max_count_keeps_newest(self):
        log = TransferLog(trim=MaxCount(3))
        log.extend(records_at(10.0, 20.0, 30.0, 40.0, 50.0))
        assert [r.start_time for r in log] == [30.0, 40.0, 50.0]

    def test_flush_restart_archives(self):
        policy = FlushRestart(threshold=3)
        log = TransferLog(trim=policy)
        log.extend(records_at(1.0, 100.0, 200.0, 300.0))
        # Third append hits the threshold: archive 3, restart; 4th starts fresh.
        assert len(policy.archived) == 1
        assert len(policy.archived[0]) == 3
        assert len(log) == 1

    def test_flush_restart_custom_sink(self):
        seen = []
        log = TransferLog(trim=FlushRestart(threshold=2, sink=seen.append))
        log.extend(records_at(1.0, 100.0, 200.0))
        assert len(seen) == 1 and len(seen[0]) == 2

    @pytest.mark.parametrize("factory", [
        lambda: RunningWindow(0), lambda: MaxCount(0), lambda: FlushRestart(0),
    ])
    def test_invalid_policies(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        log = TransferLog(host="lbl.gov")
        log.extend(records_at(10.0, 20.0, 30.0))
        path = tmp_path / "transfers.ulm"
        assert log.save(path) == 3
        loaded = TransferLog.load(path, host="lbl.gov")
        assert loaded.records() == log.records()

    def test_empty_log_roundtrip(self, tmp_path):
        log = TransferLog()
        path = tmp_path / "empty.ulm"
        assert log.save(path) == 0
        assert len(TransferLog.load(path)) == 0

    def test_records_returns_copy(self):
        log = TransferLog()
        log.extend(records_at(1.0))
        log.records().clear()
        assert len(log) == 1


class TestFlushRestartBoundary:
    def test_flushes_exactly_at_threshold(self):
        # The flush fires when the count *reaches* the threshold, not one
        # past it: after the third append of threshold=3 the log is empty.
        trim = FlushRestart(threshold=3)
        log = TransferLog(trim=trim)
        log.append(make_record(start=100.0))
        log.append(make_record(start=200.0))
        assert len(log) == 2 and trim.archived == []
        log.append(make_record(start=300.0))
        assert len(log) == 0
        assert [len(batch) for batch in trim.archived] == [3]

    def test_batch_safety_flags(self):
        assert KeepAll().batch_safe
        assert RunningWindow(max_age=1.0).batch_safe
        assert MaxCount(count=1).batch_safe
        assert not FlushRestart(threshold=1).batch_safe


class TestBulkExtend:
    """extend() folds a batch in one merge, equivalently to N appends."""

    @pytest.mark.parametrize("trim_factory", [
        KeepAll,
        lambda: RunningWindow(max_age=5 * HOUR),
        lambda: MaxCount(count=7),
        lambda: FlushRestart(threshold=4),
    ])
    def test_extend_matches_sequential_appends(self, trim_factory):
        starts = [100.0, 900.0, 300.0, 500.0, 500.0, 700.0, 200.0, 1100.0,
                  400.0, 600.0]
        batch = records_at(*starts)
        bulk = TransferLog(trim=trim_factory())
        sequential = TransferLog(trim=trim_factory())
        bulk.extend(records_at(50.0))
        sequential.extend(records_at(50.0))
        bulk.extend(batch)
        # Batch-safe policies fold the batch sorted by end time; the
        # non-batch-safe FlushRestart falls back to per-record appends in
        # the given order (archival boundaries depend on it).
        ordered = (
            sorted(batch, key=lambda r: r.end_time)
            if bulk.trim.batch_safe
            else batch
        )
        for record in ordered:
            sequential.append(record)
        assert bulk.records() == sequential.records()

    def test_extend_interleaves_with_existing_records(self):
        log = TransferLog()
        log.extend(records_at(100.0, 500.0))
        log.extend(records_at(300.0, 50.0))
        assert [r.start_time for r in log] == [50.0, 100.0, 300.0, 500.0]

    def test_extend_notifies_listeners_in_sorted_order(self):
        log = TransferLog()
        seen = []
        log.subscribe(seen.append)
        batch = records_at(300.0, 100.0, 200.0)
        log.extend(batch)
        assert [r.start_time for r in seen] == [100.0, 200.0, 300.0]

    def test_extend_empty_batch_is_noop(self):
        log = TransferLog()
        log.extend([])
        assert len(log) == 0


class TestFrameBridge:
    def test_to_frame_round_trip(self):
        log = TransferLog()
        log.extend(records_at(100.0, 300.0, 200.0))
        frame = log.to_frame()
        assert frame.to_records() == log.records()
        rebuilt = TransferLog.from_frame(frame)
        assert rebuilt.records() == log.records()

    def test_load_uses_bulk_path(self, tmp_path):
        log = TransferLog()
        log.extend(records_at(*range(100, 2100, 100)))
        path = tmp_path / "x.ulm"
        log.save(path)
        loaded = TransferLog.load(path)
        assert loaded.records() == log.records()
        # cache defaults off: no sidecar appears next to the log
        assert list(tmp_path.iterdir()) == [path]

    def test_load_with_cache_writes_sidecar(self, tmp_path):
        log = TransferLog()
        log.extend(records_at(100.0, 200.0))
        path = tmp_path / "x.ulm"
        log.save(path)
        TransferLog.load(path, cache=True)
        assert (tmp_path / "x.ulm.npz").exists()
        reloaded = TransferLog.load(path, cache=True)  # warm read
        assert reloaded.records() == log.records()
