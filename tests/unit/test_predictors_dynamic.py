"""Dynamic (NWS-style) predictor selection."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import DynamicSelector, LastValue, TotalAverage
from repro.core.predictors.base import PredictorError
from tests.unit.test_predictors_mean import hist


def test_picks_the_member_that_tracks_the_series():
    # Trending series: LV's one-step error is constant 1, AVG's grows.
    values = list(range(1, 40))
    dyn = DynamicSelector([TotalAverage(), LastValue()])
    h = hist([float(v) for v in values])
    predicted = dyn.predict(h, target_size=100, now=float(len(values)))
    assert dyn.best_member(h).name == "LV"
    assert predicted == pytest.approx(39.0)


def test_picks_stable_member_on_alternating_series():
    values = [10.0, 20.0] * 20
    dyn = DynamicSelector([LastValue(), TotalAverage()])
    h = hist(values)
    assert dyn.best_member(h).name == "AVG"


def test_warmup_uses_first_member():
    dyn = DynamicSelector([TotalAverage(), LastValue()], warmup=10)
    h = hist([1.0, 2.0, 3.0])
    assert dyn.best_member(h).name == "AVG"


def test_incremental_scoring_matches_fresh_selector():
    """Growing-prefix memoization must not change the answer."""
    values = [float(v) for v in np.random.default_rng(0).uniform(1, 10, 40)]
    h = hist(values)

    incremental = DynamicSelector([TotalAverage(), LastValue()])
    for i in range(5, len(values)):
        incremental.predict(h.prefix(i), target_size=100, now=float(i))

    fresh = DynamicSelector([TotalAverage(), LastValue()])
    a = incremental.predict(h, target_size=100, now=float(len(values)))
    b = fresh.predict(h, target_size=100, now=float(len(values)))
    assert a == pytest.approx(b)
    assert incremental.mape_table() == pytest.approx(fresh.mape_table())


def test_new_log_resets_cache():
    dyn = DynamicSelector([TotalAverage(), LastValue()])
    dyn.predict(hist([1.0, 2.0, 3.0, 4.0]), target_size=1, now=5.0)
    first_table = dict(dyn.mape_table())
    # A different log (different first observation) resets scoring.
    other = hist([100.0, 90.0, 80.0])
    dyn.predict(other, target_size=1, now=5.0)
    assert dyn.mape_table() != first_table


def test_empty_history_abstains():
    dyn = DynamicSelector([TotalAverage()])
    assert dyn.predict(History.empty(), target_size=1, now=0.0) is None


@pytest.mark.parametrize("ctor", [
    lambda: DynamicSelector([]),
    lambda: DynamicSelector([TotalAverage(), TotalAverage()]),
    lambda: DynamicSelector([TotalAverage()], warmup=0),
])
def test_validation(ctor):
    with pytest.raises(PredictorError):
        ctor()
