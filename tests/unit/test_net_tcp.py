"""TCP throughput model: the physics behind the paper's phenomena."""

import pytest

from repro.net import TcpConfig, TcpModel
from repro.units import MB


@pytest.fixture
def tcp():
    return TcpModel()


class TestConfig:
    def test_defaults(self):
        cfg = TcpConfig()
        assert cfg.initial_window == 2 * 1460

    @pytest.mark.parametrize("kw", [dict(mss=0), dict(initial_window_segments=0),
                                    dict(handshake_rtts=-1), dict(default_buffer=0)])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            TcpConfig(**kw)


class TestSteadyState:
    def test_window_limited(self, tcp):
        # 64 KB buffer on 50 ms path: 1.28 MB/s regardless of capacity.
        rate = tcp.steady_rate(rtt=0.05, available_bw=100e6, buffer=64_000, streams=1)
        assert rate == pytest.approx(64_000 / 0.05)

    def test_bandwidth_limited(self, tcp):
        # Big buffers: the bottleneck is the wire.
        rate = tcp.steady_rate(rtt=0.05, available_bw=10e6, buffer=1 * MB, streams=8)
        assert rate == pytest.approx(10e6)

    def test_parallel_streams_multiply_window_cap(self, tcp):
        one = tcp.steady_rate(rtt=0.05, available_bw=100e6, buffer=64_000, streams=1)
        eight = tcp.steady_rate(rtt=0.05, available_bw=100e6, buffer=64_000, streams=8)
        assert eight == pytest.approx(8 * one)

    def test_effective_window_floor_is_mss(self, tcp):
        w = tcp.effective_window(rtt=0.05, available_bw=1000.0, buffer=64_000, streams=8)
        assert w == tcp.config.mss


class TestTiming:
    def test_duration_components_sum(self, tcp):
        t = tcp.timing(100 * MB, rtt=0.05, available_bw=10e6, buffer=1 * MB, streams=8)
        assert t.duration == pytest.approx(t.setup_time + t.slow_start_time + t.steady_time)

    def test_small_transfer_finishes_in_slow_start(self, tcp):
        # Slow start can carry w_eff - iw = ~61 KB; 32 KB fits inside it.
        t = tcp.timing(32_000, rtt=0.05, available_bw=10e6, buffer=64_000, streams=1)
        assert t.steady_time == 0.0
        assert t.slow_start_time > 0.0
        assert t.startup_fraction == pytest.approx(1.0)

    def test_large_transfer_dominated_by_steady_state(self, tcp):
        t = tcp.timing(1000 * MB, rtt=0.05, available_bw=10e6, buffer=1 * MB, streams=8)
        assert t.startup_fraction < 0.05
        assert t.bandwidth == pytest.approx(10e6, rel=0.05)

    def test_bandwidth_grows_with_size(self, tcp):
        """Section 4.3's observation: the basis for classification."""
        sizes = [1 * MB, 10 * MB, 100 * MB, 1000 * MB]
        bws = [
            tcp.bandwidth(s, rtt=0.055, available_bw=10e6, buffer=1 * MB, streams=8)
            for s in sizes
        ]
        assert bws == sorted(bws)
        assert bws[-1] > 2 * bws[0]

    def test_nws_probe_underestimates_gridftp(self, tcp):
        """The Figures 1-2 gap, at the model level."""
        probe = tcp.bandwidth(64_000, rtt=0.055, available_bw=10e6,
                              buffer=TcpConfig().default_buffer, streams=1)
        gridftp = tcp.bandwidth(500 * MB, rtt=0.055, available_bw=10e6,
                                buffer=1 * MB, streams=8)
        assert probe < 0.3e6           # paper: probes < 0.3 MB/s
        assert gridftp > 5 * probe     # order-of-magnitude gap

    def test_more_streams_never_slower(self, tcp):
        kw = dict(rtt=0.05, available_bw=10e6, buffer=64_000)
        b1 = tcp.bandwidth(100 * MB, streams=1, **kw)
        b8 = tcp.bandwidth(100 * MB, streams=8, **kw)
        assert b8 >= b1

    def test_shorter_rtt_faster_for_small_files(self, tcp):
        kw = dict(available_bw=10e6, buffer=1 * MB, streams=8)
        fast = tcp.bandwidth(5 * MB, rtt=0.02, **kw)
        slow = tcp.bandwidth(5 * MB, rtt=0.08, **kw)
        assert fast > slow

    def test_bandwidth_bounded_by_available(self, tcp):
        for size in (1 * MB, 100 * MB, 1000 * MB):
            bw = tcp.bandwidth(size, rtt=0.05, available_bw=10e6, buffer=1 * MB, streams=8)
            assert bw <= 10e6 + 1e-6

    @pytest.mark.parametrize("kw", [
        dict(size=0, rtt=0.05, available_bw=1e6, buffer=1000, streams=1),
        dict(size=100, rtt=0, available_bw=1e6, buffer=1000, streams=1),
        dict(size=100, rtt=0.05, available_bw=0, buffer=1000, streams=1),
        dict(size=100, rtt=0.05, available_bw=1e6, buffer=0, streams=1),
        dict(size=100, rtt=0.05, available_bw=1e6, buffer=1000, streams=0),
    ])
    def test_invalid_arguments(self, tcp, kw):
        with pytest.raises(ValueError):
            tcp.timing(kw.pop("size"), **kw)
