"""GridFTP client: get/put/partial/third-party against testbed servers."""

import pytest

from repro.gridftp import FileNotFoundOnServer
from repro.logs import Operation
from repro.units import MB


class TestGet:
    def test_get_returns_outcome_and_logs_at_server(self, testbed):
        client = testbed.clients["ANL"]
        server = testbed.servers["LBL"]
        outcome = client.get(server, testbed.data_path(100 * MB),
                             streams=8, buffer=1 * MB)
        assert outcome.duration > 0
        record = server.monitor.log.records()[-1]
        assert record.source_ip == testbed.sites["ANL"].address
        assert record.streams == 8 and record.tcp_buffer == 1 * MB

    def test_get_missing_file(self, testbed):
        with pytest.raises(FileNotFoundOnServer):
            testbed.clients["ANL"].get(testbed.servers["LBL"], "/home/ftp/ghost")


class TestPartialGet:
    def test_partial_get(self, testbed):
        client = testbed.clients["ANL"]
        server = testbed.servers["ISI"]
        outcome = client.partial_get(server, testbed.data_path(1000 * MB),
                                     offset=100 * MB, length=50 * MB)
        assert outcome.request.size == 50 * MB


class TestPut:
    def test_put_stores_file(self, testbed):
        client = testbed.clients["ANL"]
        server = testbed.servers["LBL"]
        client.put(server, "/home/ftp/uploads/result", 25 * MB)
        assert server.volumes[0].has("/home/ftp/uploads/result")
        assert server.monitor.log.records()[-1].operation is Operation.WRITE


class TestThirdParty:
    def test_third_party_moves_between_servers(self, testbed):
        client = testbed.clients["ANL"]
        src, dst = testbed.servers["LBL"], testbed.servers["ISI"]
        path = testbed.data_path(10 * MB)
        outcome = client.third_party_transfer(src, dst, path, dest_path="copied/10M")
        assert outcome.request.size == 10 * MB
        assert dst.volumes[0].has("copied/10M")
        # Logged at the source as a read toward the destination site.
        record = src.monitor.log.records()[-1]
        assert record.operation is Operation.READ
        assert record.source_ip == testbed.sites["ISI"].address

    def test_third_party_logged_at_both_ends(self, testbed):
        client = testbed.clients["ANL"]
        src, dst = testbed.servers["LBL"], testbed.servers["ISI"]
        client.third_party_transfer(src, dst, testbed.data_path(25 * MB))
        read = src.monitor.log.records()[-1]
        write = dst.monitor.log.records()[-1]
        assert write.operation is Operation.WRITE
        assert write.source_ip == testbed.sites["LBL"].address
        assert write.file_size == read.file_size == 25 * MB
        assert write.start_time == read.start_time
        assert write.end_time == read.end_time

    def test_third_party_missing_source_file(self, testbed):
        from repro.gridftp import FileNotFoundOnServer

        client = testbed.clients["ANL"]
        with pytest.raises(FileNotFoundOnServer):
            client.third_party_transfer(
                testbed.servers["LBL"], testbed.servers["ISI"], "/home/ftp/ghost"
            )
        assert len(testbed.servers["ISI"].monitor.log) == 0
