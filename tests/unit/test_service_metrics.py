"""The repro.service.metrics deprecation shim.

The instruments moved to :mod:`repro.obs` (see
tests/unit/test_obs_metrics.py for their behaviour); this module pins
the back-compat contract: every historical name still imports from
``repro.service.metrics``, resolves to the same objects, and the import
warns exactly once per interpreter.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro.obs.events
import repro.obs.metrics
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceEvent,
    TraceLog,
)


def test_shim_reexports_the_obs_objects():
    assert Counter is repro.obs.metrics.Counter
    assert Gauge is repro.obs.metrics.Gauge
    assert Histogram is repro.obs.metrics.Histogram
    assert MetricsRegistry is repro.obs.metrics.MetricsRegistry
    assert TraceEvent is repro.obs.events.TraceEvent
    assert TraceLog is repro.obs.events.TraceLog
    assert TraceLog is repro.obs.events.EventBus


def test_shim_instruments_still_work_through_old_import():
    reg = MetricsRegistry()
    reg.counter("requests").inc(3)
    log = TraceLog(capacity=4)
    log.emit("observe", link="a")
    assert reg.snapshot()["requests"]["value"] == 3.0
    assert [e.kind for e in log.events()] == ["observe"]


def test_shim_import_emits_deprecation_warning():
    # A fresh interpreter, because this test module already imported the
    # shim (module-level warnings fire once per process).
    code = (
        "import warnings\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    import repro.service.metrics\n"
        "assert any(w.category is DeprecationWarning for w in caught), caught\n"
    )
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo_root / "src"), env.get("PYTHONPATH")) if p
    )
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
