"""The service metrics layer: instruments, registry, trace ring."""

import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceLog,
)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_decrease():
    c = Counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("links")
    g.set(4)
    g.inc(-1)
    assert g.value == 3.0


def test_histogram_summary_and_percentiles():
    h = Histogram("latency", window=100)
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.count == 100
    assert h.total == pytest.approx(5050.0)
    assert h.mean() == pytest.approx(50.5)
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 100.0
    assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
    summary = h.summary()
    assert summary["min"] == 1.0 and summary["max"] == 100.0
    assert summary["p99"] >= summary["p90"] >= summary["p50"]


def test_histogram_window_bounds_the_reservoir():
    h = Histogram("latency", window=10)
    for v in range(1000):
        h.observe(float(v))
    # Lifetime aggregates see everything; percentiles only the newest 10.
    assert h.count == 1000
    assert h.percentile(0) == 990.0


def test_histogram_empty_percentile_is_nan():
    h = Histogram("latency")
    assert h.percentile(50) != h.percentile(50)  # NaN
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_concurrent_observes_are_exact():
    h = Histogram("latency", window=64)
    threads = [
        threading.Thread(target=lambda: [h.observe(1.0) for _ in range(500)])
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == 2000
    assert h.total == pytest.approx(2000.0)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_shares_instruments_by_name():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.names() == ["a"]


def test_registry_rejects_type_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError, match="registered as Counter"):
        reg.gauge("x")


def test_registry_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("requests").inc(3)
    reg.gauge("links").set(2)
    reg.histogram("lat").observe(0.5)
    snap = reg.snapshot()
    assert snap["requests"] == {"type": "counter", "value": 3.0}
    assert snap["links"]["value"] == 2.0
    assert snap["lat"]["count"] == 1
    text = reg.render()
    assert "requests 3" in text
    assert "lat_p99 0.5" in text


# ----------------------------------------------------------------------
# trace log
# ----------------------------------------------------------------------
def test_trace_ring_keeps_newest_and_counts_drops():
    clock = iter(range(100)).__next__
    log = TraceLog(capacity=3, clock=lambda: float(clock()))
    for i in range(5):
        log.emit("predict", i=i)
    assert len(log) == 3
    assert log.dropped == 2
    assert [e.fields["i"] for e in log.events()] == [2, 3, 4]


def test_trace_filter_by_kind_and_as_dict():
    log = TraceLog(capacity=10, clock=lambda: 7.0)
    log.emit("observe", link="a")
    log.emit("predict", link="a", value=1.0)
    predicts = log.events(kind="predict")
    assert len(predicts) == 1
    assert predicts[0].as_dict() == {
        "time": 7.0, "kind": "predict", "link": "a", "value": 1.0,
    }
