"""Open (Poisson) workload."""

import pytest

from repro.units import HOUR
from repro.workload import AUG_2001, OpenWorkload, OpenWorkloadConfig, build_testbed


def run_workload(duration=12 * HOUR, mean_interarrival=0.25 * HOUR):
    bed = build_testbed(seed=4, start_time=AUG_2001)
    seen = []
    cfg = OpenWorkloadConfig(
        mean_interarrival=mean_interarrival,
        duration=duration,
        logical_names=("lfn://a", "lfn://b"),
    )
    wl = OpenWorkload(bed, cfg, handler=lambda name, now: seen.append((name, now)))
    wl.start()
    bed.engine.run(until=AUG_2001 + duration + HOUR)
    wl.stop()
    return wl, seen


def test_requests_fire_with_expected_rate():
    wl, seen = run_workload()
    # 12h / 15min = 48 expected arrivals; Poisson spread.
    assert 25 <= len(seen) <= 75


def test_handler_receives_names_from_config():
    _, seen = run_workload()
    assert {name for name, _ in seen} <= {"lfn://a", "lfn://b"}


def test_requests_recorded():
    # wl.requests stores (time, name); the handler receives (name, time).
    wl, seen = run_workload()
    assert wl.requests == [(now, name) for name, now in seen]


def test_stops_after_duration():
    wl, seen = run_workload(duration=2 * HOUR)
    assert all(now <= AUG_2001 + 2 * HOUR for _, now in seen)


def test_config_validation():
    with pytest.raises(ValueError):
        OpenWorkloadConfig(mean_interarrival=0, duration=1,
                           logical_names=("x",))
    with pytest.raises(ValueError):
        OpenWorkloadConfig(duration=1, logical_names=())
