"""File-size classification."""

import pytest

from repro.core import Classification
from repro.units import MB


class TestPaperClasses:
    def test_labels(self, classification):
        assert classification.labels == ("10MB", "100MB", "500MB", "1GB")

    @pytest.mark.parametrize("size,label", [
        (1 * MB, "10MB"), (25 * MB, "10MB"), (49 * MB, "10MB"),
        (50 * MB, "100MB"), (150 * MB, "100MB"),
        (250 * MB, "500MB"), (500 * MB, "500MB"),
        (750 * MB, "1GB"), (1000 * MB, "1GB"), (10_000 * MB, "1GB"),
    ])
    def test_boundaries(self, classification, size, label):
        assert classification.classify(size) == label

    def test_bounds(self, classification):
        assert classification.bounds("10MB") == (0, 50 * MB)
        assert classification.bounds("100MB") == (50 * MB, 250 * MB)
        lo, hi = classification.bounds("1GB")
        assert lo == 750 * MB and hi == float("inf")

    def test_index_of(self, classification):
        assert classification.index_of(1 * MB) == 0
        assert classification.index_of(900 * MB) == 3

    def test_unknown_label(self, classification):
        with pytest.raises(KeyError):
            classification.bounds("2GB")

    def test_nonpositive_size(self, classification):
        with pytest.raises(ValueError):
            classification.classify(0)

    def test_class_sizes_covers_all(self, classification):
        triples = classification.class_sizes()
        assert len(triples) == 4
        # Contiguity: each class starts where the previous ended.
        for (_, _, hi), (_, lo, _) in zip(triples, triples[1:]):
            assert hi == lo


class TestCustomClassification:
    def test_two_classes(self):
        cls = Classification(edges=(100 * MB,), labels=("small", "large"))
        assert cls.classify(1) == "small"
        assert cls.classify(100 * MB) == "large"

    @pytest.mark.parametrize("edges,labels", [
        ((), ("a", "b")),                      # label/edge count mismatch
        ((10, 5), ("a", "b", "c")),            # not increasing
        ((10, 10), ("a", "b", "c")),           # duplicate edge
        ((0,), ("a", "b")),                    # non-positive edge
        ((10,), ("a", "a")),                   # duplicate labels
    ])
    def test_validation(self, edges, labels):
        with pytest.raises(ValueError):
            Classification(edges=edges, labels=labels)
