"""repro.resilience: retry schedules, deadlines, breaker state machine."""

import pytest

from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryError,
    RetryPolicy,
    fallback,
)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3, jitter=0.0)
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_under_a_fixed_seed(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5, seed=42)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second  # same (policy, seed) -> same schedule
        assert list(RetryPolicy(max_attempts=6, jitter=0.5, seed=43).delays()) != first

    def test_jitter_stays_within_the_configured_fraction(self):
        policy = RetryPolicy(max_attempts=9, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.25, seed=7)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.0

    def test_call_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionRefusedError("not yet")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, jitter=0.0)
        result = policy.call(flaky, retry_on=(ConnectionRefusedError,),
                             sleep=slept.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert slept == [0.01, 0.02]

    def test_exhaustion_raises_retry_error_with_cause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(OSError("down")),
                        retry_on=(OSError,), sleep=lambda s: None)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_retryable_errors_propagate_immediately(self):
        attempts = []

        def bad_request():
            attempts.append(1)
            raise ValueError("malformed")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        with pytest.raises(ValueError):
            policy.call(bad_request, retry_on=(OSError,))
        assert len(attempts) == 1

    def test_max_elapsed_stops_the_loop_early(self):
        clock = FakeClock()

        def failing():
            clock.advance(1.0)
            raise OSError("slow failure")

        policy = RetryPolicy(max_attempts=10, base_delay=0.5, jitter=0.0,
                             max_elapsed=2.0)
        with pytest.raises(RetryError) as excinfo:
            policy.call(failing, retry_on=(OSError,),
                        sleep=lambda s: clock.advance(s), clock=clock)
        assert excinfo.value.attempts < 10

    def test_deadline_bounds_the_whole_loop(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)

        def failing():
            clock.advance(0.6)
            raise OSError("down")

        policy = RetryPolicy(max_attempts=50, base_delay=0.5, jitter=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(failing, retry_on=(OSError,), deadline=deadline,
                        sleep=lambda s: clock.advance(s), clock=clock)
        assert clock.now < 3.0  # nowhere near 50 attempts

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_remaining_counts_down_and_clamps_at_zero(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_check_raises_a_timeout_error_subclass(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("step")  # fine
        clock.advance(1.0)
        with pytest.raises(TimeoutError):
            deadline.check("step")

    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.clamp(5.0) == 5.0

    def test_clamp_returns_the_tighter_bound(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(2.0)
        assert deadline.clamp(1.0) == pytest.approx(1.0)
        assert deadline.clamp(None) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout", 10.0)
        return CircuitBreaker("test", clock=clock, **kw)

    def trip(self, breaker, clock):
        for _ in range(breaker.failure_threshold):
            assert breaker.allow()
            breaker.record_failure()

    def test_closed_to_open_on_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        assert breaker.state() == "closed"
        self.trip(breaker, clock)
        assert breaker.state() == "open"
        assert not breaker.allow()
        assert breaker.trips == 1 and breaker.rejections >= 1

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state() == "closed"  # streak broken: never reached 3

    def test_open_to_half_open_to_closed(self):
        clock = FakeClock()
        breaker = self.make(clock)
        self.trip(breaker, clock)
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)  # reset_timeout elapsed
        assert breaker.state() == "half_open"
        assert breaker.allow()          # the probe
        breaker.record_success()
        assert breaker.state() == "closed"
        assert breaker.resets == 1

    def test_half_open_probe_failure_reopens_and_restarts_the_timer(self):
        clock = FakeClock()
        breaker = self.make(clock)
        self.trip(breaker, clock)
        clock.advance(10.1)
        assert breaker.allow()          # probe admitted
        breaker.record_failure()        # probe failed
        assert breaker.state() == "open"
        assert breaker.trips == 2
        clock.advance(9.0)
        assert not breaker.allow()      # timer restarted at the re-trip
        clock.advance(1.5)
        assert breaker.allow()

    def test_half_open_admits_a_bounded_number_of_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, half_open_probes=2)
        self.trip(breaker, clock)
        clock.advance(10.1)
        assert breaker.allow() and breaker.allow()
        assert not breaker.allow()      # third concurrent probe rejected

    def test_half_open_probe_race_admits_exactly_one_and_counts_losers(self):
        # N threads hit allow() simultaneously on a breaker whose reset
        # timer just expired: exactly one probe may win, every loser is
        # rejected AND counted — the fleet front reads `rejections` to
        # tell "shed by the breaker" from "never asked".
        import threading

        clock = FakeClock()
        breaker = self.make(clock, half_open_probes=1)
        self.trip(breaker, clock)
        rejected_before = breaker.rejections
        clock.advance(10.1)             # open -> half-open on next touch
        callers = 8
        barrier = threading.Barrier(callers)
        outcomes = [None] * callers

        def contend(i):
            barrier.wait()
            outcomes[i] = breaker.allow()

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(callers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(outcomes) == 1, f"want exactly one probe, got {outcomes}"
        assert breaker.rejections == rejected_before + (callers - 1)
        assert breaker.state() == "half_open"
        # The winner reports back: a success closes the breaker for all.
        breaker.record_success()
        assert breaker.state() == "closed"
        assert all(breaker.allow() for _ in range(callers))

    def test_half_open_losers_increment_the_rejection_metric(self):
        from repro.obs import get_registry
        from repro.obs.config import enabled as obs_enabled

        clock = FakeClock()
        breaker = self.make(clock, half_open_probes=1)
        self.trip(breaker, clock)
        clock.advance(10.1)
        metric = get_registry().counter("resilience_breaker_rejections")
        before = metric.value
        assert breaker.allow()          # the probe: not a rejection
        assert not breaker.allow()      # the loser
        assert breaker.rejections >= 1
        if obs_enabled():
            assert metric.value == before + 1

    def test_explicit_now_drives_transitions(self):
        # The GIIS drives breakers on simulation time, not wall clock.
        breaker = CircuitBreaker("sim", failure_threshold=1, reset_timeout=60.0,
                                 clock=lambda: 0.0)
        breaker.record_failure(now=1000.0)
        assert breaker.state(now=1030.0) == "open"
        assert breaker.state(now=1060.0) == "half_open"
        assert breaker.allow(now=1060.0)
        breaker.record_success(now=1060.0)
        assert breaker.state(now=1060.0) == "closed"

    def test_call_raises_circuit_open_error_when_rejecting(self):
        clock = FakeClock()
        breaker = self.make(clock, failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.retry_after == pytest.approx(10.0)
        assert isinstance(excinfo.value, ConnectionError)

    def test_status_snapshot(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        status = breaker.status()
        assert status["state"] == "closed"
        assert status["consecutive_failures"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", reset_timeout=0.0)


# ----------------------------------------------------------------------
# fallback combinator
# ----------------------------------------------------------------------
class TestFallback:
    def test_primary_answer_wins(self):
        run = fallback(lambda: "primary", lambda: "backup")
        assert run() == "primary"

    def test_degrades_through_alternatives_in_order(self):
        def dead():
            raise OSError("down")

        run = fallback(dead, dead, lambda: "third", label="chain")
        assert run() == "third"

    def test_last_failure_propagates_unchanged(self):
        def dead():
            raise OSError("really down")

        with pytest.raises(OSError, match="really down"):
            fallback(dead, dead)()

    def test_only_listed_exceptions_degrade(self):
        def typo():
            raise ValueError("bug, not outage")

        with pytest.raises(ValueError):
            fallback(typo, lambda: "never", exceptions=(OSError,))()

    def test_needs_at_least_one_alternative(self):
        with pytest.raises(ValueError):
            fallback()


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_retry_and_breaker_activity_is_counted_and_emitted():
    from repro.obs import get_event_bus, get_registry

    retries_before = get_registry().counter("resilience_retries", "").value
    trips_before = get_registry().counter("resilience_breaker_trips", "").value

    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 2:
            raise OSError("transient")
        return "ok"

    RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0).call(
        flaky, retry_on=(OSError,), label="obs-test", sleep=lambda s: None)
    assert get_registry().counter("resilience_retries", "").value == retries_before + 1
    retry_events = get_event_bus().events(kind="resilience.retry")
    assert any(e.fields.get("label") == "obs-test" for e in retry_events)

    clock = FakeClock()
    breaker = CircuitBreaker("obs-test", failure_threshold=1, clock=clock)
    breaker.record_failure()
    assert (
        get_registry().counter("resilience_breaker_trips", "").value
        == trips_before + 1
    )
    open_events = get_event_bus().events(kind="resilience.breaker_open")
    assert any(e.fields.get("breaker") == "obs-test" for e in open_events)
