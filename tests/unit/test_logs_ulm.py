"""ULM serialization: format, escaping, round-trips, error handling."""

import pytest

from repro.logs import ULMError, format_record, parse_record, parse_lines
from repro.logs.ulm import format_fields, parse_fields
from tests.conftest import make_record


class TestFields:
    def test_simple_roundtrip(self):
        line = format_fields([("A", "1"), ("B", "two")])
        assert line == "A=1 B=two"
        assert parse_fields(line) == {"A": "1", "B": "two"}

    def test_value_with_spaces_is_quoted(self):
        # The paper's own file names contain spaces: "/home/ftp/vazhkuda/10 MB".
        line = format_fields([("F", "/home/ftp/vazhkuda/10 MB")])
        assert line == 'F="/home/ftp/vazhkuda/10 MB"'
        assert parse_fields(line)["F"] == "/home/ftp/vazhkuda/10 MB"

    def test_quotes_and_backslashes_escape(self):
        value = 'say "hi" \\ bye'
        line = format_fields([("V", value)])
        assert parse_fields(line)["V"] == value

    def test_empty_value(self):
        assert parse_fields(format_fields([("K", "")]))["K"] == ""

    @pytest.mark.parametrize("bad", [
        "NOEQUALS",
        'K="unterminated',
        'K="dangling\\',
        "=value",
    ])
    def test_malformed_lines(self, bad):
        with pytest.raises(ULMError):
            parse_fields(bad)

    def test_duplicate_key_rejected(self):
        with pytest.raises(ULMError):
            parse_fields("A=1 A=2")

    def test_invalid_key_on_format(self):
        with pytest.raises(ULMError):
            format_fields([("bad key", "v")])


class TestRecordRoundtrip:
    def test_exact_roundtrip(self):
        record = make_record(start=998988165.25, duration=4.5)
        assert parse_record(format_record(record)) == record

    def test_line_contains_ulm_preamble(self):
        line = format_record(make_record(), host="server.anl.gov")
        assert "HOST=server.anl.gov" in line
        assert "PROG=gridftp" in line
        assert "LVL=INFO" in line

    def test_entry_under_512_bytes(self):
        """Section 3: 'Each log entry is well under 512 bytes.'"""
        line = format_record(make_record(), host="dpsslx04.lbl.gov")
        assert len(line.encode()) < 512

    def test_missing_key_rejected(self):
        line = format_record(make_record()).replace("GFTP.SRC", "GFTP.XXX")
        with pytest.raises(ULMError, match="GFTP.SRC"):
            parse_record(line)

    def test_bad_numeric_value_rejected(self):
        line = format_record(make_record())
        broken = line.replace("GFTP.STREAMS=8", "GFTP.STREAMS=eight")
        with pytest.raises(ULMError):
            parse_record(broken)

    def test_inconsistent_record_rejected(self):
        line = format_record(make_record())
        broken = line.replace("GFTP.NBYTES=104857600", "GFTP.NBYTES=-5")
        # make_record uses 100 MB decimal => adjust generically:
        import re
        broken = re.sub(r"GFTP\.NBYTES=\d+", "GFTP.NBYTES=-5", line)
        with pytest.raises(ULMError):
            parse_record(broken)

    def test_extra_keys_ignored(self):
        line = format_record(make_record()) + " GFTP.FUTURE=1"
        assert parse_record(line) == make_record()


class TestParseLines:
    def test_skips_blanks_and_comments(self):
        lines = ["", "# comment", format_record(make_record()), "   "]
        assert len(list(parse_lines(lines))) == 1

    def test_reports_line_number(self):
        lines = ["# ok", "JUNK"]
        with pytest.raises(ULMError, match="line 2"):
            list(parse_lines(lines))
