"""Per-link state: versioning and snapshot consistency."""

import numpy as np
import pytest

from repro.service.state import OP_READ, OP_WRITE, LinkState
from tests.conftest import make_record


def test_version_increments_per_append():
    state = LinkState("LBL-ANL")
    assert state.version == 0 and len(state) == 0
    for i in range(5):
        version = state.append(make_record(start=1000.0 + 100 * i))
        assert version == i + 1
    assert state.version == 5 and len(state) == 5


def test_history_matches_appended_records():
    state = LinkState("LBL-ANL")
    records = [make_record(start=1000.0 + 100 * i, size=(i + 1) * 10_000)
               for i in range(10)]
    for r in records:
        state.append(r)
    history = state.history()
    np.testing.assert_array_equal(history.times, [r.end_time for r in records])
    np.testing.assert_array_equal(history.values, [r.bandwidth for r in records])
    np.testing.assert_array_equal(history.sizes, [r.file_size for r in records])


def test_snapshot_survives_growth():
    state = LinkState("LBL-ANL")
    for i in range(10):
        state.append(make_record(start=1000.0 + 100 * i))
    frozen = state.history()
    times_before = frozen.times.copy()
    # Push well past the initial capacity so the buffers reallocate.
    for i in range(10, 200):
        state.append(make_record(start=1000.0 + 100 * i))
    assert len(frozen) == 10
    np.testing.assert_array_equal(frozen.times, times_before)


def test_snapshot_survives_out_of_order_insert():
    state = LinkState("LBL-ANL")
    for i in range(5):
        state.append(make_record(start=1000.0 + 100 * i))
    frozen = state.history()
    # An overlapping transfer that finished before the last one.
    state.append(make_record(start=1040.0, duration=5.0))
    assert len(frozen) == 5
    assert len(state) == 6
    # The new history is still time-sorted.
    times = state.history().times
    assert (np.diff(times) >= 0).all()


def test_ops_recorded_in_snapshot():
    from repro.logs.record import Operation

    state = LinkState("LBL-ANL")
    state.append(make_record(start=1000.0))
    state.append(make_record(start=1100.0, operation=Operation.WRITE))
    _, _, _, ops, version = state.snapshot()
    np.testing.assert_array_equal(ops, [OP_READ, OP_WRITE])
    assert version == 2


def test_empty_link_name_rejected():
    with pytest.raises(ValueError):
        LinkState("")
