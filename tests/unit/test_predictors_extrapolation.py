"""The site-factor extrapolation model."""

import numpy as np
import pytest

from repro.core import History, paper_classification
from repro.core.predictors import SiteFactorModel
from repro.units import MB


def pair_history(bandwidth, n=20, sizes=None, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    values = bandwidth * (1 + noise * rng.standard_normal(n))
    sizes_arr = np.asarray(sizes if sizes is not None else [500 * MB] * n)
    return History(
        times=np.arange(n, dtype=float) * 3600.0,
        values=np.abs(values),
        sizes=sizes_arr,
    )


def multiplicative_grid(source_factors, sink_factors, mu=8e6):
    """Pair histories following exactly bw = mu * a_src * b_dst."""
    pairs = {}
    for src, a in source_factors.items():
        for dst, b in sink_factors.items():
            if src != dst:
                pairs[(src, dst)] = pair_history(mu * a * b, seed=hash((src, dst)) % 2**31)
    return pairs


class TestFit:
    def test_recovers_multiplicative_structure(self):
        pairs = multiplicative_grid(
            {"A": 1.5, "B": 0.8}, {"C": 1.2, "D": 0.9}
        )
        model = SiteFactorModel(window=20)
        for (src, dst), history in pairs.items():
            predicted = model.predict_pair(pairs, src, dst)
            actual = float(np.median(history.values))
            assert predicted == pytest.approx(actual, rel=1e-6), (src, dst)

    def test_extrapolates_held_out_pair(self):
        full = multiplicative_grid({"A": 1.5, "B": 0.8}, {"C": 1.2, "D": 0.9})
        held_out = ("B", "D")
        observed = {k: v for k, v in full.items() if k != held_out}
        model = SiteFactorModel(window=20)
        predicted = model.predict_pair(observed, *held_out)
        actual = float(np.median(full[held_out].values))
        assert predicted == pytest.approx(actual, rel=1e-6)

    def test_too_few_pairs_abstains(self):
        pairs = {("A", "B"): pair_history(5e6)}
        assert SiteFactorModel().predict_pair(pairs, "A", "B") is None

    def test_empty_histories_ignored(self):
        pairs = {
            ("A", "C"): pair_history(5e6),
            ("B", "C"): pair_history(7e6),
            ("A", "D"): History.empty(),
        }
        model = SiteFactorModel()
        assert model.predict_pair(pairs, "B", "C") is not None

    def test_unknown_site_degrades_to_grid_level(self):
        pairs = multiplicative_grid({"A": 1.0, "B": 1.0}, {"C": 1.0, "D": 1.0})
        model = SiteFactorModel(window=20)
        stranger = model.predict_pair(pairs, "Z", "C")
        known = model.predict_pair(pairs, "A", "C")
        assert stranger == pytest.approx(known, rel=0.05)

    def test_degenerate_pair_rejected(self):
        pairs = {("A", "A"): pair_history(5e6), ("B", "C"): pair_history(5e6)}
        with pytest.raises(ValueError):
            SiteFactorModel().fit(pairs)


class TestClassFilter:
    def test_class_filtered_summary(self):
        cls = paper_classification()
        # Pair with mixed sizes; the 1GB-class observations are the fast ones.
        sizes = np.array([10 * MB] * 10 + [900 * MB] * 10)
        values = np.array([2e6] * 10 + [9e6] * 10, dtype=float)
        h = History(times=np.arange(20, dtype=float), values=values, sizes=sizes)
        pairs = {("A", "C"): h, ("B", "C"): h}
        model = SiteFactorModel(classification=cls, label="1GB")
        predicted = model.predict_pair(pairs, "A", "C")
        assert predicted == pytest.approx(9e6, rel=1e-6)

    def test_classification_requires_label(self):
        with pytest.raises(ValueError):
            SiteFactorModel(classification=paper_classification())

    @pytest.mark.parametrize("kw", [dict(window=0), dict(min_pairs=1)])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SiteFactorModel(**kw)
