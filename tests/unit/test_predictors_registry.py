"""The Figure 4 registry."""

import pytest

from repro.core.predictors import (
    PAPER_PREDICTOR_NAMES,
    ArModel,
    ClassifiedPredictor,
    LastValue,
    TemporalAverage,
    TotalAverage,
    TotalMedian,
    WindowedAverage,
    WindowedMedian,
    classified_predictors,
    make_predictor,
    paper_predictors,
)


def test_exactly_fifteen_predictors():
    assert len(PAPER_PREDICTOR_NAMES) == 15
    assert len(paper_predictors()) == 15


def test_names_match_figure4():
    assert set(PAPER_PREDICTOR_NAMES) == {
        "AVG", "LV", "AVG5", "AVG15", "AVG25",
        "MED", "MED5", "MED15", "MED25",
        "AVG5hr", "AVG15hr", "AVG25hr",
        "AR", "AR5d", "AR10d",
    }


def test_types_match_figure4_cells():
    built = paper_predictors()
    assert isinstance(built["AVG"], TotalAverage)
    assert isinstance(built["LV"], LastValue)
    assert isinstance(built["AVG5"], WindowedAverage) and built["AVG5"].window == 5
    assert isinstance(built["MED"], TotalMedian)
    assert isinstance(built["MED25"], WindowedMedian) and built["MED25"].window == 25
    assert isinstance(built["AVG15hr"], TemporalAverage) and built["AVG15hr"].hours == 15
    assert isinstance(built["AR"], ArModel) and built["AR"].window_days is None
    assert isinstance(built["AR10d"], ArModel) and built["AR10d"].window_days == 10


def test_every_predictor_reports_its_registry_name():
    for name, predictor in paper_predictors().items():
        assert predictor.name == name


def test_classified_battery_is_parallel():
    classified = classified_predictors()
    assert len(classified) == 15
    for name in PAPER_PREDICTOR_NAMES:
        wrapped = classified[f"C-{name}"]
        assert isinstance(wrapped, ClassifiedPredictor)
        assert wrapped.base.name == name


def test_total_battery_is_thirty():
    """The paper's headline: 30 predictors."""
    battery = {**paper_predictors(), **classified_predictors()}
    assert len(battery) == 30


def test_make_predictor_by_name():
    assert make_predictor("AVG5").name == "AVG5"
    assert make_predictor("C-MED15").name == "C-MED15"
    with pytest.raises(KeyError):
        make_predictor("NOPE")
    with pytest.raises(KeyError):
        make_predictor("C-NOPE")


def test_registry_builds_fresh_instances():
    assert paper_predictors()["AVG"] is not paper_predictors()["AVG"]
