"""Replica-selection broker."""

import pytest

from repro.core import ReplicaBroker
from repro.core.predictors import TotalAverage, classified_predictors
from repro.logs import Operation, TransferLog
from repro.storage import ReplicaCatalog
from repro.units import MB
from tests.conftest import make_record

CLIENT = "140.221.65.69"


def site_log(mean_bw, n=20, client=CLIENT, size=500 * MB):
    log = TransferLog()
    for i in range(n):
        log.append(
            make_record(start=1000.0 + i * 3600.0, size=size,
                        bandwidth=mean_bw, source_ip=client)
        )
    return log


@pytest.fixture
def broker():
    catalog = ReplicaCatalog()
    catalog.register("lfn://dataset", "LBL", 500 * MB)
    catalog.register("lfn://dataset", "ISI", 500 * MB)
    logs = {"LBL": site_log(8e6), "ISI": site_log(3e6)}
    return ReplicaBroker(catalog, logs, TotalAverage())


def test_ranks_fastest_first(broker):
    ranked = broker.rank("lfn://dataset", CLIENT, now=1e6)
    assert [r.site for r in ranked] == ["LBL", "ISI"]
    assert ranked[0].predicted_bandwidth == pytest.approx(8e6)


def test_select_returns_top(broker):
    assert broker.select("lfn://dataset", CLIENT, now=1e6).site == "LBL"


def test_estimated_time(broker):
    best = broker.select("lfn://dataset", CLIENT, now=1e6)
    assert best.estimated_time(500 * MB) == pytest.approx(500 * MB / 8e6)


def test_unknown_file_raises(broker):
    with pytest.raises(KeyError):
        broker.rank("lfn://ghost", CLIENT, now=0.0)


def test_history_filtered_by_client():
    """Only transfers to *this* client count."""
    catalog = ReplicaCatalog()
    catalog.register("f", "LBL", 500 * MB)
    log = site_log(9e6, client="9.9.9.9")  # someone else's transfers
    broker = ReplicaBroker(catalog, {"LBL": log}, TotalAverage())
    ranked = broker.rank("f", CLIENT, now=1e6)
    assert ranked[0].predicted_bandwidth is None
    assert ranked[0].history_length == 0


def test_history_excludes_writes():
    catalog = ReplicaCatalog()
    catalog.register("f", "LBL", 500 * MB)
    log = TransferLog()
    log.append(make_record(start=1.0, bandwidth=9e6, operation=Operation.WRITE))
    broker = ReplicaBroker(catalog, {"LBL": log}, TotalAverage())
    assert broker.rank("f", CLIENT, now=10.0)[0].predicted_bandwidth is None


def test_unknown_sites_ranked_last():
    catalog = ReplicaCatalog()
    catalog.register("f", "LBL", 500 * MB)
    catalog.register("f", "ISI", 500 * MB)
    broker = ReplicaBroker(
        catalog, {"LBL": site_log(2e6)}, TotalAverage()  # no ISI log at all
    )
    ranked = broker.rank("f", CLIENT, now=1e6)
    assert [r.site for r in ranked] == ["LBL", "ISI"]
    assert ranked[1].predicted_bandwidth is None


def test_classified_predictor_gets_file_size():
    """A classified broker predicts from same-class history only."""
    catalog = ReplicaCatalog()
    catalog.register("big", "LBL", 900 * MB)
    log = TransferLog()
    for i in range(10):
        log.append(make_record(start=1000.0 * (i + 1), size=10 * MB,
                               bandwidth=1e6))
    for i in range(10, 20):
        log.append(make_record(start=1000.0 * (i + 1), size=900 * MB,
                               bandwidth=8e6))
    broker = ReplicaBroker(catalog, {"LBL": log},
                           classified_predictors()["C-AVG"])
    ranked = broker.rank("big", CLIENT, now=1e6)
    assert ranked[0].predicted_bandwidth == pytest.approx(8e6)


def test_deterministic_tiebreak_on_equal_predictions():
    catalog = ReplicaCatalog()
    for site in ("ISI", "LBL"):
        catalog.register("f", site, 500 * MB)
    logs = {"LBL": site_log(5e6), "ISI": site_log(5e6)}
    ranked = ReplicaBroker(catalog, logs, TotalAverage()).rank("f", CLIENT, 1e6)
    assert [r.site for r in ranked] == ["ISI", "LBL"]  # alphabetical on tie
