"""TransferRecord validation and derived fields."""

import pytest

from repro.logs import Operation, TransferRecord
from tests.conftest import make_record


class TestOperation:
    @pytest.mark.parametrize("text,expected", [
        ("read", Operation.READ), ("Write", Operation.WRITE), (" READ ", Operation.READ),
    ])
    def test_parse(self, text, expected):
        assert Operation.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            Operation.parse("append")


class TestValidation:
    def test_valid_record(self):
        r = make_record()
        assert r.total_time == pytest.approx(10.0)

    @pytest.mark.parametrize("kw", [
        dict(size=0),
        dict(duration=0.0),
        dict(duration=-1.0),
        dict(bandwidth=0.0),
        dict(bandwidth=-5.0),
        dict(streams=0),
        dict(buffer=0),
        dict(source_ip=""),
        dict(file_name=""),
    ])
    def test_invalid_fields(self, kw):
        with pytest.raises(ValueError):
            make_record(**kw)

    def test_nonfinite_timestamps(self):
        with pytest.raises(ValueError):
            make_record(start=float("nan"))

    def test_operation_coerced_from_string(self):
        r = make_record(operation="write")
        assert r.operation is Operation.WRITE


class TestDerived:
    def test_bandwidth_kbps_matches_paper_convention(self):
        # Figure 3: 10 MB in 4 s -> 2560 KB/s.
        r = make_record(size=10_240_000, duration=4.0)
        assert r.bandwidth_kbps == pytest.approx(2560)

    def test_from_timing_computes_bandwidth(self):
        r = TransferRecord.from_timing(
            source_ip="1.2.3.4",
            file_name="/v/f",
            file_size=1_000_000,
            volume="/v",
            start_time=0.0,
            end_time=4.0,
            operation=Operation.READ,
            streams=2,
            tcp_buffer=64_000,
        )
        assert r.bandwidth == pytest.approx(250_000)

    def test_from_timing_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            TransferRecord.from_timing(
                source_ip="1.2.3.4", file_name="/v/f", file_size=1, volume="/v",
                start_time=5.0, end_time=5.0, operation=Operation.READ,
                streams=1, tcp_buffer=1,
            )

    def test_with_bandwidth_replaces_only_bandwidth(self):
        r = make_record()
        r2 = r.with_bandwidth(123.0)
        assert r2.bandwidth == 123.0
        assert r2.file_size == r.file_size

    def test_as_row_matches_figure3_columns(self):
        row = make_record().as_row()
        assert list(row) == [
            "Source IP", "File Name", "File Size (Bytes)", "Volume",
            "StartTime", "EndTime", "TotalTime (Seconds)", "Bandwidth (KB/Sec)",
            "Read/Write", "Streams", "TCP-Buffer",
        ]
        assert row["Read/Write"] == "Read"
