"""LDIF entries and serialization."""

import pytest

from repro.mds import Entry, LdifError, format_entries, parse_ldif


class TestEntry:
    def test_attributes_case_folded(self):
        e = Entry("cn=x,o=grid")
        e.add("HostName", "h1")
        assert e.get("hostname") == ["h1"]
        assert e.first("HOSTNAME") == "h1"
        assert e.has("hostName")

    def test_multivalued(self):
        e = Entry("cn=x")
        e.add("recent", "1")
        e.add("recent", "2")
        assert e.get("recent") == ["1", "2"]

    def test_set_replaces(self):
        e = Entry("cn=x")
        e.add("a", "1")
        e.add("a", "2")
        e.set("a", "3")
        assert e.get("a") == ["3"]

    def test_first_of_missing_is_none(self):
        assert Entry("cn=x").first("nope") is None

    def test_values_stringified(self):
        e = Entry("cn=x")
        e.add("n", 42)
        assert e.get("n") == ["42"]

    def test_empty_dn_rejected(self):
        with pytest.raises(LdifError):
            Entry("  ")

    def test_equality(self):
        a = Entry("cn=x", {"a": ["1"]})
        b = Entry("cn=x", {"a": ["1"]})
        assert a == b
        assert a != Entry("cn=x", {"a": ["2"]})


class TestSerialization:
    def test_roundtrip(self):
        e = Entry("cn=140.221.65.69,o=grid", {
            "objectclass": ["GridFTPPerf"],
            "avgrdbandwidth": ["6062K"],
            "recentrdbandwidth": ["100K", "200K"],
        })
        parsed = parse_ldif(format_entries([e]))
        assert parsed == [e]

    def test_multiple_entries_blank_line_separated(self):
        entries = [Entry(f"cn={i},o=grid", {"a": [str(i)]}) for i in range(3)]
        text = format_entries(entries)
        assert text.count("\n\n") == 2
        assert parse_ldif(text) == entries

    def test_unsafe_value_base64(self):
        e = Entry("cn=x", {"note": [" leading space"]})
        text = format_entries([e])
        assert "note:: " in text
        assert parse_ldif(text) == [e]

    def test_comments_and_continuations(self):
        text = "# a comment\ndn: cn=x\nlonga: hello\n  world\n"
        entries = parse_ldif(text)
        assert entries[0].get("longa") == ["hello world"]

    def test_empty_text(self):
        assert parse_ldif("") == []
        assert format_entries([]) == ""

    @pytest.mark.parametrize("bad", [
        "attr: value\n",               # entry must start with dn
        "dn: cn=x\nno-colon-line\n",   # missing colon
        "dn: cn=x\ndn: cn=y\n",        # duplicate dn in one entry
        "dn: cn=x\nv:: !!!notb64\n",   # bad base64
    ])
    def test_malformed(self, bad):
        with pytest.raises(LdifError):
            parse_ldif(bad)
