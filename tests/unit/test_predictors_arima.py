"""AR(1) regression predictors."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import ArModel
from repro.core.predictors.arima import fit_ar1
from repro.core.predictors.base import PredictorError
from repro.units import DAY, HOUR
from tests.unit.test_predictors_mean import hist


class TestFit:
    def test_perfect_ar1_recovered(self):
        # Y_t = 2 + 0.5 * Y_{t-1}, started at 10.
        values = [10.0]
        for _ in range(20):
            values.append(2 + 0.5 * values[-1])
        a, b = fit_ar1(np.array(values))
        assert a == pytest.approx(2.0, abs=1e-6)
        assert b == pytest.approx(0.5, abs=1e-6)

    def test_constant_series_is_singular(self):
        assert fit_ar1(np.array([5.0, 5.0, 5.0, 5.0])) is None

    def test_too_few_points(self):
        assert fit_ar1(np.array([1.0, 2.0])) is None


class TestArModel:
    def test_prediction_extends_the_recurrence(self):
        values = [10.0]
        for _ in range(30):
            values.append(2 + 0.5 * values[-1])
        p = ArModel()
        predicted = p.predict(hist(values))
        assert predicted == pytest.approx(2 + 0.5 * values[-1], rel=1e-6)

    def test_falls_back_to_mean_when_singular(self):
        assert ArModel().predict(hist([7, 7, 7, 7])) == pytest.approx(7.0)

    def test_falls_back_to_mean_when_short(self):
        assert ArModel(min_points=5).predict(hist([4, 8])) == pytest.approx(6.0)

    def test_clamps_negative_extrapolation(self):
        # Steeply falling series: naive AR would go negative.
        values = [100.0, 50.0, 10.0, 1.0, 0.5]
        predicted = ArModel(clamp=0.1).predict(hist(values))
        assert predicted >= 0.05  # >= clamp * min(values)

    def test_temporal_window_variant(self):
        # 20 daily observations; AR5d sees only the last 5 days.
        values = [100.0] * 15 + [1.0, 1.0, 1.0, 1.0, 1.0]
        h = hist(values, spacing=DAY)
        # Window mean fallback (constant window -> singular): 1.0, not ~75.
        assert ArModel(window_days=5).predict(h) == pytest.approx(1.0)

    def test_empty_window_abstains(self):
        h = hist([5, 5, 5], spacing=HOUR)
        assert ArModel(window_days=1).predict(h, now=10 * DAY) is None

    def test_empty_history_abstains(self):
        assert ArModel().predict(History.empty(), now=0.0) is None

    def test_names(self):
        assert ArModel().name == "AR"
        assert ArModel(window_days=5).name == "AR5d"
        assert ArModel(window_days=10).name == "AR10d"

    @pytest.mark.parametrize("kw", [
        dict(window_days=0), dict(min_points=2), dict(clamp=1.5),
    ])
    def test_validation(self, kw):
        with pytest.raises(PredictorError):
            ArModel(**kw)
