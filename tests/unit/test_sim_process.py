"""Generator-based processes."""

import pytest

from repro.sim import Delay, Engine, Process, SimulationError


def test_delay_rejects_negative():
    with pytest.raises(SimulationError):
        Delay(-1.0)


def test_process_runs_with_delays():
    eng = Engine()
    ticks = []

    def proc():
        for _ in range(3):
            ticks.append(eng.now)
            yield Delay(10.0)

    Process(eng, proc())
    eng.run()
    assert ticks == [0.0, 10.0, 20.0]


def test_process_completes_and_is_dead():
    eng = Engine()

    def proc():
        yield Delay(1.0)

    p = Process(eng, proc())
    assert p.alive
    eng.run()
    assert not p.alive


def test_process_starts_at_current_time_not_immediately():
    """Construction schedules the first step; nothing runs until the engine does."""
    eng = Engine()
    ran = []

    def proc():
        ran.append(eng.now)
        yield Delay(1.0)

    Process(eng, proc())
    assert ran == []
    eng.run()
    assert ran == [0.0]


def test_interrupt_stops_process():
    eng = Engine()
    ticks = []

    def proc():
        while True:
            ticks.append(eng.now)
            yield Delay(5.0)

    p = Process(eng, proc())
    eng.run(until=12.0)
    p.interrupt()
    eng.run(until=100.0)
    assert ticks == [0.0, 5.0, 10.0]
    assert not p.alive


def test_interrupt_is_idempotent():
    eng = Engine()

    def proc():
        yield Delay(1.0)

    p = Process(eng, proc())
    p.interrupt()
    p.interrupt()
    assert not p.alive


def test_yielding_non_delay_is_an_error():
    eng = Engine()

    def proc():
        yield 42

    p = Process(eng, proc())
    with pytest.raises(SimulationError):
        eng.run()
    assert not p.alive


def test_two_processes_interleave():
    eng = Engine()
    order = []

    def make(tag, period):
        def proc():
            for _ in range(2):
                order.append((tag, eng.now))
                yield Delay(period)
        return proc

    Process(eng, make("a", 3.0)())
    Process(eng, make("b", 5.0)())
    eng.run()
    assert order == [("a", 0.0), ("b", 0.0), ("a", 3.0), ("b", 5.0)]
