"""GRIS and GIIS: providers, caching, aggregation, soft-state expiry."""

import pytest

from repro.mds import GIIS, GRIS, Entry


class CountingProvider:
    """Provider that counts generation calls (for cache tests)."""

    def __init__(self, dn="cn=x,o=grid", **attrs):
        self.dn = dn
        self.attrs = {k: [v] for k, v in attrs.items()} or {"a": ["1"]}
        self.calls = 0

    def entries(self, now):
        self.calls += 1
        return [Entry(self.dn, self.attrs)]


class TestGRIS:
    def test_search_returns_provider_entries(self):
        gris = GRIS("gris-lbl")
        gris.add_provider("gftp", CountingProvider())
        assert len(gris.search(now=0.0)) == 1

    def test_filter_applied(self):
        gris = GRIS("g")
        gris.add_provider("p", CountingProvider(objectclass="GridFTPPerf"))
        assert gris.search(now=0.0, flt="(objectclass=GridFTPPerf)")
        assert gris.search(now=0.0, flt="(objectclass=Other)") == []

    def test_base_dn_suffix_match(self):
        gris = GRIS("g")
        gris.add_provider("p", CountingProvider(dn="cn=x,dc=lbl,dc=gov,o=grid"))
        assert gris.search(now=0.0, base="o=grid")
        assert gris.search(now=0.0, base="dc=anl,dc=gov,o=grid") == []

    def test_cache_bounds_provider_calls(self):
        provider = CountingProvider()
        gris = GRIS("g", cache_ttl=30.0)
        gris.add_provider("p", provider)
        gris.search(now=0.0)
        gris.search(now=10.0)
        assert provider.calls == 1
        gris.search(now=31.0)
        assert provider.calls == 2

    def test_invalidate_drops_cache(self):
        provider = CountingProvider()
        gris = GRIS("g", cache_ttl=1e9)
        gris.add_provider("p", provider)
        gris.search(now=0.0)
        gris.invalidate()
        gris.search(now=1.0)
        assert provider.calls == 2

    def test_duplicate_provider_key_rejected(self):
        gris = GRIS("g")
        gris.add_provider("p", CountingProvider())
        with pytest.raises(ValueError):
            gris.add_provider("p", CountingProvider())

    def test_remove_provider(self):
        gris = GRIS("g")
        gris.add_provider("p", CountingProvider())
        gris.remove_provider("p")
        assert gris.search(now=0.0) == []
        assert gris.providers() == []


class TestGIIS:
    def make_gris(self, name, dn):
        gris = GRIS(name)
        gris.add_provider("p", CountingProvider(dn=dn, objectclass="GridFTPPerf"))
        return gris

    def test_aggregates_registered_grises(self):
        giis = GIIS("giis")
        giis.register(self.make_gris("a", "cn=a,o=grid"), now=0.0)
        giis.register(self.make_gris("b", "cn=b,o=grid"), now=0.0)
        dns = {e.dn for e in giis.search(now=1.0)}
        assert dns == {"cn=a,o=grid", "cn=b,o=grid"}

    def test_expired_gris_drops_out(self):
        giis = GIIS("giis", default_ttl=100.0)
        giis.register(self.make_gris("a", "cn=a,o=grid"), now=0.0)
        assert giis.search(now=50.0)
        assert giis.search(now=150.0) == []
        assert giis.registered(150.0) == []

    def test_renewal_keeps_gris_live(self):
        giis = GIIS("giis", default_ttl=100.0)
        giis.register(self.make_gris("a", "cn=a,o=grid"), now=0.0)
        giis.renew("a", now=90.0)
        assert giis.search(now=150.0)

    def test_filter_pushed_through(self):
        giis = GIIS("giis")
        giis.register(self.make_gris("a", "cn=a,o=grid"), now=0.0)
        assert giis.search(now=1.0, flt="(objectclass=GridFTPPerf)")
        assert giis.search(now=1.0, flt="(objectclass=Nope)") == []

    def test_duplicate_dns_merged(self):
        giis = GIIS("giis")
        giis.register(self.make_gris("a", "cn=same,o=grid"), now=0.0)
        giis.register(self.make_gris("b", "cn=same,o=grid"), now=0.0)
        assert len(giis.search(now=1.0)) == 1

    def test_hierarchical_giis(self):
        child = GIIS("child")
        child.register(self.make_gris("a", "cn=a,o=grid"), now=0.0)
        parent = GIIS("parent")
        parent.register(child, now=0.0)
        assert [e.dn for e in parent.search(now=1.0)] == ["cn=a,o=grid"]

    def test_self_registration_rejected(self):
        giis = GIIS("giis")
        with pytest.raises(ValueError):
            giis.register(giis, now=0.0)


class WedgedSource:
    """A registered source whose search always raises (a wedged provider)."""

    def __init__(self, name="wedged"):
        self.name = name
        self.calls = 0

    def search(self, now, flt=None, base=None):
        self.calls += 1
        raise TimeoutError("provider wedged")


class TestGIISDegradation:
    def make_gris(self, name, dn):
        gris = GRIS(name)
        gris.add_provider("p", CountingProvider(dn=dn, objectclass="GridFTPPerf"))
        return gris

    def test_one_wedged_source_does_not_take_down_the_view(self):
        giis = GIIS("top", breaker_failures=3)
        giis.register(self.make_gris("ok", "cn=ok,o=grid"), now=0.0)
        giis.register(WedgedSource(), now=0.0)
        entries = giis.search(now=1.0)
        assert [e.dn for e in entries] == ["cn=ok,o=grid"]

    def test_breaker_opens_and_stops_hammering_the_wedged_source(self):
        wedged = WedgedSource()
        giis = GIIS("top", breaker_failures=3, breaker_reset=60.0)
        giis.register(wedged, now=0.0)
        for t in range(5):
            giis.search(now=float(t))
        assert wedged.calls == 3              # benched after the third failure
        assert giis.degraded_sources(now=5.0) == ["wedged"]
        assert giis.breaker_status()["wedged"]["state"] == "open"

    def test_stale_entries_served_while_benched(self):
        class FlakySource:
            name = "flaky"

            def __init__(self):
                self.fail = False
                self.calls = 0

            def search(self, now, flt=None, base=None):
                self.calls += 1
                if self.fail:
                    raise OSError("wedged now")
                return [Entry("cn=flaky,o=grid", {"a": ["1"]})]

        source = FlakySource()
        giis = GIIS("top", breaker_failures=1, breaker_reset=60.0)
        giis.register(source, now=0.0)
        assert len(giis.search(now=0.0)) == 1  # good answer cached
        source.fail = True
        # Failure trips the breaker but the view still answers, stale.
        assert [e.dn for e in giis.search(now=1.0)] == ["cn=flaky,o=grid"]
        calls_while_benched = source.calls
        assert [e.dn for e in giis.search(now=2.0)] == ["cn=flaky,o=grid"]
        assert source.calls == calls_while_benched  # breaker short-circuits

    def test_half_open_probe_restores_live_answers_after_recovery(self):
        class FlakySource:
            name = "flaky"

            def __init__(self):
                self.fail = True

            def search(self, now, flt=None, base=None):
                if self.fail:
                    raise OSError("down")
                return [Entry("cn=back,o=grid", {"a": ["1"]})]

        source = FlakySource()
        giis = GIIS("top", breaker_failures=1, breaker_reset=30.0)
        giis.register(source, now=0.0, ttl=1e9)
        assert giis.search(now=0.0) == []      # fails, trips, no stale yet
        source.fail = False
        assert giis.search(now=10.0) == []     # still benched
        assert [e.dn for e in giis.search(now=31.0)] == ["cn=back,o=grid"]
        assert giis.breaker_status()["flaky"]["state"] == "closed"

    def test_stale_answers_respect_the_inquiry_filter(self):
        class OneGoodThenDead:
            name = "s"

            def __init__(self):
                self.dead = False

            def search(self, now, flt=None, base=None):
                if self.dead:
                    raise OSError("down")
                entry = Entry("cn=x,o=grid", {"objectclass": ["GridFTPPerf"]})
                return [entry] if flt is None or flt.matches(entry) else []

        source = OneGoodThenDead()
        giis = GIIS("top", breaker_failures=1, breaker_reset=1e9)
        giis.register(source, now=0.0, ttl=1e9)
        assert giis.search(now=0.0, flt="(objectclass=GridFTPPerf)")
        source.dead = True
        giis.search(now=1.0, flt="(objectclass=GridFTPPerf)")  # trips
        # The stale cache answered for the filter it was built for; a
        # *different* filter has no stale answer and returns nothing.
        assert giis.search(now=2.0, flt="(objectclass=GridFTPPerf)")
        assert giis.search(now=3.0, flt="(objectclass=Nope)") == []

    def test_source_failures_are_counted(self):
        from repro.obs import get_registry

        before = get_registry().counter("mds_giis_source_errors", "").value
        giis = GIIS("top", breaker_failures=10)
        giis.register(WedgedSource(), now=0.0)
        giis.search(now=0.0)
        giis.search(now=1.0)
        assert (
            get_registry().counter("mds_giis_source_errors", "").value
            == before + 2
        )
