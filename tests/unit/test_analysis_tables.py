"""Analysis computations on synthetic (fast) inputs."""

import numpy as np
import pytest

from repro.analysis import (
    compute_census,
    compute_class_errors,
    compute_classification_impact,
    compute_relative_table,
    render_census,
    render_class_errors,
    render_classification_impact,
    render_relative_table,
)
from repro.analysis.summary import check_summary_claims, render_summary
from repro.core.predictors.registry import PAPER_PREDICTOR_NAMES
from repro.logs import TransferLog
from repro.units import HOUR, MB
from repro.workload.campaigns import CampaignOutput
from tests.conftest import make_record


def synthetic_output(link="LBL-ANL", n=60, seed=0):
    """A log with size-dependent bandwidth plus noise."""
    rng = np.random.default_rng(seed)
    log = TransferLog()
    sizes = [10 * MB, 100 * MB, 500 * MB, 1000 * MB]
    base = {10 * MB: 2e6, 100 * MB: 6e6, 500 * MB: 8e6, 1000 * MB: 9e6}
    # Small transfers are noisier (startup effects amplify load jitter).
    sigma = {10 * MB: 0.45, 100 * MB: 0.18, 500 * MB: 0.15, 1000 * MB: 0.15}
    for i in range(n):
        size = sizes[i % 4]
        bw = base[size] * float(rng.lognormal(0, sigma[size]))
        log.append(make_record(start=1e6 + i * 2 * HOUR, size=size, bandwidth=bw))
    return CampaignOutput(
        link=link, server_site="LBL", client_site="ANL",
        log=log, outcomes=[],
    )


@pytest.fixture(scope="module")
def errors():
    return compute_class_errors("LBL-ANL", synthetic_output().log.records())


class TestCensus:
    def test_counts(self, classification):
        months = {"August": {"LBL-ANL": synthetic_output()}}
        census = compute_census(months, classification)
        assert census.count("August", "LBL-ANL", "All") == 60
        assert census.count("August", "LBL-ANL", "10MB") == 15
        assert sum(
            census.count("August", "LBL-ANL", lbl) for lbl in classification.labels
        ) == 60

    def test_render(self, classification):
        months = {"Aug": {"L": synthetic_output()}, "Dec": {"L": synthetic_output()}}
        text = render_census(compute_census(months, classification))
        assert "All" in text and "Aug" in text and "Dec" in text


class TestClassErrors:
    def test_all_predictors_present(self, errors):
        for label in ("10MB", "100MB", "500MB", "1GB"):
            assert set(errors.classified[label]) == set(PAPER_PREDICTOR_NAMES)
            assert set(errors.unclassified[label]) == set(PAPER_PREDICTOR_NAMES)

    def test_classification_beats_mixing_on_small_class(self, errors):
        # Size-dependent series: unclassified history mixes 2-9 MB/s.
        assert errors.classified["10MB"]["AVG"] < errors.unclassified["10MB"]["AVG"]

    def test_best_worst_helpers(self, errors):
        assert errors.best("1GB") <= errors.worst("1GB")

    def test_render_mentions_figure(self, errors):
        text = render_class_errors(errors, "100MB")
        assert "Figure 9" in text and "AVG25hr" in text


class TestClassificationImpact:
    def test_improvement_positive_on_synthetic(self, errors):
        impact = compute_classification_impact(errors)
        assert impact.mean_improvement() > 0

    def test_per_predictor_tables_complete(self, errors):
        impact = compute_classification_impact(errors)
        assert set(impact.classified_avg) == set(PAPER_PREDICTOR_NAMES)

    def test_render(self, errors):
        impact = compute_classification_impact(errors)
        text = render_classification_impact(impact)
        assert "Figure 12" in text and "mean reduction" in text


class TestRelativeTable:
    def test_best_percentages_sum_to_100(self, errors, classification):
        table = compute_relative_table("LBL-ANL", errors.result,
                                       predictor_names=tuple(f"C-{n}" for n in PAPER_PREDICTOR_NAMES))
        for label in classification.labels:
            perf = table.per_class[label]
            if perf.compared:
                total_best = sum(perf.best_pct(n) for n in table.predictor_names)
                assert total_best == pytest.approx(100.0)

    def test_render(self, errors):
        table = compute_relative_table("LBL-ANL", errors.result)
        text = render_relative_table(table, "10MB")
        assert "Figure 18" in text


class TestSummary:
    def test_claims_on_synthetic(self, errors):
        claims = check_summary_claims(errors)
        assert claims.classification_helps
        assert claims.small_files_harder
        text = render_summary(claims)
        assert "Section 6.2 claims" in text
        assert "LBL-ANL" in text
