"""repro.obs.quality — streaming error statistics and pairing mechanics."""

import math

import numpy as np
import pytest

from repro.obs.quality import (
    CALIBRATION_EDGES,
    CALIBRATION_LABELS,
    AccuracyTracker,
    ErrorStats,
    merge_stats,
)
from repro.store.checkpoint import dumps, loads


# ----------------------------------------------------------------------
# ErrorStats vs a numpy reference
# ----------------------------------------------------------------------
def test_error_stats_matches_numpy_reference():
    rng = np.random.default_rng(7)
    predicted = rng.uniform(1e5, 1e8, size=300)
    actual = rng.uniform(1e5, 1e8, size=300)
    stats = ErrorStats(window=64)
    for i, (p, a) in enumerate(zip(predicted, actual)):
        stats.add(float(p), float(a), when=float(i))

    err = predicted - actual
    frac = err / actual
    s = stats.summary()
    assert s["count"] == 300
    assert s["mape"] == pytest.approx(np.mean(np.abs(frac)) * 100.0, rel=1e-12)
    assert s["mse"] == pytest.approx(np.mean(err**2), rel=1e-12)
    assert s["rmse"] == pytest.approx(math.sqrt(np.mean(err**2)), rel=1e-12)
    assert s["bias_pct"] == pytest.approx(np.mean(frac) * 100.0, rel=1e-12)
    # The window covers exactly the newest 64 pairs.
    assert s["window"]["count"] == 64
    assert s["window"]["mape"] == pytest.approx(
        np.mean(np.abs(frac[-64:])) * 100.0, rel=1e-12)
    assert s["window"]["mse"] == pytest.approx(np.mean(err[-64:] ** 2), rel=1e-12)
    assert s["last_abs_pct"] == pytest.approx(abs(frac[-1]) * 100.0, rel=1e-12)
    assert sum(stats.buckets) == 300


def test_calibration_buckets_split_on_the_documented_edges():
    stats = ErrorStats(window=8)
    # One prediction per bucket: ratios straddling every edge.
    ratios = [0.1, 0.3, 0.6, 0.9, 1.0, 1.1, 1.5, 3.0, 5.0]
    assert len(ratios) == len(CALIBRATION_LABELS)
    for i, ratio in enumerate(ratios):
        stats.add(ratio * 100.0, 100.0, when=float(i))
    s = stats.summary()
    assert s["calibration"] == {label: 1 for label in CALIBRATION_LABELS}
    assert len(CALIBRATION_EDGES) + 1 == len(CALIBRATION_LABELS)


def test_empty_summary_is_all_none():
    s = ErrorStats(window=4).summary()
    assert s["count"] == 0
    assert s["mape"] is None and s["mse"] is None
    assert s["window"] == {"count": 0, "mape": None, "mse": None}
    assert s["calibration"] == {}


# ----------------------------------------------------------------------
# persistence through the real checkpoint codec
# ----------------------------------------------------------------------
def test_state_roundtrips_through_checkpoint_codec():
    stats = ErrorStats(window=16)
    for i in range(40):
        stats.add(100.0 + i, 90.0 + 2 * i, when=1000.0 + i)
    stats.add_abstention()
    stats.add_unscorable()

    revived = ErrorStats.load_state(loads(dumps(stats.state())))
    assert revived.summary() == stats.summary()
    assert isinstance(revived.count, int)
    assert all(isinstance(b, int) for b in revived.buckets)
    assert revived.window.maxlen == 16


def test_empty_state_roundtrips():
    revived = ErrorStats.load_state(loads(dumps(ErrorStats(window=8).state())))
    assert revived.summary() == ErrorStats(window=8).summary()


# ----------------------------------------------------------------------
# merge_stats
# ----------------------------------------------------------------------
def test_merge_stats_is_exact_over_partitions():
    rng = np.random.default_rng(11)
    predicted = rng.uniform(1.0, 100.0, size=90)
    actual = rng.uniform(1.0, 100.0, size=90)
    whole = ErrorStats(window=32)
    parts = [ErrorStats(window=32) for _ in range(3)]
    for i, (p, a) in enumerate(zip(predicted, actual)):
        whole.add(float(p), float(a), when=float(i))
        parts[i % 3].add(float(p), float(a), when=float(i))
    merged = merge_stats(parts, window=32).summary()
    reference = whole.summary()
    for key in ("count", "mape", "mse", "bias_pct", "calibration"):
        assert merged[key] == pytest.approx(reference[key])
    # Merged window = newest 32 pairs by timestamp == whole's window.
    assert merged["window"]["count"] == 32
    assert merged["window"]["mape"] == pytest.approx(reference["window"]["mape"])


# ----------------------------------------------------------------------
# AccuracyTracker pairing
# ----------------------------------------------------------------------
def test_score_consumes_only_predictions_before_the_version():
    # score_batch=1 drains every observation; threshold=0.0 surfaces
    # every scored pair as bad-detail, which makes pairing observable.
    tracker = AccuracyTracker(window=8, score_batch=1, threshold=0.0)
    tracker.record("L", "C-AVG15", 100.0, version=5, kind="streamed")
    tracker.record("L", "C-AVG15", 110.0, version=6, kind="streamed")
    # An observation producing version 6 pairs only with the version-5
    # prediction; the version-6 one waits for the next transfer.
    pairs, worst, bad = tracker.score("L", actual=100.0, when=1.0, version=6)
    assert (pairs, worst) == (1, 0.0)
    assert [(ln, s, p, a) for ln, s, p, a, _, _ in bad] == \
        [("L", "C-AVG15", 100.0, 100.0)]
    assert tracker.pending_count() == 1
    pairs, worst, bad = tracker.score("L", actual=100.0, when=2.0, version=7)
    assert (pairs, worst) == (1, pytest.approx(0.1))
    assert [(s, p) for _, s, p, _, _, _ in bad] == [("C-AVG15", 110.0)]
    assert tracker.pending_count() == 0
    assert tracker.scored == 2


def test_scoring_defers_until_the_batch_then_drains_exactly():
    # The batch counts *staged entries* — predictions and observations
    # both land on the shared staging deque.  Three record+observe
    # rounds stage six entries, so score_batch=6 drains on the third
    # observation.
    tracker = AccuracyTracker(window=8, score_batch=6, threshold=0.0)
    for v in range(3):
        tracker.record("L", "C-AVG15", 100.0, version=v, kind="streamed")
        deferred = tracker.score("L", actual=50.0, when=float(v), version=v + 1)
        if v < 2:
            # Deferred: nothing folded yet, stats untouched.
            assert deferred == (0, 0.0, [])
            assert tracker.scored == 0
        else:
            # Third observation completes the batch: the whole stage
            # replays in arrival order, exactly as immediate scoring
            # would have folded it.
            pairs, worst, bad = deferred
            assert pairs == 3
            assert worst == pytest.approx(1.0)
            assert [p for _, _, p, _, _, _ in bad] == [100.0, 100.0, 100.0]
    assert tracker.scored == 3
    # force=True bypasses the batch for live subscribers.
    tracker.record("L", "C-AVG15", 75.0, version=3, kind="streamed")
    pairs, worst, _ = tracker.score(
        "L", actual=50.0, when=3.0, version=4, force=True)
    assert (pairs, worst) == (1, pytest.approx(0.5))


def test_reads_drain_queued_observations_first():
    tracker = AccuracyTracker(window=8)  # default batch: 32
    tracker.record("L", "C-AVG15", 120.0, version=1, kind="streamed")
    assert tracker.score("L", actual=100.0, when=1.0, version=2) == (0, 0.0, [])
    # status() must not show a stale zero while a drain is pending.
    status = tracker.status()
    assert status["scored"] == 1
    assert status["pending"] == 0
    assert status["by_spec"]["C-AVG15"]["mape"] == pytest.approx(20.0)


def test_abstentions_and_unscorable_actuals_are_counted_not_scored():
    tracker = AccuracyTracker(window=8)
    tracker.record("L", "C-AVG15", None, version=1, kind="streamed")
    tracker.score("L", actual=50.0, when=1.0, version=2)
    tracker.record("L", "C-AVG15", 10.0, version=2, kind="streamed")
    tracker.score("L", actual=0.0, when=2.0, version=3)  # unscorable
    status = tracker.status()
    spec = status["by_spec"]["C-AVG15"]
    assert spec["count"] == 0
    assert spec["abstentions"] == 1
    assert spec["unscorable"] == 1
    assert status["overall"]["mape"] is None


def test_degraded_answers_score_separately():
    tracker = AccuracyTracker(window=8)
    tracker.record("L", "C-AVG15", 200.0, version=1, kind="degraded")
    tracker.record("L", "C-AVG15", 100.0, version=1, kind="streamed")
    tracker.score("L", actual=100.0, when=1.0, version=2)
    status = tracker.status()
    assert status["by_spec"]["C-AVG15"]["count"] == 1
    assert status["by_spec"]["C-AVG15"]["mape"] == pytest.approx(0.0)
    assert status["degraded"]["count"] == 1
    assert status["degraded"]["mape"] == pytest.approx(100.0)


def test_pending_queue_is_bounded_and_drops_are_counted():
    tracker = AccuracyTracker(
        window=8, max_pending=4, score_batch=1, threshold=0.0)
    for i in range(10):
        tracker.record("L", "C-AVG15", float(i), version=1, kind="streamed")
    assert tracker.pending_count() == 4
    assert tracker.dropped == 6
    pairs, _, bad = tracker.score("L", actual=1.0, when=1.0, version=2)
    # Only the newest four predictions survived the cap.
    assert pairs == 4
    assert [p for _, _, p, _, _, _ in bad] == [6.0, 7.0, 8.0, 9.0]


def test_deferral_never_drops_pairs_the_cap_would_have_scored():
    # The drain replays staged entries in arrival order, so an
    # observation staged *before* the pending cap would overflow still
    # consumes its pairs first — deferral never evicts answers that
    # immediate scoring would have scored.
    tracker = AccuracyTracker(window=8, max_pending=2, score_batch=32)
    tracker.record("L", "C-AVG15", 100.0, version=1, kind="streamed")
    tracker.record("L", "C-AVG15", 100.0, version=2, kind="streamed")
    tracker.score("L", actual=100.0, when=1.0, version=3)  # deferred
    tracker.record("L", "C-AVG15", 100.0, version=3, kind="streamed")
    status = tracker.status()
    assert status["dropped"] == 0
    assert status["scored"] == 2
    assert status["pending"] == 1


def test_tracker_link_state_roundtrips_and_ram_wins():
    tracker = AccuracyTracker(window=8)
    tracker.record("L", "C-AVG15", 120.0, version=1, kind="streamed")
    tracker.score("L", actual=100.0, when=1.0, version=2)
    payload = loads(dumps({"accuracy": tracker.link_state("L")}))["accuracy"]

    fresh = AccuracyTracker(window=8)
    assert fresh.load_link_state("L", payload)
    assert fresh.status()["links"]["L"] == tracker.status()["links"]["L"]
    assert fresh.scored == 1
    # A second load for a link already resident is a no-op (the live
    # in-RAM state is always at least as fresh as its checkpoint).
    fresh.record("L", "C-AVG15", 90.0, version=2, kind="streamed")
    fresh.score("L", actual=90.0, when=2.0, version=3)
    assert not fresh.load_link_state("L", payload)
    assert fresh.status()["links"]["L"]["overall"]["count"] == 2


def test_forget_drops_pending_and_stats():
    tracker = AccuracyTracker(window=8)
    tracker.record("L", "C-AVG15", 1.0, version=1, kind="streamed")
    tracker.score("L", actual=1.0, when=1.0, version=2)
    tracker.record("L", "C-AVG15", 2.0, version=2, kind="streamed")
    tracker.forget("L")
    assert tracker.pending_count() == 0
    assert tracker.link_state("L") is None
    assert tracker.status()["link_count"] == 0
