"""The continuous size-scaling predictor."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import SizeScaledPredictor
from repro.core.predictors.base import PredictorError
from repro.core.predictors.size_model import fit_saturating_curve
from repro.units import MB


def saturating_history(rate=10e6, half_size=20 * MB, n=30, level=1.0, rng=None):
    rng = rng or np.random.default_rng(0)
    sizes = rng.choice([1 * MB, 10 * MB, 100 * MB, 500 * MB, 1000 * MB], size=n)
    bw = level * rate * sizes / (sizes + half_size)
    times = np.arange(n, dtype=float) * 3600.0
    return History(times=times, values=bw.astype(float), sizes=sizes.astype(np.int64))


class TestCurveFit:
    def test_recovers_exact_parameters(self):
        h = saturating_history()
        rate, half = fit_saturating_curve(
            np.asarray(h.sizes, dtype=float), h.values
        )
        assert rate == pytest.approx(10e6, rel=1e-6)
        assert half == pytest.approx(20 * MB, rel=1e-6)

    def test_needs_three_points(self):
        assert fit_saturating_curve(np.array([1.0, 2.0]), np.array([1.0, 2.0])) is None

    def test_single_size_is_degenerate(self):
        sizes = np.array([10 * MB] * 5, dtype=float)
        bw = np.array([5e6] * 5)
        assert fit_saturating_curve(sizes, bw) is None

    def test_negative_intercept_clamped(self):
        # Small files faster than large (unphysical): S0 clamps to 0.
        sizes = np.array([1 * MB, 10 * MB, 100 * MB], dtype=float)
        bw = np.array([9e6, 8e6, 7e6])
        fit = fit_saturating_curve(sizes, bw)
        if fit is not None:
            assert fit[1] >= 0.0


class TestPredictor:
    def test_exact_on_noiseless_curve(self):
        h = saturating_history()
        p = SizeScaledPredictor()
        for target in (5 * MB, 50 * MB, 800 * MB):
            expected = 10e6 * target / (target + 20 * MB)
            assert p.predict(h, target_size=target, now=1e9) == pytest.approx(
                expected, rel=1e-6
            )

    def test_tracks_load_level(self):
        """Recent observations at half the curve halve the prediction."""
        base = saturating_history(n=30)
        dimmed_values = base.values.copy()
        dimmed_values[-15:] *= 0.5
        h = History(times=base.times, values=dimmed_values, sizes=base.sizes)
        p = SizeScaledPredictor(level_window=10)
        predicted = p.predict(h, target_size=100 * MB, now=1e9)
        # Curve fit is polluted by the mixed levels, but the level estimate
        # must pull the prediction well below the clean-curve value.
        clean = SizeScaledPredictor().predict(base, target_size=100 * MB, now=1e9)
        assert predicted < 0.8 * clean

    def test_interpolates_between_observed_sizes(self):
        h = saturating_history()
        p = SizeScaledPredictor()
        mid = p.predict(h, target_size=50 * MB, now=1e9)
        lo = p.predict(h, target_size=10 * MB, now=1e9)
        hi = p.predict(h, target_size=100 * MB, now=1e9)
        assert lo < mid < hi

    def test_falls_back_to_mean_when_unfittable(self):
        h = History(
            times=np.arange(4, dtype=float),
            values=np.array([4e6, 6e6, 5e6, 5e6]),
            sizes=np.array([10 * MB] * 4),  # single size: degenerate fit
        )
        p = SizeScaledPredictor(min_points=3)
        assert p.predict(h, target_size=100 * MB, now=10.0) == pytest.approx(5e6)

    def test_requires_target_size(self):
        with pytest.raises(PredictorError):
            SizeScaledPredictor().predict(saturating_history(), now=1e9)

    def test_empty_history_abstains(self):
        assert SizeScaledPredictor().predict(History.empty(), target_size=1, now=0.0) is None

    @pytest.mark.parametrize("kw", [dict(level_window=0), dict(min_points=2)])
    def test_validation(self, kw):
        with pytest.raises(PredictorError):
            SizeScaledPredictor(**kw)
