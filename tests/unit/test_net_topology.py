"""Topology: sites, links, routed paths."""

import networkx as nx
import pytest

from repro.net import ConstantLoad, Link, Path, Site, Topology


def make_topology():
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_site(Site(name=name, domain="test.org", address=f"10.0.0.{ord(name)}"))
    topo.add_link(Link(a="A", b="B", capacity=10e6, rtt=0.05))
    topo.add_link(Link(a="B", b="C", capacity=5e6, rtt=0.02))
    return topo


class TestSite:
    def test_hostname_defaults_from_domain(self):
        site = Site(name="ANL", domain="anl.gov")
        assert site.hostname == "anl.anl.gov"

    def test_explicit_hostname_kept(self):
        site = Site(name="LBL", domain="lbl.gov", hostname="dpsslx04.lbl.gov")
        assert site.hostname == "dpsslx04.lbl.gov"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Site(name="")


class TestLink:
    def test_name_is_sorted(self):
        assert Link(a="Z", b="A", capacity=1e6, rtt=0.01).name == "A-Z"

    def test_available_under_load(self):
        link = Link(a="A", b="B", capacity=10e6, rtt=0.01, load=ConstantLoad(0.4))
        assert link.available(0.0) == pytest.approx(6e6)

    def test_available_clamps_extreme_load(self):
        link = Link(a="A", b="B", capacity=10e6, rtt=0.01, load=ConstantLoad(5.0))
        assert link.available(0.0) == pytest.approx(0.1e6)

    def test_effective_rtt_grows_with_load(self):
        idle = Link(a="A", b="B", capacity=1e6, rtt=0.05, load=ConstantLoad(0.0))
        busy = Link(a="A", b="B", capacity=1e6, rtt=0.05, load=ConstantLoad(0.8))
        assert idle.effective_rtt(0.0) == pytest.approx(0.05)
        assert busy.effective_rtt(0.0) > idle.effective_rtt(0.0)

    @pytest.mark.parametrize("kwargs", [
        dict(capacity=0, rtt=0.01),
        dict(capacity=1e6, rtt=0),
        dict(capacity=-1, rtt=0.01),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            Link(a="A", b="B", **kwargs)


class TestTopology:
    def test_duplicate_site_rejected(self):
        topo = make_topology()
        with pytest.raises(ValueError):
            topo.add_site(Site(name="A"))

    def test_duplicate_link_rejected(self):
        topo = make_topology()
        with pytest.raises(ValueError):
            topo.add_link(Link(a="B", b="A", capacity=1e6, rtt=0.01))

    def test_link_to_unknown_site_rejected(self):
        topo = make_topology()
        with pytest.raises(ValueError):
            topo.add_link(Link(a="A", b="Z", capacity=1e6, rtt=0.01))

    def test_unknown_site_lookup(self):
        with pytest.raises(KeyError):
            make_topology().site("Z")

    def test_direct_path(self):
        path = make_topology().path("A", "B")
        assert [l.name for l in path.links] == ["A-B"]
        assert path.rtt == pytest.approx(0.05)

    def test_multi_hop_path_aggregates(self):
        path = make_topology().path("A", "C")
        assert len(path.links) == 2
        assert path.rtt == pytest.approx(0.07)
        assert path.bottleneck_capacity == pytest.approx(5e6)

    def test_same_site_path_rejected(self):
        with pytest.raises(ValueError):
            make_topology().path("A", "A")

    def test_disconnected_sites_raise(self):
        topo = make_topology()
        topo.add_site(Site(name="D"))
        with pytest.raises(nx.NetworkXNoPath):
            topo.path("A", "D")

    def test_link_between(self):
        topo = make_topology()
        assert topo.link_between("A", "B") is not None
        assert topo.link_between("A", "C") is None


class TestPath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(src=Site(name="A"), dst=Site(name="B"), links=())

    def test_path_available_is_bottleneck(self):
        topo = Topology()
        for name in "AB":
            topo.add_site(Site(name=name))
        topo.add_link(Link(a="A", b="B", capacity=10e6, rtt=0.01, load=ConstantLoad(0.5)))
        path = topo.path("A", "B")
        assert path.available(0.0) == pytest.approx(5e6)

    def test_mean_available_averages_over_window(self):
        class Ramp:
            def utilization(self, t):
                return min(t / 100.0, 0.9)

        topo = Topology()
        for name in "AB":
            topo.add_site(Site(name=name))
        topo.add_link(Link(a="A", b="B", capacity=10e6, rtt=0.01, load=Ramp()))
        path = topo.path("A", "B")
        instant = path.available(0.0)
        mean = path.mean_available(0.0, 100.0)
        assert mean < instant  # load rises over the window
        assert path.mean_available(0.0, 0.0) == instant
