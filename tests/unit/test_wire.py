"""The binary frame protocol: codecs, framing, and failure shapes."""

import io
import struct

import pytest

from repro import wire


def roundtrip_request(req):
    frame = wire.FrameWriter().encode_request(req)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    return op, wire.decode_request(op, payload)


def roundtrip_response(request_op, resp):
    frame = wire.FrameWriter().encode_response(request_op, resp)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    return op, wire.decode_response(op, payload)


# ----------------------------------------------------------------------
# request codecs
# ----------------------------------------------------------------------
def test_ping_and_status_requests_roundtrip():
    for name, code in (("ping", wire.OP_PING), ("status", wire.OP_STATUS)):
        op, req = roundtrip_request({"op": name})
        assert op == code
        assert req == {"op": name, "v": 1}


def test_predict_request_roundtrips_every_optional_field():
    base = {"op": "predict", "link": "LBL-ANL", "size": 600_000_000}
    for extra in ({}, {"spec": "C-AVG15"}, {"now": 5000.0},
                  {"spec": "SIZE", "now": 123.5}):
        _, req = roundtrip_request({**base, **extra})
        assert req == {**base, "v": 1, **extra}


def test_rank_request_roundtrips():
    _, req = roundtrip_request({
        "op": "rank", "candidates": ["LBL-ANL", "ISI-ANL"],
        "size": 10**9, "spec": "C-MED",
    })
    assert req == {
        "op": "rank", "v": 1, "size": 10**9, "spec": "C-MED",
        "candidates": ["LBL-ANL", "ISI-ANL"],
    }


def test_batch_request_roundtrips_per_item_overrides():
    _, req = roundtrip_request({
        "op": "predict_batch", "spec": "C-AVG15", "now": 99.0,
        "items": [
            {"link": "LBL-ANL", "size": 100},
            {"link": "ISI-ANL", "size": 200, "spec": "SIZE", "now": 7.0},
        ],
    })
    assert req == {
        "op": "predict_batch", "v": 1, "spec": "C-AVG15", "now": 99.0,
        "items": [
            {"link": "LBL-ANL", "size": 100},
            {"link": "ISI-ANL", "size": 200, "spec": "SIZE", "now": 7.0},
        ],
    }


def test_unlisted_op_rides_as_json_frame():
    op, req = roundtrip_request({"op": "metrics", "format": "text", "v": 1})
    assert op == wire.OP_JSON
    assert req == {"op": "metrics", "format": "text", "v": 1}


def test_unicode_link_names_survive():
    _, req = roundtrip_request(
        {"op": "predict", "link": "LBL-ANL-ü", "size": 1}
    )
    assert req["link"] == "LBL-ANL-ü"


# ----------------------------------------------------------------------
# response codecs
# ----------------------------------------------------------------------
PREDICTION = {
    "link": "LBL-ANL", "spec": "C-AVG15", "size": 600_000_000,
    "value": 4.25e6, "cached": True, "version": 30,
    "history_length": 30, "latency_seconds": 1.5e-5, "degraded": False,
}


def test_predict_response_roundtrips():
    _, resp = roundtrip_response(
        wire.OP_PREDICT, {"ok": True, "v": 1, **PREDICTION}
    )
    assert resp == {"ok": True, "v": 1, **PREDICTION}


def test_predict_response_none_value_and_flags():
    payload = {**PREDICTION, "value": None, "cached": False, "degraded": True}
    _, resp = roundtrip_response(wire.OP_PREDICT, {"ok": True, "v": 1, **payload})
    assert resp["value"] is None
    assert resp["cached"] is False and resp["degraded"] is True


def test_rank_response_roundtrips():
    ranking = [
        {"site": "LBL-ANL", "predicted_bandwidth": 4.5e6, "history_length": 30},
        {"site": "NOWHERE", "predicted_bandwidth": None, "history_length": 0},
    ]
    _, resp = roundtrip_response(
        wire.OP_RANK, {"ok": True, "v": 1, "ranking": ranking}
    )
    assert resp == {"ok": True, "v": 1, "ranking": ranking}


def test_batch_response_mixes_items_and_errors():
    results = [
        {"ok": True, **PREDICTION},
        {"ok": False, "error": {"code": "bad_request", "message": "item 1: no"}},
    ]
    _, resp = roundtrip_response(
        wire.OP_BATCH, {"ok": True, "v": 1, "count": 2, "results": results}
    )
    assert resp == {"ok": True, "v": 1, "count": 2, "results": results}


def test_error_response_roundtrips_both_shapes():
    _, resp = roundtrip_response(
        wire.OP_PREDICT, wire.error_response("unknown_op", "unknown op 'warp'")
    )
    assert resp == {
        "ok": False, "v": 1,
        "error": {"code": "unknown_op", "message": "unknown op 'warp'"},
    }
    # A legacy bare-string error survives the binary hop as one.
    _, legacy = roundtrip_response(
        wire.OP_PREDICT, {"ok": False, "v": 1, "error": "boom"}
    )
    assert legacy == {"ok": False, "v": 1, "error": "boom"}


def test_status_response_rides_as_json():
    status = {"ok": True, "v": 1, "links": {"LBL-ANL": {"records": 30}}}
    op, resp = roundtrip_response(wire.OP_STATUS, status)
    assert op == wire.OP_STATUS
    assert resp == status


# ----------------------------------------------------------------------
# framing failure shapes
# ----------------------------------------------------------------------
def test_read_frame_none_on_clean_eof():
    assert wire.read_frame(io.BytesIO(b"")) is None


def test_truncated_header_raises():
    with pytest.raises(wire.TruncatedFrame):
        wire.read_frame(io.BytesIO(wire.MAGIC + b"\x01"))


def test_truncated_payload_raises():
    frame = bytes(wire.FrameWriter().encode_request({"op": "ping"}))
    with pytest.raises(wire.TruncatedFrame):
        wire.read_frame(io.BytesIO(frame[:-1]))


def test_bad_magic_raises():
    frame = bytearray(wire.FrameWriter().encode_request({"op": "ping"}))
    frame[0] = 0x7B  # '{' — a JSON client on a binary read path
    with pytest.raises(wire.FrameError) as err:
        wire.read_frame(io.BytesIO(bytes(frame)))
    assert "magic" in str(err.value)


def test_unsupported_frame_version_raises():
    frame = bytearray(wire.FrameWriter().encode_request({"op": "ping"}))
    frame[2] = 99
    with pytest.raises(wire.FrameError) as err:
        wire.read_frame(io.BytesIO(bytes(frame)))
    assert "version" in str(err.value)


def test_oversized_declared_length_raises_without_reading_body():
    header = wire.HEADER.pack(wire.MAGIC, wire.FRAME_VERSION, wire.OP_PING,
                              wire.MAX_FRAME_BYTES + 1)
    stream = io.BytesIO(header + b"x" * 16)
    with pytest.raises(wire.OversizedFrame):
        wire.read_frame(stream)
    assert stream.tell() == wire.HEADER.size  # the body was left unread


def test_corrupt_payload_is_a_frame_error_not_a_crash():
    # A predict frame whose payload stops mid-string.
    good = bytes(wire.FrameWriter().encode_request(
        {"op": "predict", "link": "LBL-ANL", "size": 1}
    ))
    _, payload = wire.read_frame(io.BytesIO(good))
    with pytest.raises(wire.FrameError):
        wire.decode_request(wire.OP_PREDICT, payload[:-3])


def test_unknown_op_codes_raise_frame_errors():
    with pytest.raises(wire.FrameError):
        wire.decode_request(0x66, b"")
    with pytest.raises(wire.FrameError):
        wire.decode_response(0x66, b"")


def test_overlong_string_field_is_refused_at_encode_time():
    with pytest.raises(wire.FrameError):
        wire.FrameWriter().encode_request(
            {"op": "predict", "link": "x" * 70_000, "size": 1}
        )


def test_writer_buffer_is_reused_across_encodes():
    writer = wire.FrameWriter()
    first = writer.encode_request({"op": "ping"})
    first_bytes = bytes(first)
    second = writer.encode_request({"op": "status"})
    # Same underlying buffer, new contents — the memoryview lifecycle.
    assert bytes(second) != first_bytes
    op, payload = wire.read_frame(io.BytesIO(bytes(second)))
    assert wire.decode_request(op, payload) == {"op": "status", "v": 1}


def test_header_layout_is_the_documented_eight_bytes():
    frame = bytes(wire.FrameWriter().encode_request({"op": "ping"}))
    magic, version, op, length = struct.unpack("!2sBBI", frame[:8])
    assert magic == b"\xa5\x57"
    assert version == wire.FRAME_VERSION
    assert op == wire.OP_PING
    assert length == len(frame) - 8


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------
TRACE = {"trace_id": 0xDEADBEEF12345678, "span_id": 42}


def test_trace_context_roundtrips_on_every_hot_op():
    requests = [
        {"op": "predict", "link": "LBL-ANL", "size": 100, "trace": TRACE},
        {"op": "rank", "candidates": ["A", "B"], "size": 10, "trace": TRACE},
        {"op": "predict_batch", "items": [{"link": "A", "size": 1}],
         "trace": TRACE},
    ]
    for request in requests:
        op, req = roundtrip_request(request)
        assert op != wire.OP_JSON
        assert req == {**request, "v": 1}


def test_trace_context_composes_with_spec_and_now():
    _, req = roundtrip_request({
        "op": "predict", "link": "LBL-ANL", "size": 100,
        "spec": "C-MED", "now": 55.5, "trace": TRACE,
    })
    assert req["trace"] == TRACE
    assert req["spec"] == "C-MED" and req["now"] == 55.5


def test_untraced_requests_keep_the_historical_frame_bytes():
    with_none = {"op": "predict", "link": "L", "size": 9, "trace": None}
    without = {"op": "predict", "link": "L", "size": 9}
    assert bytes(wire.FrameWriter().encode_request(with_none)) == \
        bytes(wire.FrameWriter().encode_request(without))
    _, req = roundtrip_request(without)
    assert "trace" not in req


def test_traced_ping_and_status_fall_back_to_json_frames():
    for name in ("ping", "status"):
        frame = wire.FrameWriter().encode_request(
            {"op": name, "trace": TRACE})
        op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
        assert op == wire.OP_JSON
        assert wire.decode_request(op, payload)["trace"] == TRACE


def test_out_of_range_trace_ids_fall_back_to_json():
    request = {"op": "predict", "link": "L", "size": 9,
               "trace": {"trace_id": 2**64, "span_id": 1}}
    frame = wire.FrameWriter().encode_request(request)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    assert op == wire.OP_JSON
    assert wire.decode_request(op, payload) == request


def test_malformed_trace_dict_falls_back_to_json():
    request = {"op": "predict", "link": "L", "size": 9,
               "trace": {"span_id": 1}}  # trace_id missing
    frame = wire.FrameWriter().encode_request(request)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    assert op == wire.OP_JSON


# ----------------------------------------------------------------------
# observe codec (the fleet's remote-ingest op)
# ----------------------------------------------------------------------
FULL_OBSERVE = {
    "op": "observe", "v": 1, "link": "LBL-ANL", "size": 100_000_000,
    "start": 1000.0, "end": 1010.0, "bandwidth": 10_000_000.0,
    "operation": "write", "streams": 4, "tcp_buffer": 1 << 20,
}


def test_observe_request_roundtrips_the_struct_path():
    op, req = roundtrip_request(dict(FULL_OBSERVE))
    assert op == wire.OP_OBSERVE
    assert req == FULL_OBSERVE


def test_observe_request_optional_fields_roundtrip():
    full = dict(
        FULL_OBSERVE, offset=7,
        source_ip="10.0.0.1", file_name="/data/f", volume="/data",
        trace={"trace_id": 5, "span_id": 9},
    )
    op, req = roundtrip_request(dict(full))
    assert op == wire.OP_OBSERVE
    assert req == full


def test_partial_observe_rides_as_json():
    # The struct layout is fixed-width: a request leaning on server-side
    # defaults (no bandwidth, no operation...) rides OP_JSON instead.
    request = {"op": "observe", "link": "L", "size": 10,
               "start": 0.0, "end": 1.0}
    frame = wire.FrameWriter().encode_request(request)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    assert op == wire.OP_JSON
    assert wire.decode_request(op, payload) == request


def test_observe_meta_trio_is_all_or_none():
    request = dict(FULL_OBSERVE, source_ip="10.0.0.1")  # file/volume missing
    frame = wire.FrameWriter().encode_request(request)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    assert op == wire.OP_JSON
    assert wire.decode_request(op, payload) == request


def test_observe_response_roundtrips():
    op, resp = roundtrip_response(
        wire.OP_OBSERVE,
        {"ok": True, "v": 1, "link": "LBL-ANL", "version": 31},
    )
    assert op == wire.OP_OBSERVE
    assert resp == {"ok": True, "v": 1, "link": "LBL-ANL", "version": 31}


# ----------------------------------------------------------------------
# observe_batch codec (the batched write path)
# ----------------------------------------------------------------------
def _obs_item(**over):
    item = {"link": "LBL-ANL", "size": 100_000_000, "start": 1000.0,
            "end": 1010.0, "bandwidth": 10_000_000.0, "operation": "read",
            "streams": 1, "tcp_buffer": 65536}
    item.update(over)
    return item


def test_observe_batch_request_roundtrips_the_struct_path():
    request = {
        "op": "observe_batch", "v": 1,
        "items": [
            _obs_item(),
            _obs_item(link="ISI-ANL", operation="write", offset=42),
            _obs_item(source_ip="10.0.0.1", file_name="/f", volume="/"),
        ],
    }
    op, req = roundtrip_request(dict(request, items=[dict(i) for i in request["items"]]))
    assert op == wire.OP_OBSERVE_BATCH
    assert req == request


def test_observe_batch_preserves_item_order():
    items = [_obs_item(link=f"L{i}", size=i + 1, offset=i * 10 or None)
             for i in range(25)]
    for item in items:
        if item["offset"] is None:
            del item["offset"]
    _, req = roundtrip_request({"op": "observe_batch", "items": items})
    assert [i["link"] for i in req["items"]] == [f"L{i}" for i in range(25)]
    assert [i["size"] for i in req["items"]] == list(range(1, 26))


def test_observe_batch_trace_context_is_batch_level():
    request = {
        "op": "observe_batch", "v": 1,
        "trace": {"trace_id": 5, "span_id": 9},
        "items": [_obs_item()],
    }
    op, req = roundtrip_request(
        dict(request, items=[dict(request["items"][0])]))
    assert op == wire.OP_OBSERVE_BATCH
    assert req == request


def test_observe_batch_with_partial_item_rides_as_json():
    # One item leaning on server-side defaults sends the whole batch
    # down the JSON dialect — per-item struct rows are fixed-width.
    request = {"op": "observe_batch",
               "items": [_obs_item(), {"link": "L", "size": 10,
                                       "start": 0.0, "end": 1.0}]}
    frame = wire.FrameWriter().encode_request(request)
    op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
    assert op == wire.OP_JSON
    assert wire.decode_request(op, payload) == request


def test_observe_batch_response_roundtrips_acks_and_errors():
    resp = {
        "ok": True, "v": 1, "count": 3,
        "results": [
            {"ok": True, "link": "LBL-ANL", "version": 7},
            {"ok": False,
             "error": {"code": "bad_request", "message": "item 1: bad"}},
            {"ok": True, "link": "ISI-ANL", "version": 1},
        ],
    }
    op, decoded = roundtrip_response(wire.OP_OBSERVE_BATCH, resp)
    assert op == wire.OP_OBSERVE_BATCH
    assert decoded == resp


def test_shard_addressed_ping_and_status_fall_back_to_json():
    # The fleet front's single-shard escape hatch is a passenger field
    # the u8-only payloads cannot carry.
    for name in ("ping", "status"):
        frame = wire.FrameWriter().encode_request({"op": name, "shard": 2})
        op, payload = wire.read_frame(io.BytesIO(bytes(frame)))
        assert op == wire.OP_JSON
        assert wire.decode_request(op, payload)["shard"] == 2


def test_error_code_vocabulary_is_closed_and_complete():
    assert wire.ERROR_CODES == frozenset({
        "bad_request", "unknown_op", "deadline_exceeded",
        "unsupported_version", "oversized_request", "bad_frame",
        "internal", "overloaded", "unavailable",
    })
    # Every code the codec emits must encode/decode through OP_ERROR.
    for code in sorted(wire.ERROR_CODES):
        op, resp = roundtrip_response(
            wire.OP_PREDICT, wire.error_response(code, "detail"))
        assert op == wire.OP_ERROR
        assert resp["error"]["code"] == code
