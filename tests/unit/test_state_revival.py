"""LinkState revival and ColumnBuffer snapshot semantics across spill.

The evict/revive seam's contract, in unit form: a revived state defers
its history columns behind a loader, hydrates to exactly the row order
an always-resident buffer would hold, keeps snapshots taken before
hydration internally consistent forever, and survives the awkward
cases — out-of-order inserts on a revived link, appends before
hydration, version continuity across the whole cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingBank
from repro.core.classification import paper_classification
from repro.data.buffer import ColumnBuffer
from repro.service.state import LinkState, OP_READ
from tests.conftest import make_record

_DTYPES = (
    ("times", np.dtype(np.float64)),
    ("values", np.dtype(np.float64)),
    ("sizes", np.dtype(np.int64)),
    ("ops", np.dtype(np.int8)),
)


def _columns(times):
    times = np.asarray(times, dtype=np.float64)
    n = len(times)
    return (times, times * 10.0, np.arange(1, n + 1, dtype=np.int64),
            np.zeros(n, dtype=np.int8))


# ----------------------------------------------------------------------
# ColumnBuffer.from_columns (the spill/load seam)
# ----------------------------------------------------------------------
class TestFromColumns:
    def test_roundtrip_copies(self):
        source = _columns([1.0, 2.0, 3.0])
        buffer = ColumnBuffer.from_columns(_DTYPES, source)
        assert len(buffer) == 3
        views = buffer.views()
        np.testing.assert_array_equal(views[0], source[0])
        # Fresh backing arrays: mutating the source must not leak in.
        source[0][0] = 999.0
        assert buffer.views()[0][0] == 1.0

    def test_rejects_unsorted_key(self):
        with pytest.raises(ValueError):
            ColumnBuffer.from_columns(_DTYPES, _columns([3.0, 1.0, 2.0]))

    def test_rejects_ragged_columns(self):
        times, values, sizes, ops = _columns([1.0, 2.0])
        with pytest.raises(ValueError):
            ColumnBuffer.from_columns(_DTYPES, (times, values[:1], sizes, ops))

    def test_snapshot_survives_append_after_load(self):
        buffer = ColumnBuffer.from_columns(_DTYPES, _columns([1.0, 2.0]))
        snap = buffer.views()
        for i in range(200):  # force several growth reallocations
            buffer.append((3.0 + i, 1.0, 1, 0))
        np.testing.assert_array_equal(snap[0], [1.0, 2.0])
        assert len(buffer) == 202

    def test_snapshot_survives_out_of_order_insert_after_load(self):
        buffer = ColumnBuffer.from_columns(_DTYPES, _columns([1.0, 5.0]))
        snap = buffer.views()
        buffer.append((3.0, 30.0, 1, 0))  # lands between the rows
        np.testing.assert_array_equal(snap[0], [1.0, 5.0])
        np.testing.assert_array_equal(buffer.views()[0], [1.0, 3.0, 5.0])

    def test_nbytes_counts_backing_capacity(self):
        buffer = ColumnBuffer(_DTYPES, capacity=100)
        per_row = 8 + 8 + 8 + 1
        assert buffer.nbytes == 100 * per_row
        buffer.append((1.0, 1.0, 1, 0))
        assert buffer.nbytes == 100 * per_row  # capacity, not n


# ----------------------------------------------------------------------
# LinkState revival
# ----------------------------------------------------------------------
def _revived(times, version=None, loads=None, bank=None):
    """A revived LinkState over arrival-order ``times`` (+ a load counter)."""
    columns = _columns(times)
    version = len(times) if version is None else version

    def loader():
        if loads is not None:
            loads.append(1)
        return columns

    return LinkState.revive(
        "L", bank, version, len(times), float(np.max(times)), loader)


class TestRevive:
    def test_lazy_until_history(self):
        loads = []
        state = _revived([1.0, 2.0, 3.0], loads=loads)
        assert not state.hydrated
        assert len(state) == 3          # framing without hydration
        assert state.version == 3
        assert state.meta() == (3, 3)
        assert loads == []
        history = state.history()       # first real need -> one load
        assert loads == [1]
        np.testing.assert_array_equal(history.times, [1.0, 2.0, 3.0])
        state.history()
        assert loads == [1]             # hydration happens once

    def test_hydration_sorts_arrival_order_stably(self):
        # Arrival order != time order (an out-of-order append was
        # persisted as it arrived); hydration must produce exactly the
        # order the always-resident buffer held.
        arrival = [1.0, 5.0, 3.0, 5.0]
        state = _revived(arrival)
        resident = ColumnBuffer(_DTYPES, capacity=4)
        for t, v, s, o in zip(*_columns(arrival)):
            resident.append((t, v, s, o))
        np.testing.assert_array_equal(
            state.history().times, resident.views()[0])
        np.testing.assert_array_equal(
            state.history().values, resident.views()[1])

    def test_in_order_append_defers_hydration(self):
        loads = []
        state = _revived([1.0, 2.0], loads=loads)
        record = make_record(start=10.0, duration=1.0)
        state.append(record)
        assert loads == []              # in-order: no hydration needed
        assert len(state) == 3
        assert state.version == 3
        history = state.history()
        assert loads == [1]
        np.testing.assert_array_equal(history.times, [1.0, 2.0, 11.0])

    def test_out_of_order_append_hydrates_first(self):
        loads = []
        state = _revived([10.0, 20.0], loads=loads)
        record = make_record(start=14.0, duration=1.0)  # ends at 15.0
        state.append(record)
        assert loads == [1]             # position needs the real rows
        np.testing.assert_array_equal(
            state.history().times, [10.0, 15.0, 20.0])
        assert state.version == 3

    def test_version_continuity(self):
        state = _revived([1.0, 2.0], version=17)
        assert state.version == 17
        state.append(make_record(start=30.0, duration=1.0))
        assert state.version == 18

    def test_snapshot_taken_before_hydration_unaffected_by_later_growth(self):
        state = _revived([1.0, 2.0, 3.0])
        times, values, sizes, ops, version = state.snapshot()
        frozen = times.copy()
        for i in range(100):
            state.append(make_record(start=100.0 + i, duration=1.0))
        np.testing.assert_array_equal(times, frozen)

    def test_revived_bank_answers_without_hydration(self):
        cls = paper_classification()
        arrival = [float(i) for i in range(30)]
        columns = _columns(arrival)
        bank = StreamingBank(cls)
        bank.rebuild(*columns, reason="revive")
        loads = []

        def loader():
            loads.append(1)
            return columns

        state = LinkState.revive("L", bank, 30, 30, 29.0, loader)
        assert state.bank is bank
        assert not state.hydrated
        assert loads == []

    def test_persist_called_with_appended_rows(self):
        calls = []

        def persist(times, values, sizes, ops, offset):
            calls.append((tuple(times), offset))
            return True

        state = LinkState("L", persist=persist)
        state.append(make_record(start=10.0, duration=1.0), source_offset=55)
        assert calls == [((11.0,), 55)]

    def test_from_columns_fully_hydrated(self):
        columns = _columns([1.0, 2.0, 3.0])
        state = LinkState.from_columns("L", None, 3, columns)
        assert state.hydrated
        assert state.version == 3
        assert state.last_time == 3.0
        np.testing.assert_array_equal(state.history().times, [1.0, 2.0, 3.0])
