"""The resolve() spec-string API and its deprecated aliases."""

import pytest

from repro.core.classification import Classification
from repro.core.predictors import (
    ALL_PREDICTOR_NAMES,
    CLASSIFIED_PREDICTOR_NAMES,
    KERNEL_SPECS,
    PAPER_PREDICTOR_NAMES,
    ClassifiedPredictor,
    make_predictor,
    resolve,
    resolve_battery,
)
from repro.core.predictors.size_model import SizeScaledPredictor
from repro.units import MB


def test_resolve_every_battery_name():
    for name in ALL_PREDICTOR_NAMES:
        predictor = resolve(name)
        assert predictor.name == name


def test_resolve_classified_wraps_base():
    predictor = resolve("C-AVG15")
    assert isinstance(predictor, ClassifiedPredictor)
    assert predictor.base.name == "AVG15"


def test_resolve_size_extension():
    assert isinstance(resolve("SIZE"), SizeScaledPredictor)
    assert isinstance(resolve("C-SIZE"), ClassifiedPredictor)


def test_resolve_free_window_parameters():
    assert resolve("AVG7").name == "AVG7"
    assert resolve("MED9").name == "MED9"
    assert resolve("AVG3hr").name == "AVG3hr"
    assert resolve("AR2d").name == "AR2d"


def test_resolve_strips_whitespace():
    assert resolve("  AVG15 ").name == "AVG15"


@pytest.mark.parametrize("bad", ["NOPE", "C-NOPE", "", "  ", None, 42])
def test_resolve_rejects_unknown_specs(bad):
    with pytest.raises(KeyError):
        resolve(bad)


def test_resolve_returns_fresh_instances():
    assert resolve("AVG") is not resolve("AVG")


def test_resolve_honors_classification_and_fallback():
    cls = Classification(edges=(50 * MB,), labels=("small", "large"))
    predictor = resolve("C-LV", classification=cls, fallback=True)
    assert predictor.classification is cls
    assert predictor.fallback is True


def test_resolve_battery_preserves_order_and_names():
    battery = resolve_battery(["C-MED", "AVG5", "SIZE"])
    assert list(battery) == ["C-MED", "AVG5", "SIZE"]
    assert battery["C-MED"].name == "C-MED"


def test_kernel_specs_are_exactly_the_battery():
    assert KERNEL_SPECS == frozenset(PAPER_PREDICTOR_NAMES) | frozenset(
        CLASSIFIED_PREDICTOR_NAMES
    )
    assert "SIZE" not in KERNEL_SPECS


def test_make_predictor_is_a_deprecated_alias():
    with pytest.warns(DeprecationWarning, match="resolve"):
        predictor = make_predictor("AVG15")
    assert predictor.name == "AVG15"


def test_make_predictor_still_raises_on_unknown():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(KeyError):
            make_predictor("NOPE")
