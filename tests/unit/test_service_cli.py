"""The serve/query CLI pair, --json output, and exit-code conventions."""

import json

import pytest

from repro.cli import main
from repro.logs import TransferLog
from tests.conftest import make_record


@pytest.fixture
def log_path(tmp_path):
    log = TransferLog()
    for i in range(30):
        log.append(make_record(start=1000.0 + 200 * i, size=100_000_000))
    path = tmp_path / "LBL-ANL.ulm"
    log.save(path)
    return path


class TestServeOneshot:
    def test_prints_status_json(self, log_path, capsys):
        rc = main(["serve", str(log_path), "--oneshot"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["links"]["LBL-ANL"] == {"records": 30, "version": 30}
        assert status["default_spec"] == "C-AVG15"

    def test_link_override(self, log_path, capsys):
        rc = main(["serve", str(log_path), "--oneshot", "--link", "lbl"])
        assert rc == 0
        assert "lbl" in json.loads(capsys.readouterr().out)["links"]

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no such log file"):
            main(["serve", str(tmp_path / "nope.ulm"), "--oneshot"])

    def test_unknown_spec_rejected(self, log_path):
        with pytest.raises(SystemExit, match="unknown predictor"):
            main(["serve", str(log_path), "--oneshot", "--spec", "MAGIC"])

    def test_socketless_serve_rejected(self, log_path):
        with pytest.raises(SystemExit, match="--socket"):
            main(["serve", str(log_path)])


class TestQueryInProcess:
    def test_predict_human_and_json(self, log_path, capsys):
        rc = main(["query", "predict", "--logs", str(log_path),
                   "--link", "LBL-ANL", "--size", "100MB"])
        assert rc == 0
        assert "MB/s" in capsys.readouterr().out

        rc = main(["query", "predict", "--logs", str(log_path),
                   "--link", "LBL-ANL", "--size", "100MB", "--json"])
        assert rc == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True
        assert response["value"] > 0
        assert response["history_length"] == 30

    def test_rank_orders_candidates(self, log_path, capsys):
        rc = main(["query", "rank", "--logs", str(log_path),
                   "--size", "100MB",
                   "--candidates", "LBL-ANL,NOWHERE", "--json"])
        assert rc == 0
        ranking = json.loads(capsys.readouterr().out)["ranking"]
        assert [r["site"] for r in ranking] == ["LBL-ANL", "NOWHERE"]

    def test_status_and_metrics(self, log_path, capsys):
        assert main(["query", "status", "--logs", str(log_path), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["ingested"] == 30

        assert main(["query", "metrics", "--logs", str(log_path), "--json"]) == 0
        metrics = json.loads(capsys.readouterr().out)["metrics"]
        assert metrics["service_ingested_records"]["value"] == 30

    def test_size_suffixes(self, log_path, capsys):
        for size in ("100000000", "100MB", "0.1GB"):
            rc = main(["query", "predict", "--logs", str(log_path),
                       "--link", "LBL-ANL", "--size", size, "--json"])
            assert rc == 0
            assert json.loads(capsys.readouterr().out)["size"] == 100_000_000

    def test_query_spans_sees_the_ingest_span(self, log_path, capsys):
        rc = main(["query", "spans", "--logs", str(log_path), "--json"])
        assert rc == 0
        spans = json.loads(capsys.readouterr().out)["spans"]
        ingest = [s for s in spans if s["name"] == "ingest.load_ulm"]
        assert ingest, [s["name"] for s in spans]
        assert ingest[-1]["attributes"]["records"] == 30

    def test_query_events_filters_by_kind(self, log_path, capsys):
        rc = main(["query", "events", "--logs", str(log_path),
                   "--kind", "ingest_ulm", "--limit", "1", "--json"])
        assert rc == 0
        events = json.loads(capsys.readouterr().out)["events"]
        assert len(events) == 1
        assert events[0]["kind"] == "ingest_ulm"
        assert events[0]["records"] == 30

    def test_bad_size_rejected(self, log_path):
        with pytest.raises(SystemExit, match="bad size"):
            main(["query", "predict", "--logs", str(log_path),
                  "--link", "LBL-ANL", "--size", "ten"])

    def test_predict_requires_link_and_size(self, log_path):
        with pytest.raises(SystemExit, match="needs --link and --size"):
            main(["query", "predict", "--logs", str(log_path)])

    def test_query_requires_a_target(self):
        with pytest.raises(SystemExit, match="--socket .* or --logs"):
            main(["query", "status"])

    def test_unreachable_socket_is_operational_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach server"):
            main(["query", "ping", "--socket", str(tmp_path / "none.sock")])


class TestObservabilityFlags:
    def test_serve_oneshot_dumps_a_metrics_snapshot(self, log_path, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.jsonl"
        rc = main(["serve", str(log_path), "--oneshot",
                   "--metrics-file", str(metrics_file)])
        assert rc == 0
        (line,) = metrics_file.read_text().splitlines()
        snapshot = json.loads(line)
        assert snapshot["time"] > 0
        assert snapshot["metrics"]["service_ingested_records"]["value"] == 30
        # The merged view carries the process-wide ingest instruments too.
        assert "ingest_records_parsed" in snapshot["metrics"]

    def test_profile_wraps_a_subcommand(self, log_path, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["--profile", "--profile-out", "query.pstats",
                   "query", "status", "--logs", str(log_path), "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["ingested"] == 30  # result unchanged
        assert "profile written to query.pstats" in captured.err
        assert "wall " in captured.err
        import pstats

        assert pstats.Stats(str(tmp_path / "query.pstats")).total_calls > 0


class TestEvaluateJson:
    def test_json_output_and_engine_flag(self, log_path, capsys):
        rc = main(["evaluate", str(log_path), "--predictors", "AVG,C-AVG15",
                   "--engine", "fast", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 30
        names = [p["name"] for p in payload["predictors"]]
        assert names == ["AVG", "C-AVG15"]
        for p in payload["predictors"]:
            assert "overall_mape" in p and "per_class_mape" in p

    def test_class_restricts_columns(self, log_path, capsys):
        rc = main(["evaluate", str(log_path), "--predictors", "AVG",
                   "--class", "100MB", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload["predictors"][0]["per_class_mape"]) == ["100MB"]


class TestStatusCommand:
    def test_scoreboard_from_logs(self, log_path, capsys):
        rc = main(["status", "--logs", str(log_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro service" in out
        assert "accuracy" in out
        assert "cache" in out

    def test_json_mode_carries_status_and_merged_metrics(self, log_path,
                                                         capsys):
        rc = main(["status", "--logs", str(log_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"]["links"]["LBL-ANL"]["records"] == 30
        assert payload["status"]["accuracy"]["enabled"] is True
        # The metrics side is the *merged* snapshot: process-wide series
        # (ingest, server counters) next to the service's own.
        assert payload["metrics"]["service_ingested_records"]["value"] == 30
        assert "ingest_records_parsed" in payload["metrics"]
        assert "accuracy_pairs_scored" in payload["metrics"]

    def test_against_live_server(self, log_path, tmp_path, capsys):
        from repro.service import PredictionService, ServiceServer

        service = PredictionService()
        service.ingest_ulm(log_path)
        with ServiceServer(service, tmp_path / "repro.sock") as server:
            rc = main(["status", "--socket", str(server.socket_path)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "repro service" in out
            assert "links=1" in out

    def test_needs_a_target(self):
        with pytest.raises(SystemExit, match="--socket .*--logs|--logs"):
            main(["status"])

    def test_rejects_nonpositive_watch(self, log_path):
        with pytest.raises(SystemExit, match="positive"):
            main(["status", "--logs", str(log_path), "--watch", "0"])

    def test_unreachable_socket_is_operational_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach server"):
            main(["status", "--socket", str(tmp_path / "nope.sock")])


class TestQualityServeFlags:
    def test_no_quality_disables_the_tracker(self, log_path, capsys):
        rc = main(["serve", str(log_path), "--oneshot", "--no-quality"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["accuracy"] == {"enabled": False}

    def test_oneshot_status_reports_accuracy_by_default(self, log_path,
                                                        capsys):
        rc = main(["serve", str(log_path), "--oneshot"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["accuracy"]["enabled"] is True
        assert status["accuracy"]["recorded"] == 0

    def test_metrics_file_snapshot_includes_quality_gauges(self, log_path,
                                                           tmp_path, capsys):
        metrics_file = tmp_path / "metrics.jsonl"
        rc = main(["serve", str(log_path), "--oneshot",
                   "--metrics-file", str(metrics_file)])
        assert rc == 0
        (line,) = metrics_file.read_text().splitlines()
        merged = json.loads(line)["metrics"]
        # One object per interval holding the quality gauges *and* the
        # per-protocol server counters (process-wide) side by side.
        assert "accuracy_pairs_scored" in merged
        assert "accuracy_pending_predictions" in merged
        assert "server_requests" in merged
