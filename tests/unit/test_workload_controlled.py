"""Controlled campaign: schedule windows, draws, transfer accounting."""

import pytest

from repro.units import DAY, HOUR, MB, MINUTE
from repro.workload import AUG_2001, CampaignConfig, ControlledCampaign, build_testbed


class TestConfig:
    def test_defaults_match_section_6_1(self):
        cfg = CampaignConfig(start_epoch=AUG_2001)
        assert cfg.days == 14
        assert cfg.window_start_hour == 18.0
        assert cfg.window_end_hour == 8.0
        assert cfg.streams == 8
        assert cfg.buffer == 1 * MB
        assert len(cfg.sizes) == 13

    def test_window_spans_midnight(self):
        cfg = CampaignConfig(start_epoch=0.0)
        assert cfg.in_window(19 * HOUR)       # 7 pm
        assert cfg.in_window(2 * HOUR)        # 2 am
        assert not cfg.in_window(12 * HOUR)   # noon
        assert not cfg.in_window(8 * HOUR)    # exactly 8 am -> closed

    def test_non_midnight_window(self):
        cfg = CampaignConfig(start_epoch=0.0, window_start_hour=9,
                             window_end_hour=17)
        assert cfg.in_window(10 * HOUR)
        assert not cfg.in_window(18 * HOUR)

    def test_seconds_until_window(self):
        cfg = CampaignConfig(start_epoch=0.0)
        assert cfg.seconds_until_window(19 * HOUR) == 0.0
        assert cfg.seconds_until_window(12 * HOUR) == pytest.approx(6 * HOUR)

    @pytest.mark.parametrize("kw", [
        dict(days=0), dict(sizes=()), dict(sleep_min=0),
        dict(sleep_min=100, sleep_max=100), dict(window_start_hour=24),
        dict(window_start_hour=8, window_end_hour=8), dict(streams=0),
        dict(buffer=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            CampaignConfig(start_epoch=0.0, **kw)

    def test_end_epoch(self):
        cfg = CampaignConfig(start_epoch=100.0, days=2)
        assert cfg.end_epoch == 100.0 + 2 * DAY


class TestCampaign:
    def run_one(self, days=2, seed=5, **cfg_kw):
        bed = build_testbed(seed=seed, start_time=AUG_2001)
        cfg = CampaignConfig(start_epoch=AUG_2001, days=days, **cfg_kw)
        campaign = ControlledCampaign(bed, "LBL", "ANL", cfg)
        campaign.start()
        bed.engine.run(until=cfg.end_epoch)
        campaign.stop()
        return campaign, bed

    def test_transfers_only_in_window(self):
        campaign, _ = self.run_one()
        cfg = campaign.config
        for outcome in campaign.outcomes:
            assert cfg.in_window(outcome.start_time), outcome.start_time

    def test_transfers_within_campaign_period(self):
        campaign, _ = self.run_one()
        cfg = campaign.config
        for outcome in campaign.outcomes:
            assert cfg.start_epoch <= outcome.start_time < cfg.end_epoch

    def test_sizes_drawn_from_configured_set(self):
        campaign, _ = self.run_one()
        sizes = {o.request.size for o in campaign.outcomes}
        assert sizes <= set(campaign.config.sizes)

    def test_streams_and_buffer_applied(self):
        campaign, _ = self.run_one()
        for outcome in campaign.outcomes:
            assert outcome.request.streams == 8
            assert outcome.request.buffer == 1 * MB

    def test_server_log_matches_outcomes(self):
        campaign, bed = self.run_one()
        records = bed.servers["LBL"].monitor.log.records()
        assert len(records) == len(campaign.outcomes)
        assert all(r.source_ip == bed.sites["ANL"].address for r in records)

    def test_sleeps_respected(self):
        """Gap between consecutive transfers >= sleep_min (same night)."""
        campaign, _ = self.run_one(sleep_min=5 * MINUTE)
        outs = campaign.outcomes
        for prev, cur in zip(outs, outs[1:]):
            gap = cur.start_time - prev.end_time
            if gap < 6 * HOUR:  # same-night pair, not a window skip
                assert gap >= 5 * MINUTE - 1e-6

    def test_same_sites_rejected(self):
        bed = build_testbed(seed=0, start_time=AUG_2001)
        cfg = CampaignConfig(start_epoch=AUG_2001)
        with pytest.raises(ValueError):
            ControlledCampaign(bed, "ANL", "ANL", cfg)

    def test_double_start_rejected(self):
        bed = build_testbed(seed=0, start_time=AUG_2001)
        cfg = CampaignConfig(start_epoch=AUG_2001, days=1)
        campaign = ControlledCampaign(bed, "LBL", "ANL", cfg)
        campaign.start()
        with pytest.raises(RuntimeError):
            campaign.start()

    def test_deterministic_given_seed(self):
        a, _ = self.run_one(seed=11)
        b, _ = self.run_one(seed=11)
        assert [o.end_time for o in a.outcomes] == [o.end_time for o in b.outcomes]
        assert [o.request.size for o in a.outcomes] == [
            o.request.size for o in b.outcomes
        ]
