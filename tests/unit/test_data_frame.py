"""TransferFrame: construction, views, sorting, record round-trips."""

import numpy as np
import pytest

from repro.data import OP_READ, OP_WRITE, TransferFrame
from repro.data.buffer import ColumnBuffer
from repro.logs.record import Operation
from repro.units import MB

from tests.conftest import make_record


@pytest.fixture
def frame(sample_records):
    return TransferFrame.from_records(sample_records)


class TestConstruction:
    def test_empty(self):
        frame = TransferFrame.empty()
        assert len(frame) == 0
        assert frame.to_records() == []
        assert frame.is_sorted

    def test_from_records_round_trips(self, sample_records, frame):
        assert len(frame) == len(sample_records)
        assert frame.to_records() == sample_records

    def test_single_record_round_trip(self):
        record = make_record(operation=Operation.WRITE)
        frame = TransferFrame.from_records([record])
        assert frame[0] == record
        assert frame.ops[0] == OP_WRITE

    def test_mismatched_column_lengths_rejected(self, frame):
        arrays = frame.to_arrays()
        arrays["sizes"] = arrays["sizes"][:-1]
        with pytest.raises(ValueError, match="length"):
            TransferFrame(**arrays)

    def test_from_arrays_missing_column_rejected(self, frame):
        arrays = frame.to_arrays()
        del arrays["volumes"]
        with pytest.raises(ValueError, match="missing columns"):
            TransferFrame.from_arrays(arrays)

    def test_equals(self, sample_records, frame):
        assert frame.equals(TransferFrame.from_records(sample_records))
        assert not frame.equals(frame.prefix(3))


class TestViews:
    def test_prefix(self, frame, sample_records):
        assert frame.prefix(0).to_records() == []
        assert frame.prefix(3).to_records() == sample_records[:3]
        with pytest.raises(ValueError):
            frame.prefix(-1)

    def test_prefix_is_zero_copy(self, frame):
        view = frame.prefix(5)
        assert view.end_times.base is not None

    def test_reads_writes_partition(self):
        records = [
            make_record(start=1000.0 * (i + 1),
                        operation=Operation.READ if i % 2 else Operation.WRITE)
            for i in range(6)
        ]
        frame = TransferFrame.from_records(records)
        assert len(frame.reads()) == 3
        assert len(frame.writes()) == 3
        assert set(frame.reads().ops.tolist()) == {OP_READ}
        assert frame.reads().to_records() + frame.writes().to_records() == \
            [r for r in records if r.operation is Operation.READ] + \
            [r for r in records if r.operation is Operation.WRITE]

    def test_boolean_mask_view(self, frame):
        big = frame.view(frame.sizes >= 500 * MB)
        assert (big.sizes >= 500 * MB).all()


class TestSorting:
    def test_sort_by_end_time_is_stable(self):
        # Two records with equal end times keep their original order.
        a = make_record(start=1000.0, duration=10.0, size=10 * MB)
        b = make_record(start=1005.0, duration=5.0, size=100 * MB)
        late = make_record(start=900.0, duration=200.0)
        frame = TransferFrame.from_records([late, a, b])
        ordered = frame.sort_by_end_time()
        assert ordered.is_sorted
        assert ordered.to_records() == [a, b, late]

    def test_sorted_frame_returned_as_is(self, frame):
        assert frame.sort_by_end_time() is frame

    def test_merge(self, sample_records):
        left = TransferFrame.from_records(sample_records[::2])
        right = TransferFrame.from_records(sample_records[1::2])
        merged = left.merge(right)
        assert merged.to_records() == sample_records


class TestPredictorBridge:
    def test_history_is_zero_copy(self, frame):
        history = frame.history()
        assert len(history) == len(frame)
        assert np.shares_memory(history.times, frame.end_times)
        assert np.shares_memory(history.values, frame.bandwidths)

    def test_anchors_are_start_times(self, frame):
        assert np.array_equal(frame.anchors, frame.start_times)


class TestColumnBuffer:
    DTYPES = (("key", np.dtype(np.float64)), ("val", np.dtype(np.int64)))

    def test_append_and_views(self):
        buf = ColumnBuffer(self.DTYPES, capacity=2)
        buf.append((1.0, 10))
        buf.append((2.0, 20))
        buf.append((3.0, 30))  # forces growth
        keys, vals = buf.views()
        assert keys.tolist() == [1.0, 2.0, 3.0]
        assert vals.tolist() == [10, 20, 30]

    def test_snapshot_survives_growth_and_insert(self):
        buf = ColumnBuffer(self.DTYPES, capacity=2)
        buf.append((1.0, 10))
        buf.append((3.0, 30))
        keys, vals = buf.views()
        buf.append((2.0, 20))   # out-of-order: fresh arrays
        buf.append((4.0, 40))
        assert keys.tolist() == [1.0, 3.0]
        assert vals.tolist() == [10, 30]
        assert buf.column("key").tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_extend_sorted_matches_appends(self):
        sequential = ColumnBuffer(self.DTYPES, capacity=4)
        bulk = ColumnBuffer(self.DTYPES, capacity=4)
        for key, val in [(1.0, 1), (5.0, 5)]:
            sequential.append((key, val))
            bulk.append((key, val))
        batch_rows = [(2.0, 2), (5.0, 50), (7.0, 7)]
        for row in batch_rows:
            sequential.append(row)
        bulk.extend_sorted((
            np.array([r[0] for r in batch_rows]),
            np.array([r[1] for r in batch_rows]),
        ))
        assert bulk.column("key").tolist() == sequential.column("key").tolist()
        assert bulk.column("val").tolist() == sequential.column("val").tolist()

    def test_extend_sorted_rejects_unsorted_batch(self):
        buf = ColumnBuffer(self.DTYPES)
        with pytest.raises(ValueError, match="non-decreasing"):
            buf.extend_sorted((np.array([2.0, 1.0]), np.array([1, 2])))
