"""Hybrid GridFTP + NWS predictor."""

import numpy as np
import pytest

from repro.core import History
from repro.core.predictors import HybridPredictor
from repro.core.predictors.base import PredictorError
from repro.nws import TimeSeries
from repro.units import HOUR


def make_probes(values, spacing=300.0):
    s = TimeSeries()
    for i, v in enumerate(values):
        s.append(i * spacing, v)
    return s


def make_history(times, bandwidths):
    return History(
        times=np.asarray(times, dtype=float),
        values=np.asarray(bandwidths, dtype=float),
        sizes=np.asarray([100] * len(times)),
    )


def test_scales_probe_by_learned_ratio():
    # Probes at a steady 0.2; GridFTP consistently 10x the probe.
    probes = make_probes([0.2] * 20)
    history = make_history([600.0, 1200.0, 1800.0], [2.0, 2.0, 2.0])
    p = HybridPredictor(probes)
    assert p.predict(history, now=2000.0) == pytest.approx(2.0)


def test_tracks_probe_movement():
    # Ratio learned at 10x; the latest probe halves -> prediction halves.
    probe_values = [0.2] * 10 + [0.1] * 2
    probes = make_probes(probe_values)
    history = make_history([600.0, 1200.0, 1800.0], [2.0, 2.0, 2.0])
    p = HybridPredictor(probes)
    predicted = p.predict(history, now=probes.times[-1] + 1.0)
    assert predicted == pytest.approx(1.0)


def test_median_ratio_resists_probe_outlier():
    probes = make_probes([0.2, 0.2, 0.001, 0.2, 0.2, 0.2])
    # One observation landed right after the bogus probe.
    history = make_history([650.0, 950.0, 1250.0, 1550.0], [2.0, 2.0, 2.0, 2.0])
    p = HybridPredictor(probes, min_pairs=3)
    predicted = p.predict(history, now=1600.0)
    assert predicted == pytest.approx(2.0, rel=0.01)


def test_abstains_without_probes():
    p = HybridPredictor(TimeSeries())
    assert p.predict(make_history([1.0], [2.0]), now=5.0) is None


def test_abstains_without_enough_pairs():
    probes = make_probes([0.2] * 5)
    history = make_history([600.0], [2.0])
    assert HybridPredictor(probes, min_pairs=3).predict(history, now=700.0) is None


def test_abstains_on_stale_probe():
    probes = make_probes([0.2] * 5)  # last probe at t=1200
    history = make_history([600.0, 700.0, 800.0], [2.0, 2.0, 2.0])
    p = HybridPredictor(probes, max_probe_age=1 * HOUR)
    assert p.predict(history, now=1200.0 + 2 * HOUR) is None


def test_abstains_on_empty_history():
    p = HybridPredictor(make_probes([0.2] * 3))
    assert p.predict(History.empty(), now=100.0) is None


@pytest.mark.parametrize("kw", [
    dict(window=0), dict(min_pairs=0), dict(window=2, min_pairs=5),
    dict(max_probe_age=0),
])
def test_validation(kw):
    with pytest.raises(PredictorError):
        HybridPredictor(TimeSeries(), **kw)
