"""Observation history views."""

import numpy as np
import pytest

from repro.core import History, Observation
from repro.units import HOUR, MB


@pytest.fixture
def history():
    return History(
        times=np.array([0.0, 1 * HOUR, 2 * HOUR, 3 * HOUR]),
        values=np.array([1e6, 2e6, 3e6, 4e6]),
        sizes=np.array([10 * MB, 100 * MB, 600 * MB, 900 * MB]),
    )


class TestConstruction:
    def test_from_records(self, sample_records):
        h = History.from_records(sample_records)
        assert len(h) == len(sample_records)
        assert h.values[0] == pytest.approx(sample_records[0].bandwidth)
        assert h.sizes[3] == sample_records[3].file_size

    def test_from_observations(self):
        h = History.from_observations(
            [Observation(time=1.0, bandwidth=5.0, size=100)]
        )
        assert len(h) == 1 and h[0].bandwidth == 5.0

    def test_empty(self):
        assert len(History.empty()) == 0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            History(np.array([1.0]), np.array([1.0, 2.0]), np.array([1]))

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            History(np.array([2.0, 1.0]), np.array([1.0, 1.0]), np.array([1, 1]))


class TestAccess:
    def test_getitem(self, history):
        obs = history[1]
        assert obs == Observation(time=1 * HOUR, bandwidth=2e6, size=100 * MB)

    def test_iteration(self, history):
        assert [o.bandwidth for o in history] == [1e6, 2e6, 3e6, 4e6]


class TestViews:
    def test_prefix(self, history):
        p = history.prefix(2)
        assert len(p) == 2
        assert list(p.values) == [1e6, 2e6]
        with pytest.raises(ValueError):
            history.prefix(-1)

    def test_prefix_shares_memory(self, history):
        p = history.prefix(3)
        assert np.shares_memory(p.values, history.values)

    def test_last(self, history):
        assert list(history.last(2).values) == [3e6, 4e6]
        assert len(history.last(100)) == 4

    def test_last_zero_is_empty_view(self, history):
        # Degenerate window, same semantics as prefix(0).
        assert len(history.last(0)) == 0
        assert len(history.prefix(0)) == 0

    def test_last_negative_rejected(self, history):
        with pytest.raises(ValueError):
            history.last(-1)

    def test_since(self, history):
        w = history.since(1.5 * HOUR)
        assert list(w.values) == [3e6, 4e6]

    def test_of_class(self, history, classification):
        small = history.of_class(classification, "10MB")
        assert list(small.sizes) == [10 * MB]
        big = history.of_class(classification, "1GB")
        assert list(big.values) == [4e6]
        empty = history.of_class(classification, "100MB")
        assert len(empty) == 1  # the 100 MB observation

    def test_filter_sizes(self, history):
        big = history.filter_sizes(lambda s: s > 500 * MB)
        assert len(big) == 2
