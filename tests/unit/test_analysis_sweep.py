"""Seed-sweep aggregation (fast 3-day campaigns keep this quick)."""

import pytest

from repro.analysis.sweep import render_sweep, sweep_claims


@pytest.fixture(scope="module")
def sweep():
    # Short campaigns: enough records for the 15-value training prefix
    # and a meaningful walk, cheap enough for unit testing.
    return sweep_claims(seeds=(0, 1), days=7)


def test_one_claims_entry_per_seed_link(sweep):
    assert set(sweep.claims) == {
        (seed, link) for seed in (0, 1) for link in ("LBL-ANL", "ISI-ANL")
    }


def test_aggregate_has_all_metrics(sweep):
    aggregate = sweep.aggregate()
    assert "worst MAPE, >=100MB classes (%)" in aggregate
    assert "classification gain, large (pp)" in aggregate
    for mean, std in aggregate.values():
        assert mean == mean  # not NaN
        assert std >= 0


def test_holding_fraction_bounds(sweep):
    assert 0.0 <= sweep.holding_fraction() <= 1.0
    assert sweep.all_hold() == (sweep.holding_fraction() == 1.0)


def test_render(sweep):
    text = render_sweep(sweep)
    assert "Seed sweep over 4" in text
    assert "claims hold in" in text


def test_metric_extraction(sweep):
    values = sweep.metric(lambda c: c.best_large_class_error)
    assert len(values) == 4
    assert (values > 0).all()


def test_empty_seeds_rejected():
    with pytest.raises(ValueError):
        sweep_claims(seeds=())
