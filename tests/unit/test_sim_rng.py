"""Named RNG streams: reproducibility and isolation."""

from repro.sim import RngStreams


def test_same_name_same_generator_object():
    streams = RngStreams(seed=1)
    assert streams.get("x") is streams.get("x")


def test_same_seed_same_draws():
    a = RngStreams(seed=42).get("load:link").random(5)
    b = RngStreams(seed=42).get("load:link").random(5)
    assert (a == b).all()


def test_different_names_different_draws():
    streams = RngStreams(seed=42)
    a = streams.get("alpha").random(5)
    b = streams.get("beta").random(5)
    assert not (a == b).all()


def test_different_seeds_different_draws():
    a = RngStreams(seed=1).get("x").random(5)
    b = RngStreams(seed=2).get("x").random(5)
    assert not (a == b).all()


def test_isolation_adding_consumer_does_not_shift_existing():
    """The key property: a new stream never perturbs existing streams."""
    solo = RngStreams(seed=9)
    solo_draws = solo.get("existing").random(5)

    mixed = RngStreams(seed=9)
    mixed.get("newcomer").random(100)  # interleaved consumption
    mixed_draws = mixed.get("existing").random(5)
    assert (solo_draws == mixed_draws).all()


def test_fork_is_disjoint_and_deterministic():
    base = RngStreams(seed=3)
    f1 = base.fork("sweep:1")
    f2 = base.fork("sweep:1")
    assert f1.seed == f2.seed
    assert (f1.get("x").random(5) == f2.get("x").random(5)).all()
    assert not (base.get("x").random(5) == RngStreams(seed=3).fork("sweep:1").get("x").random(5)).all()


def test_fork_different_suffixes_differ():
    base = RngStreams(seed=3)
    assert base.fork("a").seed != base.fork("b").seed
