"""GridFTP server: sessions, auth, volumes, transfer accounting."""

import pytest

from repro.gridftp import (
    AuthenticationError,
    Credential,
    FileNotFoundOnServer,
    GridFTPServer,
    TransferError,
    TransferEngine,
)
from repro.gridftp.instrumentation import Monitor
from repro.logs import Operation
from repro.net import ConstantLoad, Link, Site, Topology
from repro.sim import Engine
from repro.storage import Disk, LogicalVolume
from repro.units import MB


def make_server(grid_map=None):
    engine = Engine(start_time=0.0)
    topo = Topology()
    a = Site(name="A", address="10.0.0.1")
    b = Site(name="B", address="10.0.0.2")
    topo.add_site(a)
    topo.add_site(b)
    topo.add_link(Link(a="A", b="B", capacity=20e6, rtt=0.05,
                       load=ConstantLoad(0.3)))
    disk = Disk("server-disk")
    volume = LogicalVolume(root="/home/ftp", disk=disk)
    volume.add_file("data/100M", 100 * MB)
    server = GridFTPServer(
        site=a, engine=engine, topology=topo, volumes=[volume],
        transfer_engine=TransferEngine(rng=None), monitor=Monitor(host="a"),
        grid_map=grid_map,
    )
    return server, b, Disk("client-disk"), engine


class TestAuth:
    def test_valid_credential_accepted(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        assert not session.closed

    def test_invalid_credential_rejected(self):
        server, remote, disk, _ = make_server()
        with pytest.raises(AuthenticationError):
            server.open_session(Credential("/CN=u", valid=False), remote, disk)

    def test_grid_map_enforced(self):
        server, remote, disk, _ = make_server(grid_map={"/CN=alice"})
        server.open_session(Credential("/CN=alice"), remote, disk)
        with pytest.raises(AuthenticationError):
            server.open_session(Credential("/CN=mallory"), remote, disk)


class TestRetrieve:
    def test_retrieve_logs_a_read(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        outcome = session.retrieve("data/100M", streams=8, buffer=1 * MB)
        assert outcome.request.size == 100 * MB
        records = server.monitor.log.records()
        assert len(records) == 1
        assert records[0].operation is Operation.READ
        assert records[0].source_ip == "10.0.0.2"
        assert records[0].file_name == "/home/ftp/data/100M"
        assert records[0].volume == "/home/ftp"
        assert server.transfers_served == 1

    def test_missing_file(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        with pytest.raises(FileNotFoundOnServer):
            session.retrieve("data/nope")

    def test_closed_session_rejected(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        session.close()
        with pytest.raises(TransferError):
            session.retrieve("data/100M")

    def test_disks_held_for_transfer_duration(self):
        server, remote, disk, engine = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        outcome = session.retrieve("data/100M")
        server_disk = server.volumes[0].disk
        assert server_disk.active == 1 and disk.active == 1
        engine.run(until=outcome.end_time + 1.0)
        assert server_disk.active == 0 and disk.active == 0


class TestPartialRetrieve:
    def test_partial_transfers_only_requested_bytes(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        outcome = session.partial_retrieve("data/100M", offset=0, length=10 * MB)
        assert outcome.request.size == 10 * MB
        assert server.monitor.log.records()[0].file_size == 10 * MB

    @pytest.mark.parametrize("offset,length", [(-1, 10), (0, 0), (95 * MB, 10 * MB)])
    def test_bad_ranges(self, offset, length):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        with pytest.raises(TransferError):
            session.partial_retrieve("data/100M", offset=offset, length=length)


class TestStore:
    def test_store_logs_a_write_and_creates_file(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        session.store("/home/ftp/incoming/new", 50 * MB)
        record = server.monitor.log.records()[0]
        assert record.operation is Operation.WRITE
        assert record.file_size == 50 * MB
        assert server.volumes[0].has("/home/ftp/incoming/new")

    def test_store_outside_volumes_rejected(self):
        server, remote, disk, _ = make_server()
        session = server.open_session(Credential("/CN=u"), remote, disk)
        with pytest.raises(TransferError):
            session.store("/etc/evil", 10)


class TestServerMisc:
    def test_url_format(self):
        server, *_ = make_server()
        assert server.url == f"gsiftp://{server.site.hostname}:2811"

    def test_needs_volumes(self):
        server, remote, disk, engine = make_server()
        with pytest.raises(ValueError):
            GridFTPServer(
                site=server.site, engine=engine, topology=server.topology,
                volumes=[], transfer_engine=server.transfer_engine,
            )
