"""The opt-in profiler: timers, hotspot tables, pstats dumps."""

import pstats

import pytest

from repro.obs.profile import ProfileReport, profiled, run_profiled


def _busy(n=20_000):
    return sum(i * i for i in range(n))


def test_profiled_block_fills_the_report():
    with profiled() as report:
        _busy()
    assert report.wall_seconds > 0
    assert report.cpu_seconds >= 0
    assert report.stats is not None
    table = report.top(5)
    assert "_busy" in table or "genexpr" in table


def test_run_profiled_returns_result_and_report():
    result, report = run_profiled(_busy, 10_000)
    assert result == sum(i * i for i in range(10_000))
    assert isinstance(report, ProfileReport)
    summary = report.summary(3)
    assert summary.startswith("wall ")
    assert "cpu" in summary


def test_dump_writes_a_loadable_pstats_file(tmp_path):
    _, report = run_profiled(_busy)
    out = report.dump(tmp_path / "run.pstats")
    assert out.exists()
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0


def test_empty_report_degrades_gracefully():
    report = ProfileReport()
    assert report.top() == "(no profile data)"
    with pytest.raises(ValueError):
        report.dump("nowhere.pstats")
