"""The evaluate() facade: engine selection and cross-engine agreement."""

import numpy as np
import pytest

from repro.core import evaluate
from repro.core.engine import ENGINES, select_engine
from repro.core.predictors import ALL_PREDICTOR_NAMES, resolve_battery


# ----------------------------------------------------------------------
# select_engine
# ----------------------------------------------------------------------
def test_default_battery_is_vectorized():
    assert select_engine() == "fast"
    assert select_engine(None, engine="auto") == "fast"


def test_kernel_specs_go_fast_others_generic():
    assert select_engine(["C-AVG15", "AVG", "AR5d"]) == "fast"
    assert select_engine(["C-AVG15", "SIZE"]) == "generic"
    assert select_engine(["AVG7"]) == "generic"  # non-battery window


def test_comma_string_request():
    assert select_engine("C-AVG15, C-MED") == "fast"
    assert select_engine("C-AVG15, SIZE") == "generic"


def test_mapping_always_generic():
    assert select_engine(resolve_battery(["AVG"])) == "generic"


def test_fallback_forces_generic():
    assert select_engine(["C-AVG15"], fallback=True) == "generic"


def test_forced_engines():
    assert select_engine(["SIZE"], engine="generic") == "generic"
    assert select_engine(["C-AVG15"], engine="fast") == "fast"


def test_forced_fast_without_kernel_raises():
    with pytest.raises(ValueError, match="no kernel"):
        select_engine(["SIZE"], engine="fast")
    with pytest.raises(ValueError, match="mapping"):
        select_engine(resolve_battery(["AVG"]), engine="fast")
    with pytest.raises(ValueError, match="no kernel"):
        select_engine([], engine="fast")


def test_unknown_engine_raises():
    with pytest.raises(ValueError, match="unknown engine"):
        select_engine(["AVG"], engine="turbo")
    assert ENGINES == ("auto", "generic", "fast")


# ----------------------------------------------------------------------
# evaluate
# ----------------------------------------------------------------------
def test_facade_engines_agree(sample_records):
    specs = ["AVG", "C-AVG15", "LV", "C-MED5"]
    fast = evaluate(sample_records, specs, training=5, engine="fast")
    generic = evaluate(sample_records, specs, training=5, engine="generic")
    assert set(fast.traces) == set(generic.traces) == set(specs)
    for name in specs:
        np.testing.assert_allclose(
            fast[name].predicted, generic[name].predicted, rtol=1e-7
        )
        assert fast[name].abstentions == generic[name].abstentions


def test_facade_subsets_the_fast_battery(sample_records):
    result = evaluate(sample_records, ["C-AVG15"], training=5)
    assert list(result.traces) == ["C-AVG15"]


def test_facade_default_is_full_battery(sample_records):
    result = evaluate(sample_records, training=5)
    assert set(result.traces) == set(ALL_PREDICTOR_NAMES)


def test_facade_accepts_comma_string(sample_records):
    result = evaluate(sample_records, "AVG, LV", training=5)
    assert list(result.traces) == ["AVG", "LV"]


def test_facade_accepts_prebuilt_mapping(sample_records):
    battery = resolve_battery(["AVG", "C-LV"])
    result = evaluate(sample_records, battery, training=5)
    assert set(result.traces) == {"AVG", "C-LV"}


def test_facade_mixed_specs_fall_back_to_generic(sample_records):
    result = evaluate(sample_records, ["C-AVG15", "SIZE"], training=5)
    assert set(result.traces) == {"C-AVG15", "SIZE"}
    assert result["SIZE"].predicted.size > 0


def test_facade_unknown_spec_raises(sample_records):
    with pytest.raises(KeyError):
        evaluate(sample_records, ["NOPE"], training=5)
