"""Transfer engine: end-to-end composition of network and disks."""

import numpy as np
import pytest

from repro.gridftp import TransferEngine, TransferRequest
from repro.net import ConstantLoad, Link, Site, Topology
from repro.storage import Disk, DiskSpec
from repro.units import MB


def make_path(capacity=20e6, rtt=0.05, load=0.5):
    topo = Topology()
    for name in "AB":
        topo.add_site(Site(name=name))
    topo.add_link(Link(a="A", b="B", capacity=capacity, rtt=rtt,
                       load=ConstantLoad(load)))
    return topo.path("A", "B")


@pytest.fixture
def disks():
    return Disk("src"), Disk("dst")


class TestRequest:
    @pytest.mark.parametrize("kw", [
        dict(size=0), dict(size=100, streams=0), dict(size=100, buffer=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            TransferRequest(**kw)


class TestEngine:
    def test_deterministic_without_rng(self, disks):
        engine = TransferEngine(rng=None)
        path = make_path()
        req = TransferRequest(size=100 * MB, streams=8, buffer=1 * MB)
        a = engine.execute(path, req, *disks)
        b = engine.execute(path, req, *disks)
        assert a.end_time == b.end_time

    def test_bandwidth_is_size_over_duration(self, disks):
        engine = TransferEngine(rng=None)
        out = engine.execute(make_path(), TransferRequest(size=100 * MB, streams=8,
                                                          buffer=1 * MB), *disks)
        assert out.bandwidth == pytest.approx(100 * MB / out.duration)

    def test_network_is_bottleneck_with_fast_disks(self, disks):
        engine = TransferEngine(rng=None)
        out = engine.execute(make_path(capacity=20e6, load=0.5),
                             TransferRequest(size=500 * MB, streams=8, buffer=1 * MB),
                             *disks)
        # Available = 10 MB/s; disks are 60/45 MB/s.
        assert out.cap == pytest.approx(10e6)

    def test_slow_disk_becomes_bottleneck(self):
        slow = Disk("slow", DiskSpec(sustained_read=2e6, contention_exponent=1.0))
        dst = Disk("dst")
        engine = TransferEngine(rng=None)
        out = engine.execute(make_path(capacity=20e6, load=0.0),
                             TransferRequest(size=100 * MB, streams=8, buffer=1 * MB),
                             slow, dst)
        assert out.cap == pytest.approx(2e6)

    def test_jitter_cannot_exceed_wire_capacity(self, disks):
        engine = TransferEngine(rng=np.random.default_rng(0), jitter_sigma=0.5)
        path = make_path(capacity=20e6, load=0.02)
        bws = [
            engine.execute(path, TransferRequest(size=500 * MB, streams=8,
                                                 buffer=1 * MB, start_time=float(i)),
                           *disks).bandwidth
            for i in range(50)
        ]
        assert max(bws) <= 20e6

    def test_jitter_adds_variance(self, disks):
        noisy = TransferEngine(rng=np.random.default_rng(0), jitter_sigma=0.1)
        path = make_path()
        req = TransferRequest(size=100 * MB, streams=8, buffer=1 * MB)
        bws = {round(noisy.execute(path, req, *disks).bandwidth) for _ in range(10)}
        assert len(bws) > 1

    def test_overhead_included_in_duration(self, disks):
        engine = TransferEngine(rng=None, server_overhead=1.0, logging_overhead=0.5)
        out = engine.execute(make_path(), TransferRequest(size=1 * MB), *disks)
        assert out.overhead >= 1.5
        assert out.duration > out.network_timing.duration

    def test_small_files_get_lower_bandwidth(self, disks):
        engine = TransferEngine(rng=None)
        path = make_path()
        small = engine.execute(path, TransferRequest(size=1 * MB, streams=8,
                                                     buffer=1 * MB), *disks)
        large = engine.execute(path, TransferRequest(size=1000 * MB, streams=8,
                                                     buffer=1 * MB), *disks)
        assert small.bandwidth < large.bandwidth / 2

    @pytest.mark.parametrize("kw", [
        dict(jitter_sigma=-0.1), dict(server_overhead=-1), dict(logging_overhead=-1),
    ])
    def test_engine_validation(self, kw):
        with pytest.raises(ValueError):
            TransferEngine(**kw)
