"""The incremental information provider: parity with the batch provider."""

import pytest

from repro.logs import Operation, TransferLog
from repro.mds import (
    GridFTPInfoProvider,
    IncrementalGridFTPInfoProvider,
    validate_entry,
)
from repro.net import Site
from repro.units import MB
from tests.conftest import make_record


@pytest.fixture
def site():
    return Site(name="LBL", domain="lbl.gov", address="131.243.2.91",
                hostname="dpsslx04.lbl.gov")


def mixed_log():
    log = TransferLog()
    for i in range(15):
        log.append(make_record(start=1000.0 * (i + 1), size=10 * MB,
                               bandwidth=2e6 + i * 1e5))
    for i in range(15, 30):
        log.append(make_record(start=1000.0 * (i + 1), size=900 * MB,
                               bandwidth=7e6 + i * 1e5))
    log.append(make_record(start=50_000.0, size=25 * MB, bandwidth=3e6,
                           operation=Operation.WRITE))
    return log


class TestParity:
    def test_matches_batch_provider_with_total_average(self, site):
        """Same log, same attributes, same values — the parity invariant."""
        log = mixed_log()
        batch = GridFTPInfoProvider(log=log, site=site, url="u")
        incremental = IncrementalGridFTPInfoProvider(log=log, site=site, url="u")
        batch_entry = batch.entries(now=60_000.0)[0]
        inc_entry = incremental.entries(now=60_000.0)[0]
        assert inc_entry.dn == batch_entry.dn
        assert set(inc_entry.attribute_names()) == set(batch_entry.attribute_names())
        for name in batch_entry.attribute_names():
            assert inc_entry.get(name) == batch_entry.get(name), name

    def test_entry_validates(self, site):
        provider = IncrementalGridFTPInfoProvider(log=mixed_log(), site=site, url="u")
        validate_entry(provider.entries(now=60_000.0)[0])


class TestIncrementalBehaviour:
    def test_live_updates_as_records_append(self, site):
        log = TransferLog()
        provider = IncrementalGridFTPInfoProvider(log=log, site=site, url="u")
        assert provider.entries(now=0.0) == []
        log.append(make_record(start=1000.0, bandwidth=4e6))
        entry = provider.entries(now=2000.0)[0]
        assert entry.first("numtransfers") == "1"
        assert entry.first("avgrdbandwidth") == "4000K"
        log.append(make_record(start=3000.0, bandwidth=6e6))
        entry = provider.entries(now=4000.0)[0]
        assert entry.first("numtransfers") == "2"
        assert entry.first("avgrdbandwidth") == "5000K"

    def test_preexisting_records_folded_at_construction(self, site):
        log = mixed_log()
        provider = IncrementalGridFTPInfoProvider(log=log, site=site, url="u")
        assert provider.entries(now=60_000.0)[0].first("numtransfers") == "31"

    def test_close_detaches(self, site):
        log = TransferLog()
        provider = IncrementalGridFTPInfoProvider(log=log, site=site, url="u")
        provider.close()
        provider.close()  # idempotent
        log.append(make_record(start=1000.0))
        assert provider.entries(now=2000.0) == []

    def test_recent_bounded(self, site):
        log = mixed_log()
        provider = IncrementalGridFTPInfoProvider(log=log, site=site, url="u",
                                                  recent=5)
        entry = provider.entries(now=60_000.0)[0]
        assert len(entry.get("recentrdbandwidth")) == 5

    def test_validation(self, site):
        with pytest.raises(ValueError):
            IncrementalGridFTPInfoProvider(log=TransferLog(), site=site, url="u",
                                           recent=-1)
