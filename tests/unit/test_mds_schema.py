"""Schema validation for GridFTP performance entries."""

import pytest

from repro.mds import Entry, GRIDFTP_PERF, SchemaError, validate_entry
from repro.mds.schema import Attribute, ObjectClass


def minimal_entry():
    return Entry("cn=1.2.3.4,o=grid", {
        "objectclass": ["GridFTPPerf"],
        "cn": ["1.2.3.4"],
        "hostname": ["h.example.org"],
        "gridftpurl": ["gsiftp://h.example.org:2811"],
        "numtransfers": ["42"],
        "lastupdate": ["998988165.0"],
    })


class TestAttribute:
    def test_bandwidth_accepts_k_suffix(self):
        Attribute("x", syntax="bandwidth").check("6062K")
        Attribute("x", syntax="bandwidth").check("6062")

    def test_bandwidth_rejects_garbage_and_negative(self):
        attr = Attribute("x", syntax="bandwidth")
        with pytest.raises(SchemaError):
            attr.check("fast")
        with pytest.raises(SchemaError):
            attr.check("-5K")

    def test_integer_rejects_float(self):
        attr = Attribute("n", syntax="integer")
        attr.check("10")
        with pytest.raises(SchemaError):
            attr.check("10.5")

    def test_unknown_syntax_rejected(self):
        with pytest.raises(ValueError):
            Attribute("x", syntax="blob")


class TestValidateEntry:
    def test_minimal_valid(self):
        validate_entry(minimal_entry())

    def test_full_figure6_entry(self):
        e = minimal_entry()
        e.add("minrdbandwidth", "1462K")
        e.add("maxrdbandwidth", "12800K")
        e.add("avgrdbandwidth", "6062K")
        e.add("avgrdbandwidth10mbrange", "5714K")
        e.add("predictedrdbandwidth1gbrange", "8000K")
        e.add("recentrdbandwidth", "100K")
        e.add("recentrdbandwidth", "200K")
        validate_entry(e)

    def test_missing_required(self):
        e = minimal_entry()
        e._attrs.pop("hostname")  # simulate provider bug
        with pytest.raises(SchemaError, match="hostname"):
            validate_entry(e)

    def test_unknown_attribute_rejected(self):
        e = minimal_entry()
        e.add("madeup", "1")
        with pytest.raises(SchemaError, match="madeup"):
            validate_entry(e)

    def test_single_valued_enforced(self):
        e = minimal_entry()
        e.add("avgrdbandwidth", "1K")
        e.add("avgrdbandwidth", "2K")
        with pytest.raises(SchemaError, match="single-valued"):
            validate_entry(e)

    def test_syntax_enforced(self):
        e = minimal_entry()
        e.set("numtransfers", "many")
        with pytest.raises(SchemaError):
            validate_entry(e)


class TestObjectClass:
    def test_attribute_lookup(self):
        assert GRIDFTP_PERF.attribute("AVGRDBANDWIDTH").syntax == "bandwidth"
        with pytest.raises(KeyError):
            GRIDFTP_PERF.attribute("nope")

    def test_per_class_attributes_exist(self):
        names = GRIDFTP_PERF.known_names()
        for label in ("10mb", "100mb", "500mb", "1gb"):
            assert f"avgrdbandwidth{label}range" in names
            assert f"predictedrdbandwidth{label}range" in names

    def test_custom_objectclass(self):
        oc = ObjectClass(
            name="Mini",
            required=(Attribute("objectclass"), Attribute("cn")),
        )
        e = Entry("cn=x", {"objectclass": ["Mini"], "cn": ["x"]})
        validate_entry(e, oc)
