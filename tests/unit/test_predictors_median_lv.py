"""Median-based predictors and last value."""

import pytest

from repro.core import History
from repro.core.predictors import LastValue, TotalMedian, WindowedMedian
from repro.core.predictors.base import PredictorError
from tests.unit.test_predictors_mean import hist


class TestTotalMedian:
    def test_odd_count(self):
        assert TotalMedian().predict(hist([1, 100, 3])) == pytest.approx(3.0)

    def test_even_count_averages_middle(self):
        """The paper's even-t convention: mean of the two middle values."""
        assert TotalMedian().predict(hist([1, 2, 3, 100])) == pytest.approx(2.5)

    def test_rejects_asymmetric_outliers(self):
        """Medians shrug off the burst-induced low outliers (Section 4.1)."""
        values = [10.0] * 9 + [0.5]
        assert TotalMedian().predict(hist(values)) == pytest.approx(10.0)

    def test_empty_abstains(self):
        assert TotalMedian().predict(History.empty(), now=0.0) is None


class TestWindowedMedian:
    def test_window(self):
        p = WindowedMedian(3)
        assert p.predict(hist([100, 100, 1, 2, 300])) == pytest.approx(2.0)
        assert p.name == "MED3"

    def test_invalid_window(self):
        with pytest.raises(PredictorError):
            WindowedMedian(-1)


class TestLastValue:
    def test_returns_latest(self):
        assert LastValue().predict(hist([5, 6, 7])) == pytest.approx(7.0)

    def test_empty_abstains(self):
        assert LastValue().predict(History.empty(), now=0.0) is None

    def test_chases_outliers(self):
        """LV's weakness: it repeats whatever just happened."""
        assert LastValue().predict(hist([10, 10, 10, 0.5])) == pytest.approx(0.5)
