"""Disk model: rates, contention, bookkeeping."""

import pytest

from repro.storage import Disk, DiskSpec


class TestSpec:
    @pytest.mark.parametrize("kw", [
        dict(sustained_read=0), dict(sustained_write=-1),
        dict(seek_time=-0.1), dict(contention_exponent=0.9),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            DiskSpec(**kw)


class TestRates:
    def test_idle_disk_serves_at_sustained(self):
        disk = Disk("d", DiskSpec(sustained_read=60e6, contention_exponent=1.0))
        assert disk.read_rate() == pytest.approx(60e6)

    def test_contention_splits_and_penalizes(self):
        disk = Disk("d", DiskSpec(sustained_read=60e6, contention_exponent=1.15))
        solo = disk.read_rate()
        disk.acquire()
        shared = disk.read_rate()  # this transfer + 1 active
        assert shared < solo / 2 * 1.01  # worse than a perfect split
        assert shared > solo / 4

    def test_write_slower_than_read_by_default(self):
        disk = Disk("d")
        assert disk.write_rate() < disk.read_rate()

    def test_access_time_includes_seek(self):
        disk = Disk("d", DiskSpec(sustained_read=50e6, seek_time=0.01,
                                  contention_exponent=1.0))
        assert disk.access_time(50_000_000) == pytest.approx(0.01 + 1.0)

    def test_access_time_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Disk("d").access_time(-1)


class TestBookkeeping:
    def test_acquire_release_cycle(self):
        disk = Disk("d")
        disk.acquire()
        disk.acquire()
        assert disk.active == 2
        disk.release()
        assert disk.active == 1

    def test_release_without_acquire_is_an_error(self):
        with pytest.raises(RuntimeError):
            Disk("d").release()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Disk("")
