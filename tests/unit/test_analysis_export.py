"""CSV export of figure data."""

import csv
from pathlib import Path

import pytest

from repro.analysis.census import compute_census
from repro.analysis.errors import compute_class_errors
from repro.analysis.export import (
    export_all,
    export_bandwidth_series,
    export_census,
    export_class_errors,
    export_classification_impact,
    export_relative_performance,
)
from repro.analysis.relative_perf import compute_relative_table
from repro.core.predictors.registry import PAPER_PREDICTOR_NAMES
from tests.unit.test_analysis_tables import synthetic_output


def read_csv(path: Path):
    with path.open() as handle:
        return list(csv.reader(handle))


@pytest.fixture(scope="module")
def output():
    return synthetic_output()


@pytest.fixture(scope="module")
def errors(output):
    return compute_class_errors("LBL-ANL", output.log.records())


class TestSeriesExport:
    def test_gridftp_rows_written(self, output, tmp_path):
        path = export_bandwidth_series(output, tmp_path)
        rows = read_csv(path)
        assert rows[0] == ["series", "time", "bandwidth_bytes_per_sec", "file_size"]
        gridftp_rows = [r for r in rows[1:] if r[0] == "gridftp"]
        assert len(gridftp_rows) == len(output.log.records())

    def test_probe_rows_when_present(self, output, tmp_path):
        from repro.nws import TimeSeries

        probes = TimeSeries()
        probes.append(1.0, 150_000.0)
        output_with = type(output)(
            link=output.link, server_site=output.server_site,
            client_site=output.client_site, log=output.log,
            outcomes=[], probes=probes,
        )
        rows = read_csv(export_bandwidth_series(output_with, tmp_path))
        assert any(r[0] == "nws_probe" for r in rows[1:])


class TestTableExports:
    def test_census(self, output, tmp_path, classification):
        census = compute_census({"Aug": {"LBL-ANL": output}}, classification)
        rows = read_csv(export_census(census, tmp_path))
        assert rows[0] == ["class", "link", "Aug"]
        assert len(rows) == 1 + 5  # All + four classes

    def test_class_errors(self, errors, tmp_path):
        rows = read_csv(export_class_errors(errors, tmp_path))
        assert len(rows) == 1 + 4 * len(PAPER_PREDICTOR_NAMES)
        labels = {r[0] for r in rows[1:]}
        assert labels == {"10MB", "100MB", "500MB", "1GB"}

    def test_classification_impact(self, errors, tmp_path):
        rows = read_csv(export_classification_impact(errors, tmp_path))
        assert len(rows) == 1 + len(PAPER_PREDICTOR_NAMES)
        for row in rows[1:]:
            # reduction = unclassified - classified (when both finite)
            classified, unclassified, reduction = map(float, row[1:])
            if classified == classified and unclassified == unclassified:
                assert reduction == pytest.approx(unclassified - classified)

    def test_relative_performance(self, errors, tmp_path):
        table = compute_relative_table(
            "LBL-ANL", errors.result,
            predictor_names=tuple(f"C-{n}" for n in PAPER_PREDICTOR_NAMES),
        )
        rows = read_csv(export_relative_performance(table, tmp_path))
        assert len(rows) == 1 + 4 * 15


class TestExportAll:
    def test_writes_every_artifact(self, output, tmp_path):
        months = {"Aug": {"LBL-ANL": output}}
        written = export_all(months, tmp_path / "figures")
        names = {p.name for p in written}
        assert names == {
            "fig07_census.csv",
            "fig01_02_LBL-ANL.csv",
            "fig08_11_LBL-ANL.csv",
            "fig12_13_LBL-ANL.csv",
            "fig14_21_LBL-ANL.csv",
        }
        assert all(p.exists() and p.stat().st_size > 0 for p in written)

    def test_creates_directory(self, output, tmp_path):
        target = tmp_path / "deep" / "nested"
        export_all({"Aug": {"LBL-ANL": output}}, target)
        assert target.is_dir()
