"""The fleet front tier against in-process shard workers.

Real :class:`~repro.service.server.ServiceServer` instances (threaded,
Unix sockets) stand in for the supervised subprocesses — same wire
surface, none of the spawn latency — so these tests exercise exactly
the front's own logic: routing, fan-out/reassembly, merging, admission
control, breaker failover, and last-good degraded answers.
"""

import asyncio
import socket
import time

import pytest

from repro.client import ServiceClient, ServiceError
from repro.fleet.front import FleetFront, ShardOverloaded, ShardUnavailable
from repro.fleet.hashing import ShardRing
from repro.resilience import RetryPolicy
from repro.service import PredictionService, ServiceServer
from repro.units import MB
from tests.conftest import make_record

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="unix domain sockets unavailable"
)

NOW = 10_000_000.0
FAIL_FAST = RetryPolicy(max_attempts=1)


def make_workers(tmp_path, count):
    """``count`` in-process worker servers plus their socket paths."""
    services, servers, sockets = [], [], []
    for shard in range(count):
        service = PredictionService(clock=lambda: NOW)
        server = ServiceServer(service, tmp_path / f"w{shard}.sock")
        server.start()
        services.append(service)
        servers.append(server)
        sockets.append(server.socket_path)
    return services, servers, sockets


@pytest.fixture
def fleet2(tmp_path):
    """Two live workers behind a front, fallback on, fast breaker."""
    services, servers, sockets = make_workers(tmp_path, 2)
    front = FleetFront(
        sockets,
        fallback=True,
        call_timeout=2.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=0.5,
        breaker_reset=0.2,
    ).start()
    try:
        yield services, servers, front
    finally:
        front.stop()
        for server in servers:
            server.stop()


def fleet_client(front, **kwargs):
    host, port = front.address
    kwargs.setdefault("retry", FAIL_FAST)
    return ServiceClient(f"{host}:{port}", timeout=5.0, **kwargs)


def seed_links(front, client, count=8, observations=3):
    """Observe ``count`` links through the front; returns their names."""
    links = [f"SITE{i}-DEST" for i in range(count)]
    for link in links:
        for k in range(observations):
            client.observe(link, 10 * MB, 1000.0 + 100 * k, 1001.0 + 100 * k)
    return links


def kill_worker(front, servers, shard):
    """Down an in-process worker as a real crash would look to the front.

    ``ServiceServer.stop()`` closes the listener and unlinks the socket,
    but connection threads the front already pooled keep serving (in a
    real kill the OS closes them).  Resetting the shard's pool finishes
    the simulation: the next call dials fresh and gets refused.
    """
    servers[shard].stop()
    asyncio.run_coroutine_threadsafe(
        front._links[shard].reset(), front._loop
    ).result(timeout=5.0)


def shard_split(front, links):
    """(a link on shard 0's side, a link on the other side) of the ring."""
    groups = front.ring.partition(links)
    assert len(groups) == 2, "test links must land on both shards"
    (s1, l1), (s2, l2) = sorted(groups.items())
    return s1, l1[0], s2, l2[0]


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_observe_and_predict_route_to_the_owning_shard(fleet2):
    services, _, front = fleet2
    with fleet_client(front) as client:
        links = seed_links(front, client)
    for link in links:
        owner = front.ring.shard_of(link)
        for shard, service in enumerate(services):
            expected = 3 if shard == owner else 0
            assert service.status()["links"].get(link, {}).get(
                "records", 0) == expected


def test_predict_answers_match_the_worker_directly(fleet2):
    services, _, front = fleet2
    with fleet_client(front) as client:
        [link] = seed_links(front, client, count=1)
        response = client.predict(link, 10 * MB)
        direct = services[front.ring.shard_of(link)].predict(link, 10 * MB)
        assert response["value"] == direct.value
        assert response["ok"] and response["v"] == 1


def test_json_dialect_is_served_too(fleet2):
    _, _, front = fleet2
    with fleet_client(front, binary=False) as client:
        assert client.ping() is True
        client.observe("J-LINK", 10 * MB, 0.0, 1.0)
        assert client.predict("J-LINK", MB)["value"] == pytest.approx(10 * MB)
        assert not client.binary


def test_unknown_op_and_bad_version_answer_in_band(fleet2):
    _, _, front = fleet2
    with fleet_client(front) as client:
        response = client.request({"op": "frobnicate"})
        assert response["error"]["code"] == "unknown_op"
        response = client.request({"op": "ping", "v": 99})
        assert response["error"]["code"] == "unsupported_version"


def test_shard_escape_hatch_addresses_one_worker(fleet2):
    # The ``shard`` passenger field rides OP_JSON in both dialects (the
    # binary status struct cannot carry it, so the encoder falls back).
    _, _, front = fleet2
    with fleet_client(front) as client:
        response = client.request({"op": "status", "shard": 1})
        assert response["ok"] and "fleet" not in response
        response = client.request({"op": "status", "shard": 7})
        assert response["error"]["code"] == "bad_request"


# ----------------------------------------------------------------------
# batch fan-out / reassembly
# ----------------------------------------------------------------------
def test_batch_reassembles_cross_shard_items_in_request_order(fleet2):
    _, _, front = fleet2
    with fleet_client(front) as client:
        links = seed_links(front, client)
        items = [{"link": link, "size": (i + 1) * MB}
                 for i, link in enumerate(links)]
        results = client.predict_batch(items)
        assert [r["link"] for r in results] == links
        assert [r["size"] for r in results] == [(i + 1) * MB
                                                for i in range(len(links))]
        assert all(r["ok"] and r["value"] is not None for r in results)


def test_batch_bad_items_fail_in_place_not_the_batch(fleet2):
    _, _, front = fleet2
    with fleet_client(front) as client:
        [link] = seed_links(front, client, count=1)
        results = client.predict_batch([
            {"link": link, "size": MB},
            {"size": MB},                      # no link
            {"link": link, "size": MB},
        ])
        assert results[0]["ok"] and results[2]["ok"]
        assert not results[1]["ok"]
        assert results[1]["error"]["code"] == "bad_request"


# ----------------------------------------------------------------------
# rank merge
# ----------------------------------------------------------------------
def test_rank_merges_across_shards_best_bandwidth_first(fleet2):
    services, _, front = fleet2
    with fleet_client(front) as client:
        links = [f"SITE{i}-DEST" for i in range(6)]
        # Distinct bandwidths, same size class as the query (classified
        # predictors only answer from matching-class history), so the
        # expected global order is exact.
        for i, link in enumerate(links):
            for k in range(3):
                client.observe(link, 10 * MB, 1000.0 + 100 * k,
                               1001.0 + 100 * k, bandwidth=(i + 1) * 10 * MB)
        ranking = client.rank(links + ["UNSEEN-SITE"], 10 * MB)
        assert [r["site"] for r in ranking[:-1]] == list(reversed(links))
        assert ranking[-1]["site"] == "UNSEEN-SITE"
        assert ranking[-1]["predicted_bandwidth"] is None


# ----------------------------------------------------------------------
# status aggregation
# ----------------------------------------------------------------------
def test_status_sums_workers_and_reports_fleet_health(fleet2):
    _, _, front = fleet2
    with fleet_client(front) as client:
        links = seed_links(front, client)
        client.predict(links[0], MB)
        status = client.status()
        assert status["link_count"] == len(links)
        assert status["ingested"] == 3 * len(links)
        assert status["predicts"] >= 1
        fleet = status["fleet"]
        assert fleet["workers"] == 2 and fleet["fallback"] is True
        assert [s["shard"] for s in fleet["shards"]] == [0, 1]
        assert all(s["up"] for s in fleet["shards"])
        assert all(s["breaker"]["state"] == "closed"
                   for s in fleet["shards"])


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_admission_bound_sheds_load_as_overloaded(tmp_path):
    services, servers, sockets = make_workers(tmp_path, 1)
    front = FleetFront(sockets, max_pending=0).start()  # reject everything
    try:
        with fleet_client(front) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.predict("ANY-LINK", MB)
            assert excinfo.value.code == "overloaded"
            # overloaded is NOT retried: a single fail-fast attempt is
            # indistinguishable, so exercise the default policy too.
        with fleet_client(front, retry=None) as client:
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.predict("ANY-LINK", MB)
            assert excinfo.value.code == "overloaded"
            assert time.monotonic() - started < 1.0  # no retry backoff burned
    finally:
        front.stop()
        for server in servers:
            server.stop()


# ----------------------------------------------------------------------
# failover
# ----------------------------------------------------------------------
def test_down_shard_answers_unavailable_without_fallback(tmp_path):
    services, servers, sockets = make_workers(tmp_path, 2)
    front = FleetFront(
        sockets, fallback=False, call_timeout=1.0,
        heartbeat_interval=0.1, breaker_reset=0.2,
    ).start()
    try:
        with fleet_client(front) as client:
            links = seed_links(front, client)
            s1, link_down, s2, link_up = shard_split(front, links)
            kill_worker(front, servers, s1)
            with pytest.raises(ServiceError) as excinfo:
                client.predict(link_down, MB)
            assert excinfo.value.code == "unavailable"
            # The healthy shard keeps answering the whole time.
            assert client.predict(link_up, MB)["value"] is not None
            # Rank across a down shard fails whole (no stale answers
            # without the operator opting in via fallback).
            with pytest.raises(ServiceError) as excinfo:
                client.rank([link_down, link_up], MB)
            assert excinfo.value.code == "unavailable"
    finally:
        front.stop()
        for server in servers:
            server.stop()


def test_fallback_serves_last_good_degraded_answers(fleet2):
    services, servers, front = fleet2
    with fleet_client(front) as client:
        links = seed_links(front, client)
        for link in links:
            assert not client.predict(link, MB)["degraded"]  # warm last-good
        s1, link_down, s2, link_up = shard_split(front, links)
        kill_worker(front, servers, s1)
        response = client.predict(link_down, MB)
        assert response["degraded"] is True and response["value"] is not None
        assert response["cached"] is True
        # Batch: down-shard items degrade in place, the rest answer live.
        results = client.predict_batch(
            [{"link": link_down, "size": MB}, {"link": link_up, "size": MB}]
        )
        assert results[0]["ok"] and results[0]["degraded"] is True
        assert results[1]["ok"] and not results[1]["degraded"]
        # Rank: degraded candidates sort after every confident one.
        ranking = client.rank([link_down, link_up], MB)
        assert [r["site"] for r in ranking] == [link_up, link_down]
        assert ranking[1].get("degraded") is True
        # Status still answers, flagging the dead shard.
        fleet_section = client.status()["fleet"]
        assert not fleet_section["shards"][s1]["up"]
        assert fleet_section["shards"][s2]["up"]


def test_breaker_recovers_after_the_worker_returns(tmp_path):
    services, servers, sockets = make_workers(tmp_path, 1)
    front = FleetFront(
        sockets, call_timeout=1.0, heartbeat_interval=0.05,
        breaker_threshold=2, breaker_reset=0.15,
    ).start()
    try:
        with fleet_client(front) as client:
            client.observe("L-A", 10 * MB, 0.0, 1.0)
            kill_worker(front, servers, 0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    client.predict("L-A", MB)
                except ServiceError as exc:
                    assert exc.code == "unavailable"
                    # The heartbeat may race the state open <-> half-open;
                    # either way the breaker has tripped.
                    if front._links[0].breaker.state() != "closed":
                        break
                time.sleep(0.02)
            else:
                pytest.fail("breaker never opened")
            # Same socket path, new server: the heartbeat probes the
            # half-open breaker shut again without any client traffic.
            revived = ServiceServer(services[0], sockets[0])
            revived.start()
            try:
                deadline = time.monotonic() + 5.0
                response = None
                while time.monotonic() < deadline:
                    try:
                        response = client.predict("L-A", MB)
                        break
                    except ServiceError:
                        time.sleep(0.05)
                assert response is not None and response["value"] is not None
            finally:
                revived.stop()
    finally:
        front.stop()
        for server in servers:
            server.stop()
