"""The consistent-hash ring every fleet process must agree on."""

import pytest

from repro.fleet.hashing import ShardRing, stable_hash


def test_stable_hash_is_process_stable():
    # Regression pin: these exact values must never change — a respawned
    # worker in a *new* process has to agree with the front about
    # ownership, and any drift silently re-homes every link.
    assert stable_hash("LBL-ANL") == stable_hash("LBL-ANL")
    assert stable_hash("") == 0xE4A6A0577479B2B4
    assert stable_hash("LBL-ANL") != stable_hash("ISI-ANL")


def test_same_parameters_build_identical_rings():
    a, b = ShardRing(4), ShardRing(4)
    links = [f"SITE{i}-DEST{j}" for i in range(20) for j in range(5)]
    assert [a.shard_of(link) for link in links] == [
        b.shard_of(link) for link in links
    ]


def test_single_shard_owns_everything():
    ring = ShardRing(1)
    assert all(ring.shard_of(f"L{i}") == 0 for i in range(50))


def test_every_shard_gets_some_links():
    ring = ShardRing(4)
    counts = ring.distribution([f"SITE{i}-ANL" for i in range(200)])
    assert sum(counts) == 200
    assert all(count > 0 for count in counts)
    # Replica smoothing: no shard should own a wildly outsized share.
    assert max(counts) < 3 * (200 // 4)


def test_partition_groups_match_shard_of_and_preserve_order():
    ring = ShardRing(3)
    links = [f"L{i}" for i in range(30)]
    groups = ring.partition(links)
    assert sorted(sum(groups.values(), [])) == sorted(links)
    for shard, members in groups.items():
        assert [link for link in links if ring.shard_of(link) == shard] == members


def test_growing_the_ring_remaps_only_a_fraction():
    links = [f"SITE{i}-DEST{j}" for i in range(40) for j in range(25)]
    before = ShardRing(4)
    after = ShardRing(5)
    moved = sum(
        1 for link in links if before.shard_of(link) != after.shard_of(link)
    )
    # Classic consistent hashing: ~1/5 of links move when 4 grows to 5.
    # Allow generous slack — the point is "a fraction", not "most".
    assert moved / len(links) < 0.45


def test_bad_parameters_are_rejected():
    with pytest.raises(ValueError):
        ShardRing(0)
    with pytest.raises(ValueError):
        ShardRing(2, replicas=0)
