"""Incremental summaries and log listeners."""

import numpy as np
import pytest

from repro.logs import RunningSummary, TransferLog, summarize
from tests.conftest import make_record


class TestRunningSummary:
    def test_empty(self):
        s = RunningSummary().summary()
        assert s.count == 0 and s.mean == 0.0

    def test_single_value(self):
        r = RunningSummary()
        r.add(5.0)
        s = r.summary()
        assert s.count == 1
        assert s.minimum == s.maximum == s.mean == s.median == 5.0
        assert s.stddev == 0.0

    def test_matches_batch_summarize(self):
        """The core invariant: incremental == batch, to float precision."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(15, 1, size=500)
        records = [
            make_record(start=1000.0 * (i + 1), bandwidth=float(v))
            for i, v in enumerate(values)
        ]
        batch = summarize(records)
        running = RunningSummary()
        for v in values:
            running.add(float(v))
        incremental = running.summary()
        assert incremental.count == batch.count
        assert incremental.minimum == batch.minimum
        assert incremental.maximum == batch.maximum
        assert incremental.mean == pytest.approx(batch.mean, rel=1e-12)
        assert incremental.median == pytest.approx(batch.median, rel=1e-12)
        assert incremental.stddev == pytest.approx(batch.stddev, rel=1e-9)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 10, 11])
    def test_median_parity_small_counts(self, n):
        values = list(range(1, n + 1))
        running = RunningSummary()
        for v in values:
            running.add(float(v))
        assert running.summary().median == pytest.approx(float(np.median(values)))

    def test_median_with_duplicates_and_order_independence(self):
        values = [5.0, 1.0, 5.0, 9.0, 1.0, 5.0]
        a, b = RunningSummary(), RunningSummary()
        for v in values:
            a.add(v)
        for v in reversed(values):
            b.add(v)
        assert a.summary().median == b.summary().median == 5.0


class TestLogListeners:
    def test_listener_sees_every_append(self):
        log = TransferLog()
        seen = []
        log.subscribe(seen.append)
        records = [make_record(start=1000.0 * (i + 1)) for i in range(3)]
        log.extend(records)
        assert seen == records

    def test_listener_fires_even_when_trim_drops(self):
        from repro.logs import MaxCount

        log = TransferLog(trim=MaxCount(1))
        seen = []
        log.subscribe(seen.append)
        log.extend([make_record(start=1000.0 * (i + 1)) for i in range(4)])
        assert len(seen) == 4 and len(log) == 1

    def test_unsubscribe(self):
        log = TransferLog()
        seen = []
        log.subscribe(seen.append)
        log.append(make_record(start=1000.0))
        log.unsubscribe(seen.append)
        log.append(make_record(start=2000.0))
        assert len(seen) == 1

    def test_multiple_listeners(self):
        log = TransferLog()
        a, b = [], []
        log.subscribe(a.append)
        log.subscribe(b.append)
        log.append(make_record(start=1000.0))
        assert len(a) == len(b) == 1
