"""Event engine: ordering, cancellation, run bounds."""

import pytest

from repro.sim import Engine, SimulationError


class TestScheduling:
    def test_now_starts_at_start_time(self):
        assert Engine(start_time=100.0).now == 100.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule(3.0, lambda: fired.append("c"))
        eng.schedule(1.0, lambda: fired.append("a"))
        eng.schedule(2.0, lambda: fired.append("b"))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        eng = Engine()
        fired = []
        for tag in "abc":
            eng.schedule(1.0, fired.append, tag)
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, "low", priority=1)
        eng.schedule(1.0, fired.append, "high", priority=0)
        eng.run()
        assert fired == ["high", "low"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(5.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [5.5] and eng.now == 5.5

    def test_schedule_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(5.0, lambda: None)

    def test_nonfinite_times_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            Engine(start_time=float("inf"))

    def test_events_scheduled_during_run_fire(self):
        eng = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                eng.schedule(1.0, chain, n + 1)

        eng.schedule(1.0, chain, 0)
        eng.run()
        assert fired == [0, 1, 2, 3]
        assert eng.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        event = eng.schedule(1.0, fired.append, "x")
        event.cancel()
        eng.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        keep = eng.schedule(1.0, lambda: None)
        drop = eng.schedule(2.0, lambda: None)
        drop.cancel()
        assert eng.pending() == 1
        assert not keep.cancelled


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule(1.0, fired.append, "early")
        eng.schedule(10.0, fired.append, "late")
        eng.run(until=5.0)
        assert fired == ["early"]
        assert eng.now == 5.0  # clock advanced to the bound
        eng.run()
        assert fired == ["early", "late"]

    def test_run_max_events(self):
        eng = Engine()
        for i in range(5):
            eng.schedule(float(i + 1), lambda: None)
        assert eng.run(max_events=2) == 2
        assert eng.pending() == 3

    def test_events_fired_counter(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.run()
        assert eng.events_fired == 2

    def test_step_returns_false_on_empty(self):
        assert Engine().step() is False

    def test_not_reentrant(self):
        eng = Engine()
        errors = []

        def nested():
            try:
                eng.run()
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, nested)
        eng.run()
        assert len(errors) == 1
