"""Record filters and composition."""

import pytest

from repro.logs import (
    Operation,
    by_operation,
    by_size_class,
    by_size_range,
    by_source_ip,
    by_time_window,
    chain,
    last_n,
    since,
)
from repro.units import MB
from tests.conftest import make_record


@pytest.fixture
def records():
    return [
        make_record(start=100.0, size=10 * MB, source_ip="1.1.1.1"),
        make_record(start=200.0, size=100 * MB, source_ip="2.2.2.2",
                    operation=Operation.WRITE),
        make_record(start=300.0, size=600 * MB, source_ip="1.1.1.1"),
        make_record(start=400.0, size=900 * MB, source_ip="1.1.1.1"),
    ]


def test_by_operation(records):
    assert len(by_operation(Operation.READ)(records)) == 3
    assert len(by_operation(Operation.WRITE)(records)) == 1


def test_by_source_ip(records):
    assert len(by_source_ip("1.1.1.1")(records)) == 3
    assert by_source_ip("9.9.9.9")(records) == []


def test_by_size_range(records):
    out = by_size_range(50 * MB, 750 * MB)(records)
    assert [r.file_size for r in out] == [100 * MB, 600 * MB]


def test_by_size_range_validation():
    with pytest.raises(ValueError):
        by_size_range(10, 10)


def test_by_size_class(records, classification):
    out = by_size_class(classification.classify, "500MB")(records)
    assert [r.file_size for r in out] == [600 * MB]


def test_by_time_window(records):
    out = by_time_window(150.0, 350.0)(records)  # end times are start+10
    assert [r.start_time for r in out] == [200.0, 300.0]


def test_by_time_window_validation():
    with pytest.raises(ValueError):
        by_time_window(5.0, 5.0)


def test_since(records):
    # End times are start+10; the boundary record (ends exactly at 310) is kept.
    assert len(since(310.0)(records)) == 2
    assert len(since(310.5)(records)) == 1


def test_last_n(records):
    assert [r.start_time for r in last_n(2)(records)] == [300.0, 400.0]
    assert len(last_n(10)(records)) == 4


def test_last_n_validation():
    with pytest.raises(ValueError):
        last_n(0)


def test_chain_order_matters(records, classification):
    # Class filter then last-1: newest transfer *of that class*.
    class_then_last = chain(
        by_size_class(classification.classify, "10MB"), last_n(1)
    )(records)
    assert [r.file_size for r in class_then_last] == [10 * MB]

    # Last-1 then class filter: newest transfer, kept only if in class.
    last_then_class = chain(
        last_n(1), by_size_class(classification.classify, "10MB")
    )(records)
    assert last_then_class == []


def test_chain_empty_is_identity(records):
    assert chain()(records) == list(records)
