"""Soft-state registration."""

import pytest

from repro.mds import SoftStateRegistry


def test_register_and_live():
    reg = SoftStateRegistry()
    reg.register("gris-lbl", payload="p", ttl=60.0, now=0.0)
    assert [r.key for r in reg.live(30.0)] == ["gris-lbl"]


def test_expiry_without_renewal():
    reg = SoftStateRegistry()
    reg.register("g", payload=None, ttl=60.0, now=0.0)
    assert reg.live(59.9)
    assert reg.live(60.0) == []          # lease ended exactly at ttl
    assert reg.get("g", 61.0) is None    # pruned


def test_renewal_extends_lease():
    reg = SoftStateRegistry()
    reg.register("g", payload=None, ttl=60.0, now=0.0)
    reg.renew("g", now=50.0)
    assert reg.live(100.0)
    assert not reg.live(111.0)


def test_renew_with_new_ttl():
    reg = SoftStateRegistry()
    reg.register("g", payload=None, ttl=60.0, now=0.0)
    reg.renew("g", now=10.0, ttl=600.0)
    assert reg.live(500.0)


def test_renew_unknown_raises():
    with pytest.raises(KeyError):
        SoftStateRegistry().renew("ghost", now=0.0)


def test_reregistration_replaces():
    reg = SoftStateRegistry()
    reg.register("g", payload="old", ttl=60.0, now=0.0)
    reg.register("g", payload="new", ttl=60.0, now=30.0)
    live = reg.live(80.0)
    assert len(live) == 1 and live[0].payload == "new"


def test_deregister():
    reg = SoftStateRegistry()
    reg.register("g", payload=None, ttl=60.0, now=0.0)
    reg.deregister("g")
    assert reg.live(1.0) == []
    reg.deregister("g")  # idempotent


def test_validation():
    reg = SoftStateRegistry()
    with pytest.raises(ValueError):
        reg.register("", payload=None, ttl=60.0, now=0.0)
    with pytest.raises(ValueError):
        reg.register("g", payload=None, ttl=0.0, now=0.0)
    reg.register("g", payload=None, ttl=10.0, now=0.0)
    with pytest.raises(ValueError):
        reg.renew("g", now=1.0, ttl=-5.0)


def test_expires_at_property():
    reg = SoftStateRegistry()
    r = reg.register("g", payload=None, ttl=60.0, now=100.0)
    assert r.expires_at == 160.0
    assert r.is_live(159.9) and not r.is_live(160.0)
