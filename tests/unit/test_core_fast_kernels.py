"""Direct kernel tests for the vectorized evaluator."""

import numpy as np
import pytest

from repro.core import History, fast_evaluate
from repro.core.fast import (
    _ar_model,
    _last_value,
    _running_mean,
    _running_median,
    _temporal_mean,
    _windowed_mean,
    _windowed_median,
)
from repro.units import HOUR, MB


class TestKernels:
    def test_running_mean(self):
        out = _running_mean(np.array([2.0, 4.0, 6.0]))
        assert np.isnan(out[0])
        assert list(out[1:]) == [2.0, 3.0]

    def test_last_value(self):
        out = _last_value(np.array([7.0, 8.0, 9.0]))
        assert np.isnan(out[0]) and list(out[1:]) == [7.0, 8.0]

    def test_windowed_mean_partial_and_full(self):
        out = _windowed_mean(np.array([1.0, 3.0, 5.0, 7.0]), window=2)
        assert np.isnan(out[0])
        assert out[1] == 1.0          # partial window
        assert out[2] == 2.0          # mean(1,3)
        assert out[3] == 4.0          # mean(3,5)

    def test_windowed_median_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.random(30)
        out = _windowed_median(values, window=5)
        for i in range(1, 30):
            expected = np.median(values[max(0, i - 5):i])
            assert out[i] == pytest.approx(expected), i

    def test_running_median_matches_numpy(self):
        rng = np.random.default_rng(1)
        values = rng.random(50)
        out = _running_median(values)
        for i in range(1, 50):
            assert out[i] == pytest.approx(np.median(values[:i])), i

    def test_temporal_mean_empty_window_is_nan(self):
        times = np.array([0.0, 10 * HOUR])
        anchors = times
        out = _temporal_mean(np.array([5.0, 6.0]), times, anchors, seconds=HOUR)
        assert np.isnan(out[1])  # previous obs is 10 h old, window is 1 h

    def test_ar_recovers_recurrence(self):
        values = [10.0]
        for _ in range(30):
            values.append(2 + 0.5 * values[-1])
        arr = np.array(values)
        times = np.arange(len(arr), dtype=float)
        out = _ar_model(arr, times, times, None)
        assert out[-1] == pytest.approx(2 + 0.5 * arr[-2], rel=1e-6)

    def test_ar_constant_falls_back_to_mean(self):
        arr = np.full(10, 4.0)
        times = np.arange(10, dtype=float)
        out = _ar_model(arr, times, times, None)
        assert list(out[1:]) == [4.0] * 9

    def test_single_element_series(self):
        one = np.array([5.0])
        for kernel in (_running_mean, _last_value, _running_median):
            assert np.isnan(kernel(one)).all()
        assert np.isnan(_windowed_mean(one, 5)).all()
        assert np.isnan(_windowed_median(one, 5)).all()


class TestFastEvaluateEdges:
    def test_training_longer_than_history_gives_empty_traces(self):
        h = History(
            times=np.arange(5, dtype=float),
            values=np.full(5, 1e6),
            sizes=np.full(5, 100 * MB),
        )
        result = fast_evaluate(h, training=10)
        for trace in result.traces.values():
            assert len(trace) == 0 and trace.abstentions == 0

    def test_custom_classification(self):
        from repro.core import Classification

        cls = Classification(edges=(100 * MB,), labels=("s", "l"))
        h = History(
            times=np.arange(20, dtype=float) * 3600.0,
            values=np.tile([1e6, 9e6], 10),
            sizes=np.tile([10 * MB, 900 * MB], 10).astype(np.int64),
        )
        result = fast_evaluate(h, training=2, classification=cls)
        trace = result["C-AVG"]
        # Each class is constant -> classified AVG is exact.
        assert trace.pct_errors.max() == pytest.approx(0.0)

    def test_validation(self):
        h = History.empty()
        with pytest.raises(ValueError):
            fast_evaluate(h, training=0)
