"""The GridFTP information provider (Figure 6)."""

import pytest

from repro.logs import Operation, TransferLog
from repro.mds import GridFTPInfoProvider, validate_entry
from repro.net import Site
from repro.units import MB
from tests.conftest import make_record


@pytest.fixture
def site():
    return Site(name="LBL", domain="lbl.gov", address="131.243.2.91",
                hostname="dpsslx04.lbl.gov")


def make_provider(site, records):
    log = TransferLog(host=site.hostname)
    log.extend(records)
    return GridFTPInfoProvider(
        log=log, site=site, url="gsiftp://dpsslx04.lbl.gov:61000"
    )


def mixed_records():
    out = []
    for i in range(10):
        out.append(make_record(start=1000.0 * (i + 1), size=10 * MB,
                               bandwidth=2e6 + i * 1e5))
    for i in range(10, 20):
        out.append(make_record(start=1000.0 * (i + 1), size=900 * MB,
                               bandwidth=7e6 + i * 1e5))
    out.append(make_record(start=50_000.0, size=25 * MB, bandwidth=3e6,
                           operation=Operation.WRITE))
    return out


class TestEntryGeneration:
    def test_entry_validates_against_schema(self, site):
        provider = make_provider(site, mixed_records())
        entry = provider.entries(now=60_000.0)[0]
        validate_entry(entry)

    def test_dn_mirrors_figure6(self, site):
        provider = make_provider(site, mixed_records())
        entry = provider.entries(now=60_000.0)[0]
        assert entry.dn == (
            "cn=131.243.2.91,hostname=dpsslx04.lbl.gov,dc=lbl,dc=gov,o=grid"
        )

    def test_identity_attributes(self, site):
        entry = make_provider(site, mixed_records()).entries(now=60_000.0)[0]
        assert entry.first("gridftpurl") == "gsiftp://dpsslx04.lbl.gov:61000"
        assert entry.first("hostname") == "dpsslx04.lbl.gov"
        assert entry.first("numtransfers") == "21"

    def test_bandwidths_in_k_format(self, site):
        entry = make_provider(site, mixed_records()).entries(now=60_000.0)[0]
        assert entry.first("minrdbandwidth") == "2000K"
        assert entry.first("maxrdbandwidth").endswith("K")

    def test_read_write_separated(self, site):
        entry = make_provider(site, mixed_records()).entries(now=60_000.0)[0]
        assert entry.first("avgwrbandwidth") == "3000K"

    def test_per_class_attributes_present_only_for_observed_classes(self, site):
        entry = make_provider(site, mixed_records()).entries(now=60_000.0)[0]
        assert entry.has("avgrdbandwidth10mbrange")
        assert entry.has("avgrdbandwidth1gbrange")
        assert not entry.has("avgrdbandwidth100mbrange")

    def test_predictions_per_class(self, site):
        entry = make_provider(site, mixed_records()).entries(now=60_000.0)[0]
        assert entry.has("predictedrdbandwidth10mbrange")
        assert entry.has("predictedrdbandwidth1gbrange")
        # Prediction for the small class reflects small-class history only.
        predicted = float(entry.first("predictedrdbandwidth10mbrange")[:-1])
        assert 2000 <= predicted <= 3000

    def test_recent_measurements_multivalued(self, site):
        provider = GridFTPInfoProvider(
            log=make_provider(site, mixed_records()).log,
            site=site, url="u", recent=5,
        )
        entry = provider.entries(now=60_000.0)[0]
        assert len(entry.get("recentrdbandwidth")) == 5

    def test_empty_log_produces_no_entry(self, site):
        provider = GridFTPInfoProvider(log=TransferLog(), site=site, url="u")
        assert provider.entries(now=0.0) == []


class TestReport:
    def test_timing_breakdown(self, site):
        provider = make_provider(site, mixed_records())
        entry, report = provider.report(now=60_000.0)
        assert entry is not None
        assert report.n_records == 21
        assert report.total_seconds == pytest.approx(
            report.filter_seconds + report.classify_seconds + report.predict_seconds
        )
        assert report.total_seconds < 1.0

    def test_validation(self, site):
        with pytest.raises(ValueError):
            GridFTPInfoProvider(log=TransferLog(), site=site, url="u", recent=-1)
