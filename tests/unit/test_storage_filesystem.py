"""Logical volumes and the replica catalog."""

import pytest

from repro.storage import Disk, LogicalVolume, ReplicaCatalog


@pytest.fixture
def volume():
    return LogicalVolume(root="/home/ftp", disk=Disk("d"))


class TestVolume:
    def test_relative_root_rejected(self):
        with pytest.raises(ValueError):
            LogicalVolume(root="home/ftp", disk=Disk("d"))

    def test_add_and_lookup(self, volume):
        abspath = volume.add_file("data/10M", 10_000_000)
        assert abspath == "/home/ftp/data/10M"
        assert volume.has("data/10M")
        assert volume.has("/home/ftp/data/10M")
        assert volume.size_of("data/10M") == 10_000_000

    def test_missing_file(self, volume):
        assert not volume.has("nope")
        with pytest.raises(FileNotFoundError):
            volume.size_of("nope")

    def test_path_outside_volume_rejected(self, volume):
        with pytest.raises(ValueError):
            volume.abspath("/etc/passwd")

    def test_remove(self, volume):
        volume.add_file("x", 1)
        volume.remove("x")
        assert not volume.has("x")
        with pytest.raises(FileNotFoundError):
            volume.remove("x")

    def test_negative_size_rejected(self, volume):
        with pytest.raises(ValueError):
            volume.add_file("x", -1)

    def test_len_and_iteration(self, volume):
        volume.add_file("a", 1)
        volume.add_file("b", 2)
        assert len(volume) == 2
        assert dict(volume.files()) == {"/home/ftp/a": 1, "/home/ftp/b": 2}


class TestReplicaCatalog:
    def test_register_and_locate(self):
        cat = ReplicaCatalog()
        cat.register("lfn://data1", "LBL", 500)
        cat.register("lfn://data1", "ISI", 500)
        assert cat.locations("lfn://data1") == ["ISI", "LBL"]
        assert cat.size_of("lfn://data1") == 500
        assert "lfn://data1" in cat

    def test_size_mismatch_rejected(self):
        cat = ReplicaCatalog()
        cat.register("f", "A", 100)
        with pytest.raises(ValueError):
            cat.register("f", "B", 200)

    def test_unknown_file(self):
        cat = ReplicaCatalog()
        with pytest.raises(KeyError):
            cat.locations("nope")
        with pytest.raises(KeyError):
            cat.size_of("nope")

    def test_unregister_last_replica_removes_entry(self):
        cat = ReplicaCatalog()
        cat.register("f", "A", 1)
        cat.unregister("f", "A")
        assert "f" not in cat
        with pytest.raises(KeyError):
            cat.unregister("f", "A")

    def test_logical_names_sorted(self):
        cat = ReplicaCatalog()
        cat.register("b", "X", 1)
        cat.register("a", "X", 1)
        assert cat.logical_names() == ["a", "b"]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ReplicaCatalog().register("f", "A", -1)
