"""Bandwidth summary statistics."""

import pytest

from repro.logs import BandwidthSummary, Operation, summarize, summarize_by_class
from repro.units import MB
from tests.conftest import make_record


def test_empty_summary():
    s = summarize([])
    assert s == BandwidthSummary.empty()
    assert s.coefficient_of_variation == 0.0


def test_summary_statistics():
    records = [make_record(bandwidth=bw) for bw in (2e6, 4e6, 6e6, 8e6)]
    s = summarize(records)
    assert s.count == 4
    assert s.minimum == 2e6 and s.maximum == 8e6
    assert s.mean == pytest.approx(5e6)
    assert s.median == pytest.approx(5e6)
    assert s.stddev == pytest.approx(2.2360679e6, rel=1e-6)
    assert s.coefficient_of_variation == pytest.approx(s.stddev / s.mean)


def test_summary_by_operation():
    records = [
        make_record(bandwidth=1e6),
        make_record(bandwidth=9e6, operation=Operation.WRITE),
    ]
    assert summarize(records, Operation.READ).mean == pytest.approx(1e6)
    assert summarize(records, Operation.WRITE).mean == pytest.approx(9e6)
    assert summarize(records).count == 2


def test_summarize_by_class(classification):
    records = [
        make_record(size=10 * MB, bandwidth=2e6),
        make_record(size=20 * MB, bandwidth=4e6),
        make_record(size=900 * MB, bandwidth=9e6),
    ]
    per = summarize_by_class(records, classification.classify)
    assert set(per) == {"10MB", "1GB"}  # only classes that occur
    assert per["10MB"].count == 2
    assert per["10MB"].mean == pytest.approx(3e6)
    assert per["1GB"].maximum == pytest.approx(9e6)


def test_summarize_by_class_respects_operation(classification):
    records = [
        make_record(size=10 * MB, operation=Operation.WRITE),
        make_record(size=10 * MB),
    ]
    per = summarize_by_class(records, classification.classify, Operation.READ)
    assert per["10MB"].count == 1
