"""repro.faults: the deterministic fault-injection switchboard."""

import pytest

from repro import faults
from repro.faults import FaultInjector, injected


@pytest.fixture(autouse=True)
def no_leftover_injector():
    yield
    faults.uninstall()


class TestScheduling:
    def test_error_fires_for_the_scheduled_count_then_stops(self):
        injector = FaultInjector()
        injector.inject("site", error=OSError, times=2)
        with pytest.raises(OSError):
            injector.check("site")
        with pytest.raises(OSError):
            injector.check("site")
        injector.check("site")  # exhausted
        assert injector.fired["site"] == 2

    def test_after_skips_early_calls(self):
        injector = FaultInjector()
        injector.inject("site", error=IOError, times=1, after=2)
        injector.check("site")
        injector.check("site")
        with pytest.raises(IOError):
            injector.check("site")
        injector.check("site")

    def test_times_none_fires_forever(self):
        injector = FaultInjector()
        injector.inject("site", error=ConnectionRefusedError, times=None)
        for _ in range(5):
            with pytest.raises(ConnectionRefusedError):
                injector.check("site")

    def test_context_matching_targets_one_source(self):
        injector = FaultInjector()
        injector.inject("gris.search", error=TimeoutError, times=None,
                        source="ISI")
        with pytest.raises(TimeoutError):
            injector.check("gris.search", source="ISI")
        injector.check("gris.search", source="LBL")  # unaffected

    def test_latency_uses_the_injectable_sleep(self):
        slept = []
        injector = FaultInjector(sleep=slept.append)
        injector.inject("site", latency=0.25, times=1)
        injector.check("site")
        assert slept == [0.25]

    def test_a_fault_must_do_something(self):
        with pytest.raises(ValueError):
            FaultInjector().inject("site")


class TestByteFaults:
    def test_truncation_keeps_the_configured_fraction(self):
        injector = FaultInjector()
        injector.inject("site", truncate=0.5, times=1)
        assert injector.filter_bytes("site", b"0123456789") == b"01234"
        assert injector.filter_bytes("site", b"0123456789") == b"0123456789"

    def test_corruption_is_deterministic_under_a_seed(self):
        def corrupt(seed):
            injector = FaultInjector(seed=seed)
            injector.inject("site", corrupt=3, times=1)
            return injector.filter_bytes("site", bytes(range(64)))

        assert corrupt(7) == corrupt(7)
        assert corrupt(7) != corrupt(8)
        assert corrupt(7) != bytes(range(64))  # something actually flipped

    def test_empty_data_survives_corruption(self):
        injector = FaultInjector()
        injector.inject("site", corrupt=3, times=1)
        assert injector.filter_bytes("site", b"") == b""


class TestGlobalInstallation:
    def test_module_hooks_are_noops_without_an_injector(self):
        faults.check("anything")
        assert faults.filter_bytes("anything", b"data") == b"data"
        assert faults.active() is None

    def test_injected_scopes_the_installation(self):
        injector = FaultInjector()
        injector.inject("site", error=OSError, times=1)
        with injected(injector):
            assert faults.active() is injector
            with pytest.raises(OSError):
                faults.check("site")
        assert faults.active() is None
        faults.check("site")  # uninstalled: no-op

    def test_injected_restores_a_previous_injector(self):
        outer, inner = FaultInjector(), FaultInjector()
        faults.install(outer)
        with injected(inner):
            assert faults.active() is inner
        assert faults.active() is outer
        faults.uninstall()

    def test_fired_faults_are_observable(self):
        from repro.obs import get_event_bus, get_registry

        before = get_registry().counter("faults_injected", "").value
        injector = FaultInjector()
        injector.inject("obs.site", error=OSError, times=1)
        with injected(injector):
            with pytest.raises(OSError):
                faults.check("obs.site", path="/x")
        assert get_registry().counter("faults_injected", "").value == before + 1
        events = get_event_bus().events(kind="fault.injected")
        assert any(e.fields.get("site") == "obs.site" for e in events)

    def test_pending_reports_unfired_schedules(self):
        injector = FaultInjector()
        injector.inject("a", error=OSError, times=1)
        injector.inject("b", error=OSError, times=2)
        assert injector.pending() == ["a", "b"]
        with pytest.raises(OSError):
            injector.check("a")
        assert injector.pending() == ["b"]
        assert injector.total_fired() == 1
