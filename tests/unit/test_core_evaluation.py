"""Walk-forward evaluation."""

import numpy as np
import pytest

from repro.core import History, evaluate, percentage_error
from repro.core.evaluation import PredictionTrace
from repro.core.predictors import LastValue, TotalAverage, classified_predictors
from repro.units import MB
from tests.conftest import make_record


class TestPercentageError:
    def test_formula(self):
        assert percentage_error(measured=100.0, predicted=75.0) == pytest.approx(25.0)
        assert percentage_error(measured=100.0, predicted=125.0) == pytest.approx(25.0)

    def test_nonpositive_measured_rejected(self):
        with pytest.raises(ValueError):
            percentage_error(0.0, 1.0)


class TestTrace:
    def make_trace(self):
        return PredictionTrace(
            name="t",
            indices=np.array([15, 16, 17]),
            predicted=np.array([1.0, 2.0, 3.0]),
            actual=np.array([2.0, 2.0, 2.0]),
            sizes=np.array([10 * MB, 100 * MB, 900 * MB]),
            times=np.array([1.0, 2.0, 3.0]),
            abstentions=1,
        )

    def test_pct_errors(self):
        trace = self.make_trace()
        assert list(trace.pct_errors) == pytest.approx([50.0, 0.0, 50.0])

    def test_mape_with_mask(self, classification):
        trace = self.make_trace()
        mask = trace.class_mask(classification, "1GB")
        assert trace.mean_abs_pct_error(mask) == pytest.approx(50.0)

    def test_empty_mask_gives_nan(self, classification):
        trace = self.make_trace()
        mask = trace.class_mask(classification, "500MB")
        assert np.isnan(trace.mean_abs_pct_error(mask))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PredictionTrace(
                name="bad",
                indices=np.array([1]),
                predicted=np.array([1.0, 2.0]),
                actual=np.array([1.0]),
                sizes=np.array([1]),
                times=np.array([1.0]),
                abstentions=0,
            )


class TestEvaluate:
    def test_training_prefix_is_skipped(self, sample_records):
        result = evaluate(sample_records, {"AVG": TotalAverage()}, training=15)
        trace = result["AVG"]
        assert len(trace) == len(sample_records) - 15
        assert trace.indices[0] == 15

    def test_predictions_use_only_prior_history(self, sample_records):
        """LV's prediction for record i equals record i-1's bandwidth."""
        result = evaluate(sample_records, {"LV": LastValue()}, training=15)
        trace = result["LV"]
        for idx, predicted in zip(trace.indices, trace.predicted):
            assert predicted == pytest.approx(sample_records[idx - 1].bandwidth)

    def test_actual_matches_records(self, sample_records):
        result = evaluate(sample_records, {"AVG": TotalAverage()}, training=15)
        trace = result["AVG"]
        for idx, actual in zip(trace.indices, trace.actual):
            assert actual == pytest.approx(sample_records[idx].bandwidth)

    def test_anchor_is_start_time(self, sample_records):
        result = evaluate(sample_records, {"AVG": TotalAverage()}, training=15)
        trace = result["AVG"]
        assert trace.times[0] == sample_records[15].start_time

    def test_abstentions_counted(self):
        records = [
            make_record(start=1000.0 * i, size=900 * MB) for i in range(1, 18)
        ]
        battery = classified_predictors()
        result = evaluate(records, {"C-AVG": battery["C-AVG"]}, training=15)
        # All history is 1GB-class, targets are 1GB-class: no abstentions.
        assert result["C-AVG"].abstentions == 0

        mixed = records[:15] + [make_record(start=100_000.0, size=10 * MB)]
        result = evaluate(mixed, {"C-AVG": classified_predictors()["C-AVG"]},
                          training=15)
        # Target is 10MB-class but history has no 10MB transfers: abstain.
        assert result["C-AVG"].abstentions == 1
        assert len(result["C-AVG"]) == 0

    def test_accepts_bare_history(self):
        h = History(
            times=np.arange(20, dtype=float),
            values=np.linspace(1, 2, 20),
            sizes=np.full(20, 100),
        )
        result = evaluate(h, {"LV": LastValue()}, training=15)
        assert len(result["LV"]) == 5

    def test_mape_table_and_by_class(self, sample_records, classification):
        result = evaluate(
            sample_records,
            {"AVG": TotalAverage(), "LV": LastValue()},
            training=15,
        )
        table = result.mape_table()
        assert set(table) == {"AVG", "LV"}
        by_class = result.errors_by_class(classification)
        assert set(by_class) == set(classification.labels)

    def test_validation(self, sample_records):
        with pytest.raises(ValueError):
            evaluate(sample_records, {}, training=15)
        with pytest.raises(ValueError):
            evaluate(sample_records, {"AVG": TotalAverage()}, training=0)
