"""Lint gate: run ruff over the source and test trees when available.

The container does not guarantee ruff is installed, so the check skips
(rather than fails) when the binary is absent — CI images that carry it
get the gate for free, with the rule set pinned in ``pyproject.toml``.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_ruff_check_src_and_tests():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
    assert proc.returncode == 0, "ruff check reported findings"
