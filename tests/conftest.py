"""Shared fixtures.

Campaign runs are session-scoped: the full two-week dual-link campaign
takes under a second, but dozens of tests consume it, so it runs once.
"""

from __future__ import annotations

import pytest

from repro.core.classification import paper_classification
from repro.logs.record import Operation, TransferRecord
from repro.units import HOUR, MB
from repro.workload import AUG_2001, CampaignConfig, build_testbed, run_month
from repro.workload.campaigns import run_month_with_nws


@pytest.fixture
def classification():
    return paper_classification()


def make_record(
    *,
    start: float = 1000.0,
    duration: float = 10.0,
    size: int = 100 * MB,
    bandwidth: float | None = None,
    source_ip: str = "140.221.65.69",
    operation: Operation = Operation.READ,
    streams: int = 8,
    buffer: int = 1 * MB,
    file_name: str = "/home/ftp/data/100M",
    volume: str = "/home/ftp",
) -> TransferRecord:
    """A valid record with overridable fields, for unit tests."""
    return TransferRecord(
        source_ip=source_ip,
        file_name=file_name,
        file_size=size,
        volume=volume,
        start_time=start,
        end_time=start + duration,
        bandwidth=(
            bandwidth
            if bandwidth is not None
            else (size / duration if duration > 0 else 1.0)
        ),
        operation=operation,
        streams=streams,
        tcp_buffer=buffer,
    )


@pytest.fixture
def record_factory():
    return make_record


@pytest.fixture
def sample_records():
    """Twenty records over two days, mixed sizes, strictly ordered."""
    records = []
    sizes = [10 * MB, 100 * MB, 500 * MB, 1000 * MB] * 5
    for i, size in enumerate(sizes):
        start = 1_000_000.0 + i * 2 * HOUR
        records.append(
            make_record(start=start, duration=10.0 + i, size=size)
        )
    return records


@pytest.fixture
def testbed():
    """A fresh testbed per test (cheap: no campaign run)."""
    return build_testbed(seed=7, start_time=AUG_2001)


@pytest.fixture(scope="session")
def august_outputs():
    """The paper's August datasets: both links, seed 1."""
    return run_month(start_epoch=AUG_2001, seed=1)


@pytest.fixture(scope="session")
def august_with_nws():
    """August campaign with concurrent NWS sensors (Figures 1-2 data)."""
    return run_month_with_nws(start_epoch=AUG_2001, seed=1)


@pytest.fixture(scope="session")
def short_campaign_output():
    """A 3-day single-link campaign for faster integration tests."""
    from repro.workload.campaigns import run_link_campaign

    cfg = CampaignConfig(start_epoch=AUG_2001, days=3)
    return run_link_campaign("LBL", "ANL", seed=3, config=cfg)
